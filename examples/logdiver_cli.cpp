// logdiver_cli: the tool as a command-line utility.
//
//   logdiver_cli generate <dir> [--seed N] [--apps N] [--days N] [--small]
//       Simulate a campaign and write a log bundle (torque.log, alps.log,
//       syslog.log, hwerr.log, ground_truth.csv, MANIFEST) to <dir>.
//
//   logdiver_cli analyze <dir> [--small]
//       Run the full LogDiver pipeline over a bundle directory and print
//       every report table.  With ground_truth.csv present, also scores
//       the classification.
//
//   Both modes accept --manifest-out <file> (write a run manifest: build
//   provenance, input fingerprints, config, env, metric dump — schema in
//   docs/OBSERVABILITY.md) and analyze accepts --trace-out <file> (write
//   a Chrome trace_event JSON loadable in chrome://tracing / Perfetto).
//   Caveat: with --snapshot-dir the analysis runs in supervised forked
//   children, whose metrics and spans die with them — the parent's
//   manifest/trace covers only supervision, not the analysis itself.
//
//   With --snapshot-dir, analyze switches to the crash-tolerant
//   streaming pipeline: the analysis runs in a supervised child that
//   checkpoints every --snapshot-interval lines, and a crashed child is
//   restarted from the newest valid snapshot (--resume also picks up
//   snapshots left by a previous invocation).
//
// --small selects the 1,152-node testbed machine instead of the full
// Blue Waters model (the machine geometry must match the bundle).
//
// --threads N sets the parse thread count for the batch analyze path
// (0 = auto: LOGDIVER_THREADS env, else hardware concurrency).  Results
// are bit-identical at any thread count.  The streaming/--snapshot-dir
// path is single-threaded by design and ignores it.
//
//   With --fleet-workers N, analyze fans the bundle across N supervised
//   worker processes (ownership-sharded by apid) and merges their
//   partial aggregates; the merged report is bit-identical to the
//   serial analyzer's.  --shard-timeout caps each shard attempt's wall
//   clock (ms) before SIGKILL escalation; --fleet-budget M tolerates up
//   to M dropped shards (report degrades with a coverage annotation
//   instead of failing).
//
// Exit codes: 0 success, 1 analysis error, 2 usage, 3 a fail-fast
// ingest error budget tripped, 4 the crash-restart budget was
// exhausted, 5 the fleet failure budget was exhausted.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "analysis/scoring.hpp"
#include "common/obs/manifest.hpp"
#include "common/obs/trace.hpp"
#include "logdiver/export.hpp"
#include "logdiver/fleet/supervisor.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"
#include "logdiver/resume.hpp"
#include "logdiver/snapshot.hpp"
#include "simlog/catalog.hpp"
#include "simlog/scenario.hpp"

namespace {

/// Distinct failure exit codes (documented in the header comment; the
/// crash campaign and CI distinguish them from crashes, which surface
/// as 128+signal).
constexpr int kExitIngestBudget = 3;
constexpr int kExitRestartsExhausted = 4;
constexpr int kExitFleetBudget = 5;

int Usage() {
  std::cerr << "usage:\n"
            << "  logdiver_cli generate <dir> [--seed N] [--apps N] "
               "[--days N] [--small]\n"
            << "      [--scenario NAME]   (a docs/SCENARIOS.md catalog "
               "cell, transforms included)\n"
            << "  logdiver_cli analyze <dir> [--small] [--csv <outdir>]\n"
            << "      [--threads N] [--bundle-cache-dir <dir>] "
               "[--bundle-cache-max-mb N]\n"
            << "      [--snapshot-dir <dir>] "
               "[--snapshot-interval N] [--resume]\n"
            << "      [--fleet-workers N] [--shard-timeout MS] "
               "[--fleet-budget M]\n"
            << "  common: [--manifest-out <file>] [--trace-out <file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string mode = argv[1];
  const std::string dir = argv[2];

  std::uint64_t seed = 42;
  std::uint64_t apps = 50000;
  bool have_apps = false;
  std::int64_t days = 518;
  bool small = false;
  std::string scenario_name;
  std::string csv_dir;
  std::string bundle_cache_dir;
  std::uint64_t bundle_cache_max_mb = 0;  // 0 = unbounded
  std::string snapshot_dir;
  std::uint64_t snapshot_interval = 20000;
  bool resume = false;
  int threads = 0;  // 0 = auto (LOGDIVER_THREADS env, else hardware)
  std::uint32_t fleet_workers = 0;  // 0 = fleet path off
  std::uint64_t shard_timeout_ms = 120000;
  bool have_fleet_budget = false;
  std::uint32_t fleet_budget = 0;
  std::string manifest_out;
  std::string trace_out;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--apps") {
      const char* v = next();
      if (!v) return Usage();
      apps = std::strtoull(v, nullptr, 10);
      have_apps = true;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return Usage();
      scenario_name = v;
    } else if (arg == "--days") {
      const char* v = next();
      if (!v) return Usage();
      days = std::strtoll(v, nullptr, 10);
    } else if (arg == "--small") {
      small = true;
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return Usage();
      csv_dir = v;
    } else if (arg == "--bundle-cache-dir") {
      const char* v = next();
      if (!v) return Usage();
      bundle_cache_dir = v;
    } else if (arg == "--bundle-cache-max-mb") {
      const char* v = next();
      if (!v) return Usage();
      bundle_cache_max_mb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (!v) return Usage();
      snapshot_dir = v;
    } else if (arg == "--snapshot-interval") {
      const char* v = next();
      if (!v) return Usage();
      snapshot_interval = std::strtoull(v, nullptr, 10);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return Usage();
      threads = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--fleet-workers") {
      const char* v = next();
      if (!v) return Usage();
      fleet_workers = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--shard-timeout") {
      const char* v = next();
      if (!v) return Usage();
      shard_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fleet-budget") {
      const char* v = next();
      if (!v) return Usage();
      have_fleet_budget = true;
      fleet_budget = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--manifest-out") {
      const char* v = next();
      if (!v) return Usage();
      manifest_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage();
      trace_out = v;
    } else {
      return Usage();
    }
  }

  // Arm tracing before any pipeline work so load/parse spans land in
  // the file; the manifest's wall clock starts here too.
  if (!trace_out.empty()) ld::obs::Tracer::Get().Start();
  ld::obs::ManifestBuilder manifest("logdiver_cli");
  manifest.SetArgv(argc, argv);
  manifest.Set("mode", mode);
  manifest.Set("dir", dir);
  manifest.SetUint("seed", seed);
  manifest.SetUint("apps", apps);
  manifest.SetInt("days", days);
  manifest.Set("small", small ? "true" : "false");
  if (!scenario_name.empty()) manifest.Set("scenario", scenario_name);
  manifest.SetInt("threads", threads);
  if (!bundle_cache_dir.empty()) {
    manifest.Set("bundle_cache_dir", bundle_cache_dir);
    if (bundle_cache_max_mb != 0) {
      manifest.SetUint("bundle_cache_max_mb", bundle_cache_max_mb);
    }
  }
  if (!snapshot_dir.empty()) {
    manifest.Set("snapshot_dir", snapshot_dir);
    manifest.SetUint("snapshot_interval", snapshot_interval);
    manifest.Set("resume", resume ? "true" : "false");
  }
  if (fleet_workers != 0) {
    manifest.SetUint("fleet_workers", fleet_workers);
    manifest.SetUint("shard_timeout_ms", shard_timeout_ms);
    if (have_fleet_budget) manifest.SetUint("fleet_budget", fleet_budget);
  }
  manifest.RecordEnv("LOGDIVER_THREADS");
  manifest.RecordEnv("LD_CRASH_AFTER");
  // Every exit path below funnels through finish() so the trace and
  // manifest are written (with the real exit code) no matter how the
  // run ended.
  const auto finish = [&](int code) -> int {
    if (!trace_out.empty()) {
      ld::obs::Tracer::Get().Stop();
      const ld::Status written = ld::obs::Tracer::Get().WriteJson(trace_out);
      if (!written.ok()) {
        std::cerr << "trace write failed: " << written.ToString() << "\n";
        if (code == 0) code = 1;
      }
    }
    if (!manifest_out.empty()) {
      if (mode == "analyze") {
        manifest.AddInput(dir + "/torque.log");
        manifest.AddInput(dir + "/alps.log");
        manifest.AddInput(dir + "/syslog.log");
        manifest.AddInput(dir + "/hwerr.log");
      }
      manifest.SetExitCode(code);
      const ld::Status written = manifest.Write(manifest_out);
      if (!written.ok()) {
        std::cerr << "manifest write failed: " << written.ToString() << "\n";
        if (code == 0) code = 1;
      }
    }
    return code;
  };

  // A --scenario bundle comes straight from the catalog recipe: the
  // cell's SmallScenario base plus its configure hook and transforms.
  const ld::ScenarioSpec* scenario_spec = nullptr;
  if (!scenario_name.empty()) {
    if (mode != "generate") return Usage();
    scenario_spec = ld::FindScenario(scenario_name);
    if (scenario_spec == nullptr) {
      std::cerr << "unknown scenario '" << scenario_name
                << "'; catalog entries:\n";
      for (const ld::ScenarioSpec& spec : ld::ScenarioCatalog()) {
        std::cerr << "  " << spec.name << " — " << spec.title << "\n";
      }
      return 2;
    }
  }

  ld::ScenarioConfig config = small || scenario_spec != nullptr
                                  ? ld::SmallScenario(seed)
                                  : ld::ScenarioConfig{};
  config.seed = seed;
  if (scenario_spec != nullptr) {
    scenario_spec->configure(&config);
    if (have_apps) config.workload.target_app_runs = apps;
  } else if (!small) {
    config.full_machine = true;
    config.workload.target_app_runs = apps;
    config.workload.campaign = ld::Duration::Days(days);
  } else {
    config.workload.target_app_runs = apps;
  }
  const ld::Machine machine = ld::MakeMachine(config);

  if (mode == "generate") {
    auto bundle = scenario_spec != nullptr
                      ? ld::WriteScenarioBundle(machine, config, *scenario_spec,
                                                dir)
                      : ld::WriteBundle(machine, config, dir);
    if (!bundle.ok()) {
      std::cerr << "generate failed: " << bundle.status().ToString() << "\n";
      return finish(1);
    }
    std::cout << "wrote bundle to " << bundle->dir << "\n";
    return finish(0);
  }

  if (mode == "analyze" && fleet_workers != 0) {
    // Fleet path: shard the bundle across worker processes, merge the
    // partial aggregates, print the merged report.  Partials live in a
    // throwaway directory removed once the report is out.
    ld::fleet::FleetOptions options;
    options.shard_count = fleet_workers;
    options.shard_timeout_ms = shard_timeout_ms;
    if (have_fleet_budget) {
      options.policy = ld::DegradationPolicy::kQuarantineAndContinue;
      options.failure_budget = fleet_budget;
    }
    std::string partial_dir =
        (std::filesystem::temp_directory_path() / "ld-fleet-XXXXXX").string();
    if (::mkdtemp(partial_dir.data()) == nullptr) {
      std::cerr << "cannot create partial dir " << partial_dir << "\n";
      return finish(1);
    }
    options.partial_dir = partial_dir;
    ld::LogDiverConfig fleet_config;
    fleet_config.bundle_cache_dir = bundle_cache_dir;
    fleet_config.bundle_cache_max_bytes = bundle_cache_max_mb * 1024 * 1024;
    const ld::fleet::ShardSupervisor supervisor(machine, fleet_config);
    auto fleet = supervisor.Run(ld::StreamInputs::FromBundleDir(dir), options);
    std::error_code ec;
    std::filesystem::remove_all(partial_dir, ec);
    if (!fleet.ok()) {
      std::cerr << "fleet analyze failed: " << fleet.status().ToString()
                << "\n";
      return finish(fleet.status().code() == ld::StatusCode::kOutOfRange
                        ? kExitFleetBudget
                        : 1);
    }
    std::cout << fleet->coverage.Row() << "\n";
    std::cout << "fleet: " << fleet->runs_finalized << " runs finalized"
              << " across " << fleet->coverage.shards_merged << " shard(s)\n";
    std::cout << "\n--- headline ---\n";
    ld::PrintHeadline(std::cout, fleet->report);
    std::cout << "\n--- outcomes ---\n";
    ld::PrintOutcomeBreakdown(std::cout, fleet->report);
    std::cout << "\n--- error categories ---\n";
    ld::PrintCategoryTable(std::cout, fleet->report);
    std::cout << "\n--- attribution ---\n";
    ld::PrintAttributionTable(std::cout, fleet->report);
    if (!csv_dir.empty()) {
      auto exported = ld::ExportMetricsCsv(fleet->report, csv_dir);
      if (exported.ok()) {
        std::cout << "\nexported " << *exported << " CSV series to "
                  << csv_dir << "\n";
      } else {
        std::cerr << "csv export failed: " << exported.status().ToString()
                  << "\n";
      }
    }
    if (!fleet->ingest_status.ok()) {
      std::cerr << "ingest budget tripped: " << fleet->ingest_status.ToString()
                << "\n";
      return finish(kExitIngestBudget);
    }
    return finish(0);
  }

  if (mode == "analyze" && !snapshot_dir.empty()) {
    // Crash-tolerant streaming path: the analysis runs in a supervised
    // child so an abrupt death (OOM kill, injected crash point) is
    // restarted from the newest valid snapshot instead of starting
    // over.  Reports print in the child — the parent only routes exit
    // codes.
    if (!resume) {
      const ld::Status cleared = ld::SnapshotStore(snapshot_dir).Clear();
      if (!cleared.ok()) {
        std::cerr << "cannot clear snapshots: " << cleared.ToString() << "\n";
        return finish(1);
      }
    }
    const auto child = [&](int attempt) -> int {
      ld::ResumeOptions options;
      options.snapshot_dir = snapshot_dir;
      options.snapshot_interval = snapshot_interval;
      ld::LogDiverConfig stream_config;
      stream_config.bundle_cache_dir = bundle_cache_dir;
      stream_config.bundle_cache_max_bytes = bundle_cache_max_mb * 1024 * 1024;
      auto result = ld::RunResumableAnalysis(
          machine, stream_config,
          ld::StreamInputs::FromBundleDir(dir), options);
      if (!result.ok()) {
        std::cerr << "analyze failed: " << result.status().ToString() << "\n";
        return 1;
      }
      if (attempt > 0 || result->resumed_generation != 0) {
        std::cout << "resumed from snapshot generation "
                  << result->resumed_generation << " (" << result->lines_skipped
                  << " lines already covered";
        if (result->snapshots_rejected != 0) {
          std::cout << ", " << result->snapshots_rejected
                    << " torn generation(s) rejected";
        }
        std::cout << ")\n";
      }
      const ld::StreamingAnalyzer::Summary& summary = result->summary;
      std::cout << "streamed " << result->total_lines << " lines, "
                << summary.runs_finalized << " runs finalized, "
                << result->snapshots_written << " snapshot(s) written\n";
      std::cout << "\n--- headline ---\n";
      ld::PrintHeadline(std::cout, summary.metrics);
      std::cout << "\n--- outcomes ---\n";
      ld::PrintOutcomeBreakdown(std::cout, summary.metrics);
      std::cout << "\n--- error categories ---\n";
      ld::PrintCategoryTable(std::cout, summary.metrics);
      std::cout << "\n--- attribution ---\n";
      ld::PrintAttributionTable(std::cout, summary.metrics);
      if (!csv_dir.empty()) {
        auto exported = ld::ExportMetricsCsv(summary.metrics, csv_dir);
        if (exported.ok()) {
          std::cout << "\nexported " << *exported << " CSV series to "
                    << csv_dir << "\n";
        } else {
          std::cerr << "csv export failed: " << exported.status().ToString()
                    << "\n";
        }
      }
      if (!summary.ingest_status.ok()) {
        std::cerr << "ingest budget tripped: "
                  << summary.ingest_status.ToString() << "\n";
        return kExitIngestBudget;
      }
      return 0;
    };
    const ld::CrashSupervisor::Outcome outcome =
        ld::CrashSupervisor::Run(child);
    if (outcome.exhausted) {
      std::cerr << "giving up: analysis crashed " << outcome.crashes
                << " time(s), restart budget exhausted\n";
      return finish(kExitRestartsExhausted);
    }
    return finish(outcome.exit_code);
  }

  if (mode == "analyze") {
    ld::LogDiverConfig diver_config;
    diver_config.threads = threads;
    diver_config.bundle_cache_dir = bundle_cache_dir;
    diver_config.bundle_cache_max_bytes = bundle_cache_max_mb * 1024 * 1024;
    ld::LogDiver diver(machine, diver_config);
    auto analysis = diver.AnalyzeBundle(dir);
    if (!analysis.ok()) {
      std::cerr << "analyze failed: " << analysis.status().ToString() << "\n";
      const bool budget =
          analysis.status().code() == ld::StatusCode::kParseError &&
          analysis.status().ToString().find("error budget") !=
              std::string::npos;
      return finish(budget ? kExitIngestBudget : 1);
    }
    switch (analysis->cache_outcome) {
      case ld::CacheOutcome::kDisabled:
        break;
      case ld::CacheOutcome::kMiss:
        std::cout << "bundle cache: miss (entry written)\n";
        break;
      case ld::CacheOutcome::kRejected:
        // The rejection reason prints too: a fallback to the text parse
        // must be loud, never silent.
        std::cout << "bundle cache: rejected — " << analysis->cache_note
                  << "\n";
        break;
      case ld::CacheOutcome::kRecordsHit:
        std::cout << "bundle cache: records hit (analysis tail re-run)\n";
        break;
      case ld::CacheOutcome::kHit:
        std::cout << "bundle cache: hit (memoized result)\n";
        break;
    }
    ld::PrintParseSummary(std::cout, *analysis);
    std::cout << "\n--- headline ---\n";
    ld::PrintHeadline(std::cout, analysis->metrics);
    std::cout << "\n--- outcomes ---\n";
    ld::PrintOutcomeBreakdown(std::cout, analysis->metrics);
    std::cout << "\n--- error categories ---\n";
    ld::PrintCategoryTable(std::cout, analysis->metrics);
    std::cout << "\n--- attribution ---\n";
    ld::PrintAttributionTable(std::cout, analysis->metrics);
    std::cout << "\n--- scale curves ---\n";
    ld::PrintScaleCurve(std::cout, analysis->metrics.xe_scale, "XE");
    ld::PrintScaleCurve(std::cout, analysis->metrics.xk_scale, "XK");
    std::cout << "\n--- monthly ---\n";
    ld::PrintMonthlySeries(std::cout, analysis->metrics);
    std::cout << "\n--- queue waits ---\n";
    ld::PrintQueueWaits(std::cout, analysis->metrics);
    std::cout << "\n--- detection gap ---\n";
    ld::PrintDetectionGap(std::cout, analysis->metrics);

    if (!csv_dir.empty()) {
      auto exported = ld::ExportMetricsCsv(analysis->metrics, csv_dir);
      if (exported.ok()) {
        std::cout << "\nexported " << *exported << " CSV series to "
                  << csv_dir << "\n";
      } else {
        std::cerr << "csv export failed: " << exported.status().ToString()
                  << "\n";
      }
    }

    const std::string truth_path = dir + "/ground_truth.csv";
    if (std::filesystem::exists(truth_path)) {
      auto truth = ld::LoadGroundTruth(truth_path);
      if (truth.ok()) {
        const ld::ScoreReport score = ld::ScoreClassification(
            analysis->runs, analysis->classified, *truth);
        std::cout << "\n--- scoring vs ground truth ---\n";
        std::cout << "system precision: " << score.system_precision
                  << "  recall: " << score.system_recall
                  << "  F1: " << score.system_f1
                  << "  cause accuracy: " << score.cause_accuracy << "\n";
      }
    }
    return finish(0);
  }
  return Usage();
}
