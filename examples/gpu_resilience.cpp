// GPU resilience: CPU (XE) vs hybrid (XK) partitions head to head.
//
// Reproduces the paper's hybrid-node finding as a user would: same
// campaign, per-partition failure rates, cause mixes, and the detection
// gap — then scores LogDiver's classification of XK failures against
// ground truth to show how many GPU kills masquerade as application
// bugs.
#include <iostream>
#include <map>

#include "analysis/scoring.hpp"
#include "common/strings.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"
#include "simlog/scenario.hpp"

int main() {
  ld::ScenarioConfig config;
  config.seed = 99;
  config.full_machine = true;
  config.workload.target_app_runs = 120000;
  config.workload.campaign = ld::Duration::Days(518);
  // Study the hybrid partition: give XK more of the workload than its
  // production share so per-category counts are meaningful.
  config.workload.xk_job_fraction = 0.35;

  const ld::Machine machine = ld::MakeMachine(config);
  auto campaign = ld::RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << campaign.status().ToString() << "\n";
    return 1;
  }
  ld::LogDiver diver(machine, {});
  ld::LogSet logs{campaign->logs.torque, campaign->logs.alps,
                  campaign->logs.syslog, campaign->logs.hwerr};
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) {
    std::cerr << analysis.status().ToString() << "\n";
    return 1;
  }

  // Per-partition outcome rates.
  struct Split {
    std::uint64_t runs = 0;
    std::uint64_t system = 0;
    std::uint64_t unattributed = 0;
  };
  std::map<ld::NodeType, Split> split;
  for (const ld::ClassifiedRun& cls : analysis->classified) {
    const ld::AppRun& run = analysis->runs[cls.run_index];
    Split& s = split[run.node_type];
    ++s.runs;
    if (cls.outcome == ld::AppOutcome::kSystemFailure) {
      ++s.system;
      if (cls.cause == ld::ErrorCategory::kUnknown) ++s.unattributed;
    }
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"partition", "runs", "system failures", "rate %",
                  "unattributed %"});
  for (const auto& [type, s] : split) {
    rows.push_back(
        {ld::NodeTypeName(type), ld::WithThousands(s.runs),
         ld::WithThousands(s.system),
         ld::FormatDouble(100.0 * static_cast<double>(s.system) /
                              static_cast<double>(s.runs),
                          3),
         s.system ? ld::FormatDouble(100.0 * static_cast<double>(
                                                 s.unattributed) /
                                         static_cast<double>(s.system),
                                     1)
                  : "0"});
  }
  std::cout << ld::RenderTable(rows) << "\n";

  ld::PrintAttributionTable(std::cout, analysis->metrics);

  // Ground-truth check: true XK system kills LogDiver called user bugs.
  std::unordered_map<ld::ApId, std::size_t> index;
  for (std::size_t i = 0; i < analysis->runs.size(); ++i) {
    index.emplace(analysis->runs[i].apid, i);
  }
  std::uint64_t xk_true = 0, xk_masked = 0;
  for (const auto& [apid, rec] : campaign->injection.truth) {
    if (rec.outcome != ld::AppOutcome::kSystemFailure) continue;
    const auto it = index.find(apid);
    if (it == index.end()) continue;
    if (analysis->runs[it->second].node_type != ld::NodeType::kXK) continue;
    ++xk_true;
    if (analysis->classified[it->second].outcome ==
        ld::AppOutcome::kUserFailure) {
      ++xk_masked;
    }
  }
  std::cout << "\ntrue XK system kills: " << xk_true
            << "; classified as application bugs (masked by missing GPU "
               "error detection): "
            << xk_masked << " ("
            << ld::FormatDouble(xk_true ? 100.0 * static_cast<double>(
                                                      xk_masked) /
                                              static_cast<double>(xk_true)
                                        : 0.0,
                                1)
            << "%)\n";
  std::cout << "\npaper: hybrid-node resiliency is impaired by inadequate "
               "error detection — a field-study measurement this simulated "
               "substrate can verify against ground truth\n";
  return 0;
}
