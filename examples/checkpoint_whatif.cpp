// Checkpoint what-if: turning the measured interruption rates into an
// actionable checkpointing policy.
//
// The paper's headline use case: knowing the MTTI at a given scale, how
// often should an application checkpoint, and how much efficiency is
// lost to checkpoint overhead + rework?  Uses the Young/Daly optimal
// interval  tau* = sqrt(2 * C * MTTI)  and the standard efficiency model
//   efficiency = (1 - C/tau) * exp simplification via expected rework.
//
//   ./checkpoint_whatif [checkpoint_cost_minutes]   (default 5)
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "analysis/scaling.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"
#include "logdiver/logdiver.hpp"
#include "simlog/scenario.hpp"

namespace {

/// Expected fraction of useful work with checkpoint interval tau,
/// checkpoint cost c, and exponential interruptions at rate 1/mtti
/// (first-order Daly model): each tau+c segment completes useful tau;
/// an interruption costs on average half a segment of rework.
double Efficiency(double tau, double c, double mtti) {
  const double segment = tau + c;
  const double waste_per_hour = c / segment + segment / (2.0 * mtti);
  return std::max(0.0, 1.0 - waste_per_hour);
}

}  // namespace

int main(int argc, char** argv) {
  const double checkpoint_minutes =
      argc > 1 ? std::strtod(argv[1], nullptr) : 5.0;
  const double c_hours = checkpoint_minutes / 60.0;

  // Measure the scale curve once.
  ld::ScenarioConfig config;
  config.seed = 21;
  config.full_machine = true;
  config.workload.target_app_runs = 120000;
  config.workload.campaign = ld::Duration::Days(518);
  config.workload.large_bucket_boost = 40.0;

  const ld::Machine machine = ld::MakeMachine(config);
  auto campaign = ld::RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << campaign.status().ToString() << "\n";
    return 1;
  }
  ld::LogDiver diver(machine, {});
  ld::LogSet logs{campaign->logs.torque, campaign->logs.alps,
                  campaign->logs.syslog, campaign->logs.hwerr};
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) {
    std::cerr << analysis.status().ToString() << "\n";
    return 1;
  }
  std::cout << "checkpoint cost: " << checkpoint_minutes << " minutes\n\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"nodes", "P(fail per 5h run)", "per-run MTTI (h)",
                  "Daly tau* (h)", "efficiency %", "no-ckpt completion %"});
  for (double nodes : {512.0, 2048.0, 8192.0, 16384.0, 22000.0}) {
    // Per-run interruption rate from the measured per-run failure
    // probability of a nominal 5-hour run at this scale.
    const double t_run = 5.0;
    auto p = ld::InterpolateScaleCurve(analysis->metrics.xe_scale, nodes);
    if (!p.ok()) {
      std::cerr << p.status().ToString() << "\n";
      return 1;
    }
    const double p_fail = *p;
    // P = 1 - exp(-t/mtti)  =>  mtti = -t / ln(1-P), scaled to the
    // nominal run length.
    const double mtti = -t_run / std::log(std::max(1e-12, 1.0 - p_fail));
    const double tau = std::sqrt(2.0 * c_hours * mtti);
    const double eff = Efficiency(tau, c_hours, mtti);
    rows.push_back(
        {ld::WithThousands(static_cast<std::uint64_t>(nodes)),
         ld::FormatDouble(p_fail, 4), ld::FormatDouble(mtti, 1),
         ld::FormatDouble(tau, 2), ld::FormatDouble(eff * 100.0, 1),
         ld::FormatDouble((1.0 - p_fail) * 100.0, 1)});
  }
  std::cout << ld::RenderTable(rows);
  std::cout << "\nreading: at full machine scale, running without "
               "checkpoints forfeits the whole run with the probability in "
               "the last column; Daly-interval checkpointing keeps "
               "efficiency high at the cost of periodic I/O\n";
  return 0;
}
