#include "simlog/catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "simlog/scenario.hpp"

namespace ld {
namespace {

namespace fs = std::filesystem;

/// path -> content for every regular file under `dir`.
std::map<std::string, std::string> Slurp(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    files[fs::relative(entry.path(), dir).string()] = body.str();
  }
  return files;
}

TEST(ScenarioCatalog, HasTheDocumentedCells) {
  const auto& catalog = ScenarioCatalog();
  ASSERT_GE(catalog.size(), 6u);
  for (const char* name :
       {"detection-gap", "gemini-cascade", "lustre-storm",
        "maintenance-window", "rotation-skew", "diurnal-io"}) {
    const ScenarioSpec* spec = FindScenario(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_STREQ(spec->name, name);
    EXPECT_NE(spec->configure, nullptr) << name;
    EXPECT_NE(spec->validate, nullptr) << name;
    EXPECT_NE(spec->paper_anchor, nullptr) << name;
  }
  EXPECT_EQ(FindScenario("no-such-scenario"), nullptr);
}

TEST(ScenarioCatalog, DetectionGapIdentityIsExactNotStatistical) {
  const ScenarioSpec* spec = FindScenario("detection-gap");
  ASSERT_NE(spec, nullptr);
  ScenarioRunOptions options;
  options.seed = 7;
  options.app_scale = 0.5;
  auto outcome = RunScenario(*spec, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome->ledger.gpu_fatal_injected, 0u);
  // The scenario's 0.35 under-report fraction holds as an exact count,
  // not merely in expectation — the whole point of the seeded post-pass.
  EXPECT_EQ(outcome->ledger.gpu_fatal_undetected,
            static_cast<std::uint64_t>(std::llround(
                0.35 * static_cast<double>(outcome->ledger.gpu_fatal_injected))));
}

TEST(ScenarioCatalog, OutcomeIsThreadCountInvariant) {
  const ScenarioSpec* spec = FindScenario("detection-gap");
  ASSERT_NE(spec, nullptr);
  ScenarioOutcome baseline;
  for (const int threads : {1, 2, 4}) {
    ScenarioRunOptions options;
    options.seed = 9;
    options.threads = threads;
    options.app_scale = 0.5;
    auto outcome = RunScenario(*spec, options);
    ASSERT_TRUE(outcome.ok()) << "threads " << threads;
    if (threads == 1) {
      baseline = std::move(*outcome);
      continue;
    }
    EXPECT_EQ(outcome->ledger.Fingerprint(), baseline.ledger.Fingerprint())
        << "threads " << threads;
    EXPECT_EQ(outcome->score.scored_runs, baseline.score.scored_runs);
    EXPECT_DOUBLE_EQ(outcome->score.overall_accuracy,
                     baseline.score.overall_accuracy);
    EXPECT_DOUBLE_EQ(outcome->score.system_recall, baseline.score.system_recall);
    EXPECT_DOUBLE_EQ(outcome->xk_unattributed_share,
                     baseline.xk_unattributed_share);
    EXPECT_EQ(outcome->violations, baseline.violations);
  }
}

TEST(ScenarioCatalog, ScenarioBundlesAreByteIdentical) {
  // The rotation-skew cell exercises every transform (multi-day split +
  // skewed midnights); two writes from the same spec and seed must
  // produce byte-identical trees.
  const ScenarioSpec* spec = FindScenario("rotation-skew");
  ASSERT_NE(spec, nullptr);
  ScenarioConfig config = SmallScenario(11);
  config.workload.target_app_runs = 1200;
  spec->configure(&config);
  const Machine machine = MakeMachine(config);

  const std::string dir_a = ::testing::TempDir() + "/ld_catalog_bundle_a";
  const std::string dir_b = ::testing::TempDir() + "/ld_catalog_bundle_b";
  for (const std::string& dir : {dir_a, dir_b}) {
    fs::remove_all(dir);
    auto bundle = WriteScenarioBundle(machine, config, *spec, dir);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  }
  const auto a = Slurp(dir_a);
  const auto b = Slurp(dir_b);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [path, content] : a) {
    const auto it = b.find(path);
    ASSERT_NE(it, b.end()) << path;
    EXPECT_EQ(content, it->second) << path << " differs between runs";
  }
  // The multi-day split actually produced rotated syslog segments.
  EXPECT_TRUE(a.count("syslog.log.1") == 1 || a.count("syslog.log.2") == 1);
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

}  // namespace
}  // namespace ld
