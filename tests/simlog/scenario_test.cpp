#include "simlog/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace ld {
namespace {

TEST(Scenario, MakeMachineRespectsConfig) {
  ScenarioConfig config;
  config.full_machine = false;
  config.testbed_xe = 192;
  config.testbed_xk = 48;
  const Machine m = MakeMachine(config);
  EXPECT_EQ(m.xe_count(), 192u);
  EXPECT_EQ(m.xk_count(), 48u);
}

TEST(Scenario, RunCampaignProducesAllArtifacts) {
  const ScenarioConfig config = SmallScenario(7);
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());
  EXPECT_GT(campaign->workload.apps.size(), 1000u);
  EXPECT_GT(campaign->injection.events.size(), 100u);
  EXPECT_GT(campaign->logs.torque.size(), 100u);
  EXPECT_GT(campaign->logs.alps.size(), 1000u);
  EXPECT_GT(campaign->logs.syslog.size(), 100u);
  EXPECT_FALSE(campaign->logs.hwerr.empty());
}

TEST(Scenario, DeterministicAcrossRuns) {
  const ScenarioConfig config = SmallScenario(11);
  const Machine machine = MakeMachine(config);
  auto a = RunCampaign(machine, config);
  auto b = RunCampaign(machine, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->logs.torque, b->logs.torque);
  EXPECT_EQ(a->logs.alps, b->logs.alps);
  EXPECT_EQ(a->logs.syslog, b->logs.syslog);
  EXPECT_EQ(a->logs.hwerr, b->logs.hwerr);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const Machine machine = MakeMachine(SmallScenario(1));
  auto a = RunCampaign(machine, SmallScenario(1));
  auto b = RunCampaign(machine, SmallScenario(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->logs.alps, b->logs.alps);
}

TEST(Scenario, LogLinesAreTimeSorted) {
  const ScenarioConfig config = SmallScenario(3);
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());
  // ALPS lines carry ISO timestamps lexicographically ordered by time.
  std::string prev;
  for (const std::string& line : campaign->logs.alps) {
    const std::string stamp = line.substr(0, 19);
    EXPECT_GE(stamp, prev);
    prev = stamp;
  }
}

TEST(Scenario, WriteBundleCreatesFiles) {
  const std::string dir = ::testing::TempDir() + "/ld_bundle_test";
  std::filesystem::remove_all(dir);
  ScenarioConfig config = SmallScenario(5);
  config.workload.target_app_runs = 500;
  const Machine machine = MakeMachine(config);
  auto bundle = WriteBundle(machine, config, dir);
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(std::filesystem::exists(bundle->torque_path()));
  EXPECT_TRUE(std::filesystem::exists(bundle->alps_path()));
  EXPECT_TRUE(std::filesystem::exists(bundle->syslog_path()));
  EXPECT_TRUE(std::filesystem::exists(bundle->hwerr_path()));
  EXPECT_TRUE(std::filesystem::exists(bundle->truth_path()));
  EXPECT_TRUE(std::filesystem::exists(bundle->manifest_path()));
  EXPECT_GT(std::filesystem::file_size(bundle->alps_path()), 10000u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ld
