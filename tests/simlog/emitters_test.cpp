#include "simlog/emitters.hpp"

#include <gtest/gtest.h>

#include "logdiver/alps_parser.hpp"
#include "logdiver/syslog_parser.hpp"
#include "logdiver/torque_parser.hpp"

namespace ld {
namespace {

constexpr std::int64_t kT0 = 1364774400;  // 2013-04-01

Job MakeJob() {
  Job job;
  job.jobid = 77;
  job.user_name = "u0042";
  job.queue = "normal";
  job.job_name = "run_e77";
  job.node_type = NodeType::kXE;
  job.nodes = {3, 4, 5, 9};
  job.submit = TimePoint(kT0);
  job.start = TimePoint(kT0 + 60);
  job.end = TimePoint(kT0 + 3660);
  job.walltime_limit = Duration::Hours(2);
  job.exit_status = 0;
  return job;
}

Application MakeApp() {
  Application app;
  app.apid = 100123;
  app.jobid = 77;
  app.start = TimePoint(kT0 + 90);
  app.end = TimePoint(kT0 + 3600);
  return app;
}

TEST(Emitters, TorqueTimestampFormat) {
  EXPECT_EQ(TorqueTimestamp(TimePoint(kT0)), "04/01/2013 00:00:00");
}

TEST(Emitters, CompressNids) {
  EXPECT_EQ(CompressNids({3, 4, 5, 9}), "3-5,9");
  EXPECT_EQ(CompressNids({7}), "7");
  EXPECT_EQ(CompressNids({5, 3, 4}), "3-5");  // sorts first
  EXPECT_EQ(CompressNids({1, 3, 5}), "1,3,5");
  EXPECT_EQ(CompressNids({}), "");
}

TEST(Emitters, TorqueRoundTripThroughParser) {
  const Job job = MakeJob();
  TorqueParser parser;
  auto s = parser.ParseLine(RenderTorqueStart(job));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->has_value());
  EXPECT_EQ((*s)->kind, TorqueRecord::Kind::kStart);
  EXPECT_EQ((*s)->jobid, 77u);
  EXPECT_EQ((*s)->start, job.start);
  EXPECT_EQ((*s)->nodect, 4u);
  EXPECT_EQ((*s)->walltime_limit.seconds(), 7200);

  auto e = parser.ParseLine(RenderTorqueEnd(job));
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->has_value());
  EXPECT_EQ((*e)->kind, TorqueRecord::Kind::kEnd);
  EXPECT_EQ((*e)->end, job.end);
  EXPECT_EQ((*e)->exit_status, 0);
  EXPECT_EQ((*e)->user, "u0042");
}

TEST(Emitters, AlpsRoundTripThroughParser) {
  const Job job = MakeJob();
  const Application app = MakeApp();
  AlpsParser parser;

  auto place = parser.ParseLine(RenderAlpsPlace(job, app));
  ASSERT_TRUE(place.ok());
  ASSERT_TRUE(place->has_value());
  EXPECT_EQ((*place)->apid, 100123u);
  EXPECT_EQ((*place)->jobid, 77u);
  EXPECT_EQ((*place)->nids, (std::vector<NodeIndex>{3, 4, 5, 9}));
  EXPECT_EQ((*place)->time, app.start);

  Application failed = app;
  failed.exit_code = 139;
  failed.exit_signal = 11;
  auto exit = parser.ParseLine(RenderAlpsExit(failed));
  ASSERT_TRUE(exit.ok());
  ASSERT_TRUE(exit->has_value());
  EXPECT_EQ((*exit)->exit_code, 139);
  EXPECT_EQ((*exit)->exit_signal, 11);

  auto kill = parser.ParseLine(RenderAlpsNodeFailureKill(app, 4));
  ASSERT_TRUE(kill.ok());
  ASSERT_TRUE(kill->has_value());
  EXPECT_EQ((*kill)->kind, AlpsRecord::Kind::kKill);
  EXPECT_EQ((*kill)->failed_nid, 4u);
}

class SyslogRoundTrip
    : public ::testing::TestWithParam<std::tuple<ErrorCategory, Severity>> {
 protected:
  SyslogRoundTrip() : machine_(Machine::Testbed(96, 24)) {}
  Machine machine_;
};

TEST_P(SyslogRoundTrip, EmittedLineParsesBackToSameCategory) {
  const auto [category, severity] = GetParam();
  ErrorEvent event;
  event.event_id = 1;
  event.time = TimePoint(kT0 + 3600);
  event.category = category;
  event.severity = severity;
  event.scope = category == ErrorCategory::kLustre    ? Scope::kSystem
                : category == ErrorCategory::kBladeFault ? Scope::kBlade
                                                         : Scope::kNode;
  event.node = category == ErrorCategory::kLustre ? kInvalidNode : 5;
  event.detected = true;

  const std::string line = RenderSyslogLine(machine_, event, event.time);
  ASSERT_FALSE(line.empty());
  SyslogParser parser(2013);
  auto rec = parser.ParseLine(line);
  ASSERT_TRUE(rec.ok()) << line;
  ASSERT_TRUE(rec->has_value()) << line;
  EXPECT_EQ((*rec)->category, category) << line;
  EXPECT_EQ((*rec)->severity, severity) << line;
  EXPECT_EQ((*rec)->time, event.time);
}

INSTANTIATE_TEST_SUITE_P(
    Categories, SyslogRoundTrip,
    ::testing::Values(
        std::make_tuple(ErrorCategory::kMachineCheck, Severity::kFatal),
        std::make_tuple(ErrorCategory::kMachineCheck, Severity::kCorrected),
        std::make_tuple(ErrorCategory::kMemoryUE, Severity::kFatal),
        std::make_tuple(ErrorCategory::kGpuDbe, Severity::kFatal),
        std::make_tuple(ErrorCategory::kGpuXid, Severity::kFatal),
        std::make_tuple(ErrorCategory::kGpuXid, Severity::kCorrected),
        std::make_tuple(ErrorCategory::kGeminiLink, Severity::kFatal),
        std::make_tuple(ErrorCategory::kGeminiLink, Severity::kDegraded),
        std::make_tuple(ErrorCategory::kGeminiLink, Severity::kCorrected),
        std::make_tuple(ErrorCategory::kLustre, Severity::kFatal),
        std::make_tuple(ErrorCategory::kNodeHeartbeat, Severity::kFatal),
        std::make_tuple(ErrorCategory::kBladeFault, Severity::kFatal),
        std::make_tuple(ErrorCategory::kKernelSoftware, Severity::kFatal)));

TEST(Emitters, SyslogLocationMatchesEventNode) {
  const Machine machine = Machine::Testbed(96, 24);
  ErrorEvent event;
  event.time = TimePoint(kT0);
  event.category = ErrorCategory::kNodeHeartbeat;
  event.severity = Severity::kFatal;
  event.scope = Scope::kNode;
  event.node = 17;
  const std::string line = RenderSyslogLine(machine, event, event.time);
  SyslogParser parser(2013);
  auto rec = parser.ParseLine(line);
  ASSERT_TRUE(rec.ok() && rec->has_value());
  EXPECT_EQ((*rec)->location, machine.node(17).cname.ToString());
}

TEST(Emitters, HwerrOnlyForHardwareCategories) {
  const Machine machine = Machine::Testbed(96, 24);
  ErrorEvent hw;
  hw.time = TimePoint(kT0);
  hw.category = ErrorCategory::kMemoryUE;
  hw.severity = Severity::kFatal;
  hw.node = 3;
  EXPECT_FALSE(RenderHwerrLine(machine, hw, hw.time).empty());

  ErrorEvent sw = hw;
  sw.category = ErrorCategory::kKernelSoftware;
  EXPECT_TRUE(RenderHwerrLine(machine, sw, sw.time).empty());
  ErrorEvent lustre = hw;
  lustre.category = ErrorCategory::kLustre;
  lustre.node = kInvalidNode;
  EXPECT_TRUE(RenderHwerrLine(machine, lustre, lustre.time).empty());
}

TEST(Emitters, GroundTruthCsvShape) {
  Workload wl;
  Job job = MakeJob();
  wl.jobs.push_back(job);
  Application app = MakeApp();
  app.truth = AppOutcome::kSuccess;
  wl.apps.push_back(app);
  Application cancelled = MakeApp();
  cancelled.apid = 100124;
  cancelled.cancelled = true;
  wl.apps.push_back(cancelled);

  InjectionResult injection;
  TruthRecord rec;
  rec.apid = 100123;
  rec.outcome = AppOutcome::kSuccess;
  injection.truth.emplace(rec.apid, rec);

  const auto lines = RenderGroundTruthCsv(wl, injection);
  ASSERT_EQ(lines.size(), 2u);  // header + 1 live app
  EXPECT_EQ(lines[0], "apid,outcome,cause,event_id,cause_detected");
  EXPECT_EQ(lines[1], "100123,success,,0,0");
}

}  // namespace
}  // namespace ld
