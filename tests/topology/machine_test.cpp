#include "topology/machine.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ld {
namespace {

TEST(Machine, BlueWatersCounts) {
  const Machine bw = Machine::BlueWaters();
  EXPECT_EQ(bw.xe_count(), 22640u);
  EXPECT_EQ(bw.xk_count(), 4224u);
  EXPECT_EQ(bw.node_count(), 27648u);  // 288 cabinets x 96 slots
  EXPECT_EQ(bw.service_count(), 27648u - 22640u - 4224u);
  EXPECT_EQ(bw.compute_count(), 26864u);
}

TEST(Machine, NodeAttributesByType) {
  const Machine bw = Machine::BlueWaters();
  const NodeIndex xe = bw.nodes_of_type(NodeType::kXE).front();
  const NodeIndex xk = bw.nodes_of_type(NodeType::kXK).front();
  EXPECT_FALSE(bw.node(xe).has_gpu);
  EXPECT_EQ(bw.node(xe).dimm_count, 16);
  EXPECT_TRUE(bw.node(xk).has_gpu);
  EXPECT_EQ(bw.node(xk).dimm_count, 8);
}

TEST(Machine, CnamesAreUniqueAndFindable) {
  const Machine m = Machine::Testbed(96, 24);
  std::set<std::string> seen;
  for (const Node& node : m.nodes()) {
    const std::string cname = node.cname.ToString();
    EXPECT_TRUE(seen.insert(cname).second) << "duplicate " << cname;
    auto found = m.FindByCname(cname);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, node.index);
  }
}

TEST(Machine, FindByCnameMisses) {
  const Machine m = Machine::Testbed(96, 24);
  EXPECT_FALSE(m.FindByCname("c99-9c0s0n0").ok());
  EXPECT_FALSE(m.FindByCname("garbage").ok());
}

TEST(Machine, NodeIndicesAreDense) {
  const Machine m = Machine::Testbed(96, 24);
  for (NodeIndex i = 0; i < m.node_count(); ++i) {
    EXPECT_EQ(m.node(i).index, i);
  }
}

TEST(Machine, BladeSiblingsShareBladeAndIncludeSelf) {
  const Machine m = Machine::Testbed(96, 24);
  const NodeIndex anchor = 5;
  const auto sibs = m.BladeSiblings(anchor);
  ASSERT_EQ(sibs.size(), 4u);
  bool self_found = false;
  const std::string blade = m.node(anchor).cname.BladePrefix();
  for (NodeIndex s : sibs) {
    EXPECT_EQ(m.node(s).cname.BladePrefix(), blade);
    if (s == anchor) self_found = true;
  }
  EXPECT_TRUE(self_found);
}

TEST(Machine, NodesOnGeminiArePairs) {
  const Machine m = Machine::Testbed(96, 24);
  for (NodeIndex i : {0u, 1u, 2u, 3u, 50u}) {
    const auto attached = m.NodesOnGemini(m.node(i).gemini);
    ASSERT_EQ(attached.size(), 2u);
    // The anchor node must be attached to its own router.
    EXPECT_TRUE(attached[0] == i || attached[1] == i);
    // Both attached nodes share the gemini coordinate.
    EXPECT_EQ(m.node(attached[0]).gemini, m.node(attached[1]).gemini);
  }
}

TEST(Machine, XkNodesAreContiguousAfterXe) {
  const Machine m = Machine::Testbed(192, 96);
  const auto& xe = m.nodes_of_type(NodeType::kXE);
  const auto& xk = m.nodes_of_type(NodeType::kXK);
  ASSERT_EQ(xe.size(), 192u);
  ASSERT_EQ(xk.size(), 96u);
  // Layout fills XE first, so every XE index < every XK index.
  EXPECT_LT(xe.back(), xk.front());
}

TEST(Machine, BuildRejectsOversubscription) {
  MachineConfig config;
  config.cabinet_cols = 1;
  config.cabinet_rows = 1;  // 96 slots
  config.xe_nodes = 90;
  config.xk_nodes = 10;
  EXPECT_THROW(Machine::Build(config), std::invalid_argument);
}

TEST(Machine, TestbedHasServiceHeadroom) {
  const Machine m = Machine::Testbed(100, 20);
  EXPECT_EQ(m.xe_count(), 100u);
  EXPECT_EQ(m.xk_count(), 20u);
  EXPECT_GE(m.service_count(), 4u);
}

TEST(NodeTypeName, Names) {
  EXPECT_STREQ(NodeTypeName(NodeType::kXE), "XE");
  EXPECT_STREQ(NodeTypeName(NodeType::kXK), "XK");
  EXPECT_STREQ(NodeTypeName(NodeType::kService), "service");
}

}  // namespace
}  // namespace ld
