#include "topology/cname.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(Cname, ToStringFormat) {
  const Cname c{12, 3, 2, 7, 1};
  EXPECT_EQ(c.ToString(), "c12-3c2s7n1");
  EXPECT_EQ(c.BladePrefix(), "c12-3c2s7");
}

TEST(Cname, ParseValid) {
  auto c = ParseCname("c12-3c2s7n1");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->cabinet_x, 12);
  EXPECT_EQ(c->cabinet_y, 3);
  EXPECT_EQ(c->chassis, 2);
  EXPECT_EQ(c->slot, 7);
  EXPECT_EQ(c->node, 1);
}

TEST(Cname, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseCname("").ok());
  EXPECT_FALSE(ParseCname("c12-3c2s7").ok());        // blade-level
  EXPECT_FALSE(ParseCname("c12-3c2s7g0").ok());      // gemini-level
  EXPECT_FALSE(ParseCname("c12-3c2s7n1x").ok());     // trailing junk
  EXPECT_FALSE(ParseCname("nonsense").ok());
}

TEST(Cname, ParseRejectsOutOfRange) {
  EXPECT_FALSE(ParseCname("c0-0c3s0n0").ok());  // chassis > 2
  EXPECT_FALSE(ParseCname("c0-0c0s8n0").ok());  // slot > 7
  EXPECT_FALSE(ParseCname("c0-0c0s0n4").ok());  // node > 3
}

// Property: round trip over the whole coordinate grid of a cabinet row.
class CnameRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CnameRoundTrip, Roundtrips) {
  const int cx = GetParam();
  for (int cy : {0, 5, 11}) {
    for (int ch = 0; ch < 3; ++ch) {
      for (int sl = 0; sl < 8; ++sl) {
        for (int nd = 0; nd < 4; ++nd) {
          const Cname c{cx, cy, ch, sl, nd};
          auto parsed = ParseCname(c.ToString());
          ASSERT_TRUE(parsed.ok()) << c.ToString();
          EXPECT_EQ(*parsed, c);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cabinets, CnameRoundTrip,
                         ::testing::Values(0, 1, 7, 23));

}  // namespace
}  // namespace ld
