// Property and fuzz tests over the pipeline's robustness invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "faults/corruptor.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

// ---------------------------------------------------------------- parsers

/// Randomly mutates a line: truncation, character garbling, field
/// duplication, or total replacement with binary junk.
std::string Mutate(const std::string& line, Rng& rng) {
  switch (rng.UniformInt(5)) {
    case 0:  // truncate
      return line.substr(0, rng.UniformInt(line.size() + 1));
    case 1: {  // garble one character
      if (line.empty()) return line;
      std::string out = line;
      out[rng.UniformInt(out.size())] =
          static_cast<char>(rng.UniformInt(1, 255));
      return out;
    }
    case 2:  // duplicate the line onto itself
      return line + line;
    case 3: {  // binary junk
      std::string out;
      for (int i = 0; i < 40; ++i) {
        out += static_cast<char>(rng.UniformInt(1, 255));
      }
      return out;
    }
    default:  // swap two halves
      if (line.size() < 2) return line;
      return line.substr(line.size() / 2) + line.substr(0, line.size() / 2);
  }
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, ParsersNeverThrowAndAccountEveryLine) {
  const ScenarioConfig config = SmallScenario(17);
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());

  Rng rng(GetParam());
  auto fuzz = [&rng](std::vector<std::string> lines) {
    for (auto& line : lines) {
      if (rng.Bernoulli(0.3)) line = Mutate(line, rng);
    }
    return lines;
  };

  {
    TorqueParser parser;
    const auto lines = fuzz(campaign->logs.torque);
    EXPECT_NO_THROW(parser.ParseLines(lines));
    EXPECT_EQ(parser.stats().lines, lines.size());
    EXPECT_EQ(parser.stats().records + parser.stats().skipped +
                  parser.stats().malformed,
              parser.stats().lines);
  }
  {
    AlpsParser parser;
    const auto lines = fuzz(campaign->logs.alps);
    EXPECT_NO_THROW(parser.ParseLines(lines));
    EXPECT_EQ(parser.stats().records + parser.stats().skipped +
                  parser.stats().malformed,
              parser.stats().lines);
  }
  {
    SyslogParser parser(2013);
    const auto lines = fuzz(campaign->logs.syslog);
    EXPECT_NO_THROW(parser.ParseLines(lines));
    EXPECT_EQ(parser.stats().records + parser.stats().skipped +
                  parser.stats().malformed,
              parser.stats().lines);
  }
  {
    HwerrParser parser;
    const auto lines = fuzz(campaign->logs.hwerr);
    EXPECT_NO_THROW(parser.ParseLines(lines));
    EXPECT_EQ(parser.stats().records + parser.stats().skipped +
                  parser.stats().malformed,
              parser.stats().lines);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/// Every line of the corrupted bundle must be accounted as a record,
/// skipped, or malformed — never thrown on, never silently vanished.
class CorruptorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptorFuzz, CorruptedBundlesNeverThrowAndAccountEveryLine) {
  const ScenarioConfig config = SmallScenario(17);
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());

  CorruptorConfig corruption;
  corruption.rate = 0.5;  // much dirtier than any plausible field bundle
  corruption.ops = LogCorruptor::AllOps();
  const LogCorruptor corruptor(corruption);
  const CorruptionLedger ledger =
      corruptor.CorruptBundle(campaign->logs, Rng(GetParam()));
  EXPECT_GT(ledger.total(), 0u);

  auto check = [](auto& parser, const std::vector<std::string>& lines) {
    EXPECT_NO_THROW(parser.ParseLines(lines));
    EXPECT_EQ(parser.stats().lines, lines.size());
    EXPECT_EQ(parser.stats().records + parser.stats().skipped +
                  parser.stats().malformed,
              parser.stats().lines);
  };
  TorqueParser torque;
  check(torque, campaign->logs.torque);
  AlpsParser alps;
  check(alps, campaign->logs.alps);
  SyslogParser syslog(2013);
  check(syslog, campaign->logs.syslog);
  HwerrParser hwerr;
  check(hwerr, campaign->logs.hwerr);

  // The full batch pipeline survives under the default
  // quarantine-and-continue policy and discloses every reject.
  LogDiver diver(machine, {});
  auto analysis = diver.Analyze(LogSet{campaign->logs.torque,
                                       campaign->logs.alps,
                                       campaign->logs.syslog,
                                       campaign->logs.hwerr});
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->ingest.quarantined,
            analysis->torque_stats.malformed + analysis->alps_stats.malformed +
                analysis->syslog_stats.malformed +
                analysis->hwerr_stats.malformed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptorFuzz, ::testing::Values(1, 2, 3, 5));

// ------------------------------------------- benign-corruption equivalence

/// Duplication and bounded reordering are *benign* for a streaming
/// consumer that sorts within its reorder slack: dedup absorbs the
/// replays, so the classification must equal the clean batch run's.
TEST(StreamingEquivalence, BenignCorruptionMatchesCleanBatch) {
  const ScenarioConfig config = SmallScenario(58);
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());

  LogDiver diver(machine, {});
  auto clean = diver.Analyze(LogSet{campaign->logs.torque,
                                    campaign->logs.alps,
                                    campaign->logs.syslog,
                                    campaign->logs.hwerr});
  ASSERT_TRUE(clean.ok());

  CorruptorConfig corruption;
  corruption.rate = 0.1;
  corruption.ops = {CorruptionOp::kDuplicate, CorruptionOp::kReorder};
  corruption.max_reorder_distance = 20;
  const LogCorruptor corruptor(corruption);
  const CorruptionLedger ledger =
      corruptor.CorruptBundle(campaign->logs, Rng(41));
  ASSERT_GT(ledger.total(CorruptionOp::kDuplicate), 0u);
  ASSERT_GT(ledger.total(CorruptionOp::kReorder), 0u);

  // Deliver the dirty bundle sorted by claimed time (the tailer's reorder
  // slack restores order; duplicates remain).
  struct TimedLine {
    TimePoint time;
    int source;
    std::string line;
  };
  std::vector<TimedLine> merged;
  {
    TorqueParser parser;
    for (const std::string& line : campaign->logs.torque) {
      auto rec = parser.ParseLine(line);
      if (rec.ok() && rec->has_value()) merged.push_back({(*rec)->time, 0, line});
    }
    AlpsParser alps;
    for (const std::string& line : campaign->logs.alps) {
      auto rec = alps.ParseLine(line);
      if (rec.ok() && rec->has_value()) merged.push_back({(*rec)->time, 1, line});
    }
    for (const std::string& line : campaign->logs.syslog) {
      auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15), 2013);
      merged.push_back({t.ok() ? *t : TimePoint(0), 2, line});
    }
    HwerrParser hwerr;
    for (const std::string& line : campaign->logs.hwerr) {
      auto rec = hwerr.ParseLine(line);
      if (rec.ok() && rec->has_value()) merged.push_back({(*rec)->time, 3, line});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TimedLine& a, const TimedLine& b) {
                     return a.time < b.time;
                   });

  StreamingAnalyzer analyzer(machine, LogDiverConfig{});
  for (const TimedLine& item : merged) {
    switch (item.source) {
      case 0: analyzer.AddTorqueLine(item.line); break;
      case 1: analyzer.AddAlpsLine(item.line); break;
      case 2: analyzer.AddSyslogLine(item.line); break;
      case 3: analyzer.AddHwerrLine(item.line); break;
    }
  }
  const auto summary = analyzer.Finalize();

  // Same classifications as the clean batch, and the replays disclosed.
  EXPECT_EQ(summary.metrics.total_runs, clean->metrics.total_runs);
  EXPECT_DOUBLE_EQ(summary.metrics.system_failure_fraction,
                   clean->metrics.system_failure_fraction);
  EXPECT_DOUBLE_EQ(summary.metrics.lost_node_hours_fraction,
                   clean->metrics.lost_node_hours_fraction);
  EXPECT_GT(summary.ingest.duplicate_placements +
                summary.ingest.duplicate_terminations +
                summary.ingest.duplicate_job_records,
            0u);
  EXPECT_TRUE(summary.ingest_status.ok());
}

// --------------------------------------------------------------- coalesce

TEST(CoalesceProperty, EventCountConserved) {
  const Machine machine = Machine::Testbed(96, 24);
  Rng rng(5);
  std::vector<ErrorRecord> records;
  for (int i = 0; i < 2000; ++i) {
    ErrorRecord rec;
    rec.time = TimePoint(rng.UniformInt(0, 100000));
    rec.category = static_cast<ErrorCategory>(rng.UniformInt(0, 8));
    rec.severity = static_cast<Severity>(rng.UniformInt(0, 2));
    rec.scope = LocScope::kNode;
    rec.location = Intern(
        machine
            .node(static_cast<NodeIndex>(rng.UniformInt(machine.node_count())))
            .cname.ToString());
    rec.source = rng.Bernoulli(0.5) ? LogSource::kSyslog : LogSource::kHwerr;
    records.push_back(rec);
  }
  CoalesceStats stats;
  const auto tuples = CoalesceEvents(machine, records, {}, &stats);
  std::uint64_t members = 0;
  for (const ErrorTuple& t : tuples) {
    members += t.count;
    EXPECT_LE(t.first, t.last);
    EXPECT_FALSE(t.nodes.empty());
  }
  EXPECT_EQ(members + stats.unresolved_locations, records.size());
  // Sorted output.
  for (std::size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_LE(tuples[i - 1].first, tuples[i].first);
  }
}

// -------------------------------------------------------------- correlator

TEST(CorrelatorProperty, CleanExitsNeverBecomeFailures) {
  const Machine machine = Machine::Testbed(96, 24);
  Rng rng(9);
  std::vector<AppRun> runs;
  for (int i = 0; i < 500; ++i) {
    AppRun run;
    run.apid = static_cast<ApId>(i + 1);
    run.nodes = {static_cast<NodeIndex>(rng.UniformInt(96))};
    run.nodect = 1;
    run.start = TimePoint(rng.UniformInt(0, 50000));
    run.end = run.start + Duration(rng.UniformInt(10, 5000));
    run.has_termination = true;
    run.exit_code = 0;
    run.exit_signal = 0;
    runs.push_back(run);
  }
  // Saturate the machine with fatal tuples everywhere.
  std::vector<ErrorTuple> tuples;
  for (int i = 0; i < 300; ++i) {
    ErrorTuple t;
    t.id = static_cast<std::uint64_t>(i + 1);
    t.category = ErrorCategory::kMemoryUE;
    t.severity = Severity::kFatal;
    t.scope = LocScope::kNode;
    t.nodes = {static_cast<NodeIndex>(rng.UniformInt(96))};
    t.first = t.last = TimePoint(rng.UniformInt(0, 60000));
    t.count = 1;
    tuples.push_back(t);
  }
  const Correlator correlator(machine, {});
  for (const ClassifiedRun& cls : correlator.Classify(runs, tuples)) {
    EXPECT_EQ(cls.outcome, AppOutcome::kSuccess);
  }
}

TEST(CorrelatorProperty, ClassificationIsDeterministic) {
  const ScenarioConfig config = SmallScenario(31);
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());
  LogDiver diver(machine, {});
  LogSet logs{campaign->logs.torque, campaign->logs.alps,
              campaign->logs.syslog, campaign->logs.hwerr};
  auto a = diver.Analyze(logs);
  auto b = diver.Analyze(logs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->classified.size(), b->classified.size());
  for (std::size_t i = 0; i < a->classified.size(); ++i) {
    EXPECT_EQ(a->classified[i].outcome, b->classified[i].outcome);
    EXPECT_EQ(a->classified[i].cause, b->classified[i].cause);
    EXPECT_EQ(a->classified[i].tuple_id, b->classified[i].tuple_id);
  }
}

// ------------------------------------------------------------ interval set

TEST(IntervalSetProperty, MatchesNaiveImplementation) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet set;
    std::vector<bool> naive(2000, false);
    for (int i = 0; i < 60; ++i) {
      const std::int64_t a = rng.UniformInt(0, 1900);
      const std::int64_t b = a + rng.UniformInt(0, 99);
      set.Add(Interval{TimePoint(a), TimePoint(b)});
      for (std::int64_t t = a; t < b; ++t) naive[static_cast<std::size_t>(t)] = true;
    }
    std::int64_t naive_total = 0;
    for (bool covered : naive) naive_total += covered ? 1 : 0;
    EXPECT_EQ(set.TotalLength().seconds(), naive_total);
    for (std::int64_t t = 0; t < 2000; t += 7) {
      EXPECT_EQ(set.Contains(TimePoint(t)),
                naive[static_cast<std::size_t>(t)])
          << "t=" << t << " trial=" << trial;
    }
    // Disjointness and order of the stored intervals.
    const auto& ivs = set.intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      EXPECT_LT(ivs[i - 1].end, ivs[i].start);
    }
  }
}

// ------------------------------------------------------- zero-fault sanity

TEST(PipelineProperty, FaultFreeCampaignHasNoSystemFailures) {
  ScenarioConfig config = SmallScenario(3);
  config.workload.target_app_runs = 1500;
  config.faults = FaultModelConfig{};
  config.faults.xe_fatal_per_node_hour = 0.0;
  config.faults.xk_fatal_per_node_hour = 0.0;
  config.faults.xe_app_fatal_per_hour = 0.0;
  config.faults.xk_app_fatal_per_hour = 0.0;
  config.faults.lustre_incidents_per_day = 0.0;
  config.faults.blade_faults_per_day = 0.0;
  config.faults.link_failures_per_day = 0.0;
  config.faults.corrected_mce_per_day = 0.0;
  config.faults.corrected_gpu_per_day = 0.0;
  config.faults.link_degrade_per_day = 0.0;

  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());
  EXPECT_TRUE(campaign->logs.syslog.empty());
  EXPECT_TRUE(campaign->logs.hwerr.empty());

  LogDiver diver(machine, {});
  LogSet logs{campaign->logs.torque, campaign->logs.alps,
              campaign->logs.syslog, campaign->logs.hwerr};
  auto analysis = diver.Analyze(logs);
  ASSERT_TRUE(analysis.ok());
  for (const OutcomeRow& row : analysis->metrics.outcomes) {
    EXPECT_NE(row.outcome, AppOutcome::kSystemFailure);
  }
  EXPECT_EQ(analysis->metrics.system_failure_fraction, 0.0);
}

}  // namespace
}  // namespace ld
