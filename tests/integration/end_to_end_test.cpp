// End-to-end integration: campaign simulation -> text logs -> LogDiver
// pipeline -> metrics -> ground-truth scoring.  These are the tests that
// hold the whole reproduction together.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/baselines.hpp"
#include "analysis/scoring.hpp"
#include "logdiver/logdiver.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ScenarioConfig(SmallScenario(2024));
    machine_ = new Machine(MakeMachine(*config_));
    auto campaign = RunCampaign(*machine_, *config_);
    ASSERT_TRUE(campaign.ok());
    campaign_ = new Campaign(std::move(*campaign));

    LogDiver diver(*machine_, LogDiverConfig{});
    LogSet logs;
    logs.torque = campaign_->logs.torque;
    logs.alps = campaign_->logs.alps;
    logs.syslog = campaign_->logs.syslog;
    logs.hwerr = campaign_->logs.hwerr;
    auto analysis = diver.Analyze(logs);
    ASSERT_TRUE(analysis.ok());
    analysis_ = new AnalysisResult(std::move(*analysis));
  }

  static void TearDownTestSuite() {
    delete analysis_;
    delete campaign_;
    delete machine_;
    delete config_;
    analysis_ = nullptr;
    campaign_ = nullptr;
    machine_ = nullptr;
    config_ = nullptr;
  }

  static ScenarioConfig* config_;
  static Machine* machine_;
  static Campaign* campaign_;
  static AnalysisResult* analysis_;
};

ScenarioConfig* EndToEndTest::config_ = nullptr;
Machine* EndToEndTest::machine_ = nullptr;
Campaign* EndToEndTest::campaign_ = nullptr;
AnalysisResult* EndToEndTest::analysis_ = nullptr;

TEST_F(EndToEndTest, NoParseLoss) {
  EXPECT_EQ(analysis_->torque_stats.malformed, 0u);
  EXPECT_EQ(analysis_->alps_stats.malformed, 0u);
  EXPECT_EQ(analysis_->syslog_stats.malformed, 0u);
  EXPECT_EQ(analysis_->hwerr_stats.malformed, 0u);
  EXPECT_EQ(analysis_->coalesce_stats.unresolved_locations, 0u);
}

TEST_F(EndToEndTest, EveryLiveAppReconstructed) {
  std::uint64_t live = 0;
  for (const Application& app : campaign_->workload.apps) {
    if (!app.cancelled) ++live;
  }
  EXPECT_EQ(analysis_->runs.size(), live);
  EXPECT_EQ(analysis_->reconstruct_stats.missing_termination, 0u);
  EXPECT_EQ(analysis_->reconstruct_stats.orphan_terminations, 0u);
  EXPECT_EQ(analysis_->reconstruct_stats.missing_job, 0u);
}

TEST_F(EndToEndTest, RunsMatchSimulatedWindows) {
  // Reconstructed start/end must match the simulation exactly (the ALPS
  // records carry authoritative timestamps, unjittered).
  std::unordered_map<ApId, const Application*> by_apid;
  for (const Application& app : campaign_->workload.apps) {
    if (!app.cancelled) by_apid.emplace(app.apid, &app);
  }
  for (const AppRun& run : analysis_->runs) {
    const auto it = by_apid.find(run.apid);
    ASSERT_NE(it, by_apid.end());
    EXPECT_EQ(run.start, it->second->start);
    EXPECT_EQ(run.end, it->second->end);
    const Job& job = campaign_->workload.job_of(*it->second);
    EXPECT_EQ(run.nodect, job.nodect());
    EXPECT_EQ(run.node_type, job.node_type);
  }
}

TEST_F(EndToEndTest, ClassificationQualityAgainstTruth) {
  const ScoreReport score = ScoreClassification(
      analysis_->runs, analysis_->classified, campaign_->injection.truth);
  EXPECT_EQ(score.missing_truth, 0u);
  // The correlator should be strong on this substrate: these floors are
  // intentionally demanding so regressions in the pipeline surface here.
  EXPECT_GT(score.overall_accuracy, 0.99);
  EXPECT_GT(score.system_precision, 0.85);
  EXPECT_GT(score.system_recall, 0.85);
  EXPECT_GT(score.cause_accuracy, 0.85);
}

TEST_F(EndToEndTest, LogDiverBeatsAllBaselines) {
  const ScoreReport logdiver = ScoreClassification(
      analysis_->runs, analysis_->classified, campaign_->injection.truth);
  for (BaselineMode mode :
       {BaselineMode::kExitOnlyConservative, BaselineMode::kExitOnlyPessimistic,
        BaselineMode::kTemporalOnly, BaselineMode::kSpatialOnly}) {
    const auto baseline_cls = ClassifyBaseline(
        mode, analysis_->runs, analysis_->tuples, CorrelatorConfig{});
    const ScoreReport baseline = ScoreClassification(
        analysis_->runs, baseline_cls, campaign_->injection.truth);
    EXPECT_GT(logdiver.system_f1, baseline.system_f1)
        << BaselineModeName(mode);
  }
}

TEST_F(EndToEndTest, MetricsInternallyConsistent) {
  const MetricsReport& m = analysis_->metrics;
  EXPECT_EQ(m.total_runs, analysis_->runs.size());
  std::uint64_t outcome_total = 0;
  double share_total = 0.0;
  for (const OutcomeRow& row : m.outcomes) {
    outcome_total += row.runs;
    share_total += row.runs_share;
  }
  EXPECT_EQ(outcome_total, m.total_runs);
  EXPECT_NEAR(share_total, 1.0, 1e-9);

  std::uint64_t scale_total = 0;
  for (const ScalePoint& p : m.xe_scale) scale_total += p.runs;
  for (const ScalePoint& p : m.xk_scale) scale_total += p.runs;
  // Scale curves exclude unknown-outcome runs only.
  std::uint64_t known = 0;
  for (const ClassifiedRun& cls : analysis_->classified) {
    if (cls.outcome != AppOutcome::kUnknown) ++known;
  }
  EXPECT_EQ(scale_total, known);

  std::uint64_t monthly_runs = 0;
  for (const MonthlyPoint& p : m.monthly) monthly_runs += p.runs;
  EXPECT_EQ(monthly_runs, m.total_runs);

  std::uint64_t attributed = 0;
  for (const AttributionRow& row : m.attribution) {
    attributed += row.xe_failures + row.xk_failures;
  }
  std::uint64_t system_rows = 0;
  for (const OutcomeRow& row : m.outcomes) {
    if (row.outcome == AppOutcome::kSystemFailure) system_rows = row.runs;
  }
  EXPECT_EQ(attributed, system_rows);
}

TEST_F(EndToEndTest, BundleRoundTripMatchesInMemory) {
  const std::string dir = ::testing::TempDir() + "/ld_e2e_bundle";
  std::filesystem::remove_all(dir);
  auto bundle = WriteBundle(*machine_, *config_, dir);
  ASSERT_TRUE(bundle.ok());

  LogDiver diver(*machine_, LogDiverConfig{});
  auto from_disk = diver.AnalyzeBundle(dir);
  ASSERT_TRUE(from_disk.ok());
  EXPECT_EQ(from_disk->runs.size(), analysis_->runs.size());
  EXPECT_EQ(from_disk->tuples.size(), analysis_->tuples.size());
  EXPECT_DOUBLE_EQ(from_disk->metrics.system_failure_fraction,
                   analysis_->metrics.system_failure_fraction);

  // The ground-truth sidecar loads and scores identically.
  auto truth = LoadGroundTruth(bundle->truth_path());
  ASSERT_TRUE(truth.ok());
  const ScoreReport disk_score =
      ScoreClassification(from_disk->runs, from_disk->classified, *truth);
  const ScoreReport mem_score = ScoreClassification(
      analysis_->runs, analysis_->classified, campaign_->injection.truth);
  EXPECT_DOUBLE_EQ(disk_score.system_f1, mem_score.system_f1);
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEndTest, AnalyzeBundleMissingFilesFail) {
  LogDiver diver(*machine_, LogDiverConfig{});
  EXPECT_FALSE(diver.AnalyzeBundle("/nonexistent/dir").ok());
}

TEST_F(EndToEndTest, DetectionGapVisibleOnXk) {
  // The configured GPU detection deficit must surface as a larger
  // unattributed share on XK than on XE (anchor A6) whenever XK has
  // a meaningful failure population.
  const auto& gap = analysis_->metrics.detection_gap;
  ASSERT_EQ(gap.size(), 2u);
  if (gap[1].system_failures >= 10) {
    EXPECT_GT(gap[1].unattributed_share + 1e-9, gap[0].unattributed_share);
  }
}

TEST_F(EndToEndTest, CorruptedLogsDegradeGracefully) {
  LogSet logs;
  logs.torque = campaign_->logs.torque;
  logs.alps = campaign_->logs.alps;
  logs.syslog = campaign_->logs.syslog;
  logs.hwerr = campaign_->logs.hwerr;
  // Corrupt 10% of each stream.
  for (std::size_t i = 0; i < logs.torque.size(); i += 10) {
    logs.torque[i] = "corrupted #### record";
  }
  for (std::size_t i = 0; i < logs.alps.size(); i += 10) {
    logs.alps[i] = "@@@ bad line";
  }
  LogDiver diver(*machine_, LogDiverConfig{});
  auto degraded = diver.Analyze(logs);
  ASSERT_TRUE(degraded.ok());
  EXPECT_GT(degraded->torque_stats.malformed, 0u);
  EXPECT_GT(degraded->alps_stats.malformed, 0u);
  // Still reconstructs the bulk of the runs.
  EXPECT_GT(degraded->runs.size(), analysis_->runs.size() * 7 / 10);
  // Headline metric stays in the same regime.
  EXPECT_NEAR(degraded->metrics.system_failure_fraction,
              analysis_->metrics.system_failure_fraction, 0.01);
}

}  // namespace
}  // namespace ld
