#include "workload/swf.hpp"

#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ld {
namespace {

// SWF fields: job submit wait run procs avg_cpu mem req_procs req_time
// req_mem status user group app queue part prev think
std::string SwfLine(int job, std::int64_t submit, std::int64_t wait,
                    std::int64_t run, int procs, int status, int user,
                    std::int64_t req_time = -1) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%d %lld %lld %lld %d -1 -1 %d %lld -1 %d %d -1 -1 -1 -1 -1 -1",
                job, static_cast<long long>(submit),
                static_cast<long long>(wait), static_cast<long long>(run),
                procs, procs, static_cast<long long>(req_time), status, user);
  return buf;
}

class SwfTest : public ::testing::Test {
 protected:
  SwfTest() : machine_(Machine::Testbed(96, 24)), rng_(3) {}
  Machine machine_;
  SwfImportConfig config_;
  Rng rng_;
};

TEST_F(SwfTest, ImportsBasicTrace) {
  const std::vector<std::string> lines = {
      "; Comment: synthetic trace",
      "; MaxNodes: 96",
      SwfLine(1, 0, 10, 3600, 64, 1, 7, 7200),
      SwfLine(2, 100, 0, 1800, 128, 0, 8),
      "",
  };
  SwfImportStats stats;
  auto wl = ImportSwf(lines, machine_, config_, rng_, &stats);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.comments, 3u);  // two ';' lines + one blank
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(wl->jobs.size(), 2u);

  const Job& job1 = wl->jobs[0];
  EXPECT_EQ(job1.nodect(), 2u);  // 64 procs / 32 per node
  EXPECT_EQ(job1.submit, config_.epoch);
  EXPECT_EQ(job1.start, config_.epoch + Duration(10));
  EXPECT_EQ(job1.walltime_limit.seconds(), 7200);
  EXPECT_EQ(job1.user_name, "u0007");
  ASSERT_EQ(job1.app_indices.size(), 1u);
  const Application& app1 = wl->apps[job1.app_indices[0]];
  EXPECT_EQ(app1.truth, AppOutcome::kSuccess);
  EXPECT_EQ(app1.duration().seconds(), 3600);

  const Application& app2 = wl->apps[wl->jobs[1].app_indices[0]];
  EXPECT_EQ(app2.truth, AppOutcome::kUserFailure);
  EXPECT_NE(app2.exit_code, 0);
}

TEST_F(SwfTest, NodesAreDistinctAndOnPartition) {
  const std::vector<std::string> lines = {SwfLine(1, 0, 0, 100, 96 * 32, 1, 1)};
  auto wl = ImportSwf(lines, machine_, config_, rng_, nullptr);
  ASSERT_TRUE(wl.ok());
  const Job& job = wl->jobs[0];
  EXPECT_EQ(job.nodect(), 96u);
  std::set<NodeIndex> unique(job.nodes.begin(), job.nodes.end());
  EXPECT_EQ(unique.size(), 96u);
  for (NodeIndex n : job.nodes) {
    EXPECT_EQ(machine_.node(n).type, NodeType::kXE);
  }
}

TEST_F(SwfTest, ClampsOrRejectsOversizedJobs) {
  const std::vector<std::string> lines = {
      SwfLine(1, 0, 0, 100, 500 * 32, 1, 1)};
  SwfImportStats stats;
  auto clamped = ImportSwf(lines, machine_, config_, rng_, &stats);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->jobs[0].nodect(), 96u);
  EXPECT_EQ(stats.clamped, 1u);

  SwfImportConfig strict = config_;
  strict.clamp_oversized = false;
  EXPECT_FALSE(ImportSwf(lines, machine_, strict, rng_, nullptr).ok());
}

TEST_F(SwfTest, SkipsUnusableRowsCountsMalformed) {
  const std::vector<std::string> lines = {
      SwfLine(1, 0, 0, 0, 32, 1, 1),    // zero runtime
      SwfLine(2, 0, 0, 100, 0, 1, 1),   // zero procs
      "only three fields here x",
      SwfLine(3, 0, 0, 100, 32, 1, 1),  // good
  };
  SwfImportStats stats;
  auto wl = ImportSwf(lines, machine_, config_, rng_, &stats);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.malformed, 1u);
}

TEST_F(SwfTest, RejectsEmptyAndBadConfig) {
  EXPECT_FALSE(ImportSwf({"; nothing"}, machine_, config_, rng_, nullptr).ok());
  SwfImportConfig bad = config_;
  bad.cores_per_node = 0;
  EXPECT_FALSE(
      ImportSwf({SwfLine(1, 0, 0, 1, 1, 1, 1)}, machine_, bad, rng_, nullptr)
          .ok());
  EXPECT_FALSE(ImportSwfFile("/no/such/trace.swf", machine_, config_, rng_,
                             nullptr)
                   .ok());
}

TEST_F(SwfTest, ApidsMonotoneInStart) {
  const std::vector<std::string> lines = {
      SwfLine(1, 500, 0, 100, 32, 1, 1),
      SwfLine(2, 0, 0, 100, 32, 1, 1),
      SwfLine(3, 250, 0, 100, 32, 1, 1),
  };
  auto wl = ImportSwf(lines, machine_, config_, rng_, nullptr);
  ASSERT_TRUE(wl.ok());
  std::vector<const Application*> by_apid;
  for (const Application& app : wl->apps) by_apid.push_back(&app);
  std::sort(by_apid.begin(), by_apid.end(),
            [](const Application* a, const Application* b) {
              return a->apid < b->apid;
            });
  for (std::size_t i = 1; i < by_apid.size(); ++i) {
    EXPECT_GE(by_apid[i]->start, by_apid[i - 1]->start);
  }
}

TEST_F(SwfTest, ImportFeedsInjectorAndPipeline) {
  // The imported workload must be a drop-in for the synthetic one.
  std::vector<std::string> lines;
  Rng gen(11);
  for (int i = 0; i < 300; ++i) {
    lines.push_back(SwfLine(i + 1, i * 120, gen.UniformInt(0, 60),
                            gen.UniformInt(60, 7200),
                            static_cast<int>(gen.UniformInt(1, 64)) * 32, 1,
                            static_cast<int>(gen.UniformInt(1, 20))));
  }
  auto wl = ImportSwf(lines, machine_, config_, rng_, nullptr);
  ASSERT_TRUE(wl.ok());

  FaultModelConfig faults;
  faults.xe_fatal_per_node_hour = 1e-3;  // hot, so something happens
  faults.lustre_incidents_per_day = 5.0;
  FaultInjector injector(machine_, faults);
  Rng frng(5);
  auto injection = injector.Inject(*wl, config_.epoch, Duration::Days(2), frng);
  ASSERT_TRUE(injection.ok());
  EXPECT_GT(injection->events.size(), 0u);
  // Truth covers every app.
  for (const Application& app : wl->apps) {
    if (!app.cancelled) {
      EXPECT_TRUE(injection->truth.contains(app.apid));
    }
  }
}

}  // namespace
}  // namespace ld
