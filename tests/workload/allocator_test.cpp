#include "workload/allocator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ld {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : machine_(Machine::Testbed(96, 24)), rng_(7) {}
  Machine machine_;
  Rng rng_;
};

TEST_F(AllocatorTest, AllocatesDistinctNodesOfRightType) {
  NodeAllocator alloc(machine_, NodeType::kXE);
  auto a = alloc.Allocate(TimePoint(1000), Duration::Hours(1), 10, rng_);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->start, TimePoint(1000));
  std::set<NodeIndex> unique(a->nodes.begin(), a->nodes.end());
  EXPECT_EQ(unique.size(), 10u);
  for (NodeIndex n : a->nodes) {
    EXPECT_EQ(machine_.node(n).type, NodeType::kXE);
  }
  EXPECT_EQ(alloc.free_count(), 86u);
}

TEST_F(AllocatorTest, RejectsImpossibleRequests) {
  NodeAllocator alloc(machine_, NodeType::kXK);
  EXPECT_FALSE(alloc.Allocate(TimePoint(0), Duration(10), 0, rng_).ok());
  EXPECT_FALSE(alloc.Allocate(TimePoint(0), Duration(10), 25, rng_).ok());
}

TEST_F(AllocatorTest, DelaysWhenPartitionFull) {
  NodeAllocator alloc(machine_, NodeType::kXK);  // 24 nodes
  auto first =
      alloc.Allocate(TimePoint(0), Duration::Seconds(100), 20, rng_);
  ASSERT_TRUE(first.ok());
  // 10 more don't fit until the first reservation releases at t=100.
  auto second =
      alloc.Allocate(TimePoint(10), Duration::Seconds(50), 10, rng_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->start, TimePoint(100));
}

TEST_F(AllocatorTest, ReleasesReturnNodes) {
  NodeAllocator alloc(machine_, NodeType::kXK);
  (void)alloc.Allocate(TimePoint(0), Duration::Seconds(10), 24, rng_);
  EXPECT_EQ(alloc.free_count(), 0u);
  // Allocation after release time drains the queue.
  auto next = alloc.Allocate(TimePoint(1000), Duration::Seconds(10), 24, rng_);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->start, TimePoint(1000));
}

TEST_F(AllocatorTest, StartTimesAreMonotone) {
  // Strict FCFS: a delayed big job holds later small jobs behind it.
  NodeAllocator alloc(machine_, NodeType::kXK);
  (void)alloc.Allocate(TimePoint(0), Duration::Seconds(1000), 20, rng_);
  auto big = alloc.Allocate(TimePoint(1), Duration::Seconds(10), 24, rng_);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->start, TimePoint(1000));
  auto small = alloc.Allocate(TimePoint(2), Duration::Seconds(10), 1, rng_);
  ASSERT_TRUE(small.ok());
  EXPECT_GE(small->start, big->start);
}

TEST_F(AllocatorTest, NoDoubleOccupancyUnderChurn) {
  // Random allocate/release churn must never hand out a node twice for
  // overlapping windows.  We track expected occupancy externally.
  NodeAllocator alloc(machine_, NodeType::kXE);  // 96 nodes
  struct Lease {
    TimePoint end;
    std::vector<NodeIndex> nodes;
  };
  std::vector<Lease> leases;
  TimePoint clock(0);
  for (int i = 0; i < 300; ++i) {
    clock = clock + Duration(rng_.UniformInt(0, 30));
    const auto count = static_cast<std::uint32_t>(rng_.UniformInt(1, 20));
    const Duration hold(rng_.UniformInt(10, 500));
    auto a = alloc.Allocate(clock, hold, count, rng_);
    ASSERT_TRUE(a.ok());
    // Active leases at a->start must not intersect the new nodes.
    std::set<NodeIndex> busy;
    for (const Lease& lease : leases) {
      if (lease.end > a->start) {
        busy.insert(lease.nodes.begin(), lease.nodes.end());
      }
    }
    for (NodeIndex n : a->nodes) {
      EXPECT_EQ(busy.count(n), 0u) << "node " << n << " double-booked";
    }
    leases.push_back({a->start + hold, a->nodes});
  }
}

}  // namespace
}  // namespace ld
