#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ld {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.target_app_runs = 2000;
  config.campaign = Duration::Days(20);
  return config;
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : machine_(Machine::Testbed(960, 192)) {}
  Machine machine_;
};

TEST_F(GeneratorTest, ProducesRequestedVolume) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng(1);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  // The generator stops at the target or when the campaign window ends;
  // with this config the target should be reached within a few percent.
  EXPECT_GE(wl->apps.size(), 1900u);
  EXPECT_LE(wl->apps.size(), 2100u);
  EXPECT_GT(wl->jobs.size(), 0u);
}

TEST_F(GeneratorTest, DeterministicInSeed) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng1(42), rng2(42);
  auto a = gen.Generate(rng1);
  auto b = gen.Generate(rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->apps.size(), b->apps.size());
  for (std::size_t i = 0; i < a->apps.size(); ++i) {
    EXPECT_EQ(a->apps[i].apid, b->apps[i].apid);
    EXPECT_EQ(a->apps[i].start, b->apps[i].start);
    EXPECT_EQ(a->apps[i].end, b->apps[i].end);
  }
}

TEST_F(GeneratorTest, JobInvariants) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng(3);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  for (const Job& job : wl->jobs) {
    EXPECT_GE(job.start, job.submit);
    EXPECT_GT(job.end, job.start);
    EXPECT_GT(job.nodect(), 0u);
    EXPECT_GT(job.walltime_limit.seconds(), 0);
    ASSERT_FALSE(job.app_indices.empty());
    // Node set is unique and type-homogeneous.
    std::set<NodeIndex> unique(job.nodes.begin(), job.nodes.end());
    EXPECT_EQ(unique.size(), job.nodes.size());
    for (NodeIndex n : job.nodes) {
      EXPECT_EQ(machine_.node(n).type, job.node_type);
    }
  }
}

TEST_F(GeneratorTest, AppsSequentialWithinJob) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng(4);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  for (const Job& job : wl->jobs) {
    TimePoint cursor = job.start;
    std::uint32_t seq = 0;
    for (std::size_t idx : job.app_indices) {
      const Application& app = wl->apps[idx];
      EXPECT_EQ(app.jobid, job.jobid);
      EXPECT_EQ(app.seq, seq++);
      EXPECT_GE(app.start, cursor);
      EXPECT_GT(app.end, app.start);
      EXPECT_LE(app.end, job.end);
      cursor = app.end;
    }
  }
}

TEST_F(GeneratorTest, ApidsUniqueAndMonotoneInStart) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng(5);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  std::set<ApId> apids;
  for (const Application& app : wl->apps) {
    EXPECT_TRUE(apids.insert(app.apid).second);
  }
  // Sort by apid: starts must be non-decreasing.
  std::vector<const Application*> by_apid;
  for (const Application& app : wl->apps) by_apid.push_back(&app);
  std::sort(by_apid.begin(), by_apid.end(),
            [](const Application* a, const Application* b) {
              return a->apid < b->apid;
            });
  for (std::size_t i = 1; i < by_apid.size(); ++i) {
    EXPECT_GE(by_apid[i]->start, by_apid[i - 1]->start);
  }
}

TEST_F(GeneratorTest, OutcomeMixIsPlausible) {
  WorkloadConfig config = SmallConfig();
  config.target_app_runs = 5000;
  WorkloadGenerator gen(machine_, config);
  Rng rng(6);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  std::uint64_t success = 0, user = 0, walltime = 0;
  for (const Application& app : wl->apps) {
    switch (app.truth) {
      case AppOutcome::kSuccess: ++success; break;
      case AppOutcome::kUserFailure: ++user; break;
      case AppOutcome::kWalltime: ++walltime; break;
      default: FAIL() << "generator must not emit system failures";
    }
  }
  const double n = static_cast<double>(wl->apps.size());
  EXPECT_GT(success / n, 0.85);
  EXPECT_NEAR(user / n, config.user_failure_prob, 0.02);
  EXPECT_GT(walltime, 0u);
}

TEST_F(GeneratorTest, UserFailureTruncatesJob) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng(7);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  for (const Job& job : wl->jobs) {
    for (std::size_t k = 0; k < job.app_indices.size(); ++k) {
      const Application& app = wl->apps[job.app_indices[k]];
      if (app.truth == AppOutcome::kUserFailure ||
          app.truth == AppOutcome::kWalltime) {
        // Must be the last app of the job.
        EXPECT_EQ(k, job.app_indices.size() - 1);
        EXPECT_NE(job.exit_status, 0);
      }
    }
  }
}

TEST_F(GeneratorTest, WalltimeKillsRespectLimit) {
  WorkloadGenerator gen(machine_, SmallConfig());
  Rng rng(8);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  int checked = 0;
  for (const Job& job : wl->jobs) {
    for (std::size_t idx : job.app_indices) {
      const Application& app = wl->apps[idx];
      if (app.truth != AppOutcome::kWalltime) continue;
      EXPECT_EQ(app.end, job.start + job.walltime_limit);
      EXPECT_EQ(app.exit_signal, 15);
      EXPECT_EQ(job.exit_status, 271);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(GeneratorTest, ClampsBucketsToSmallMachine) {
  const Machine tiny = Machine::Testbed(8, 4);
  WorkloadConfig config = SmallConfig();
  config.target_app_runs = 200;
  WorkloadGenerator gen(tiny, config);
  Rng rng(9);
  auto wl = gen.Generate(rng);
  ASSERT_TRUE(wl.ok());
  for (const Job& job : wl->jobs) {
    EXPECT_LE(job.nodect(), 8u);
  }
}

TEST_F(GeneratorTest, LargeBucketBoostShiftsMix) {
  WorkloadConfig config = SmallConfig();
  config.target_app_runs = 3000;
  WorkloadConfig boosted = config;
  boosted.large_bucket_boost = 50.0;

  Rng rng1(10), rng2(10);
  auto base = WorkloadGenerator(machine_, config).Generate(rng1);
  auto boost = WorkloadGenerator(machine_, boosted).Generate(rng2);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(boost.ok());
  auto count_large = [](const Workload& wl) {
    std::uint64_t n = 0;
    for (const Job& job : wl.jobs) n += job.nodect() >= 513 ? 1 : 0;
    return n;
  };
  EXPECT_GT(count_large(*boost), count_large(*base));
}

TEST_F(GeneratorTest, OfferedUtilizationInSaneBand) {
  // At the nominal 5M-run target the calibrated mixture intentionally
  // offers somewhat more than nominal capacity (the FCFS allocator
  // queues the excess; per-run statistics are load-independent, and the
  // benches run scaled-down counts anyway).  Guard against the mixture
  // drifting to absurd offered loads in either direction.
  const Machine bw = Machine::BlueWaters();
  WorkloadConfig config;  // full defaults: 5M apps / 518 days
  WorkloadGenerator gen(bw, config);
  const double xe = gen.OfferedUtilization(NodeType::kXE);
  const double xk = gen.OfferedUtilization(NodeType::kXK);
  EXPECT_GT(xe, 0.4);
  EXPECT_LT(xe, 2.0);
  EXPECT_GT(xk, 0.3);
  EXPECT_LT(xk, 2.0);
}

TEST_F(GeneratorTest, RejectsBadConfig) {
  WorkloadConfig config = SmallConfig();
  config.target_app_runs = 0;
  Rng rng(11);
  EXPECT_FALSE(WorkloadGenerator(machine_, config).Generate(rng).ok());
  config = SmallConfig();
  config.apps_per_job_mean = 0.5;
  EXPECT_FALSE(WorkloadGenerator(machine_, config).Generate(rng).ok());
}

TEST(WorkloadTypes, JobOfAndNodeHours) {
  Workload wl;
  Job job;
  job.jobid = 1;
  job.nodes = {0, 1, 2, 3};
  wl.jobs.push_back(job);
  Application app;
  app.apid = 100;
  app.jobid = 1;
  app.start = TimePoint(0);
  app.end = TimePoint(3600);
  wl.apps.push_back(app);
  EXPECT_EQ(wl.job_of(wl.apps[0]).jobid, 1u);
  EXPECT_DOUBLE_EQ(wl.apps[0].NodeHours(4), 4.0);
  EXPECT_DOUBLE_EQ(wl.TotalNodeHours(), 4.0);
}

}  // namespace
}  // namespace ld
