#include "workload/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/interval.hpp"

namespace ld {
namespace {

JobRequest Req(std::int64_t arrival, std::uint32_t nodect, std::int64_t hold,
               std::int64_t limit = 0) {
  JobRequest job;
  job.arrival = TimePoint(arrival);
  job.nodect = nodect;
  job.hold = Duration(hold);
  job.walltime_limit = Duration(limit > 0 ? limit : hold);
  return job;
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : machine_(Machine::Testbed(96, 24)), rng_(1) {}

  std::vector<Placement> Schedule(const std::vector<JobRequest>& jobs,
                                  SchedulerPolicy policy,
                                  ScheduleStats* stats = nullptr) {
    auto result = ScheduleJobs(machine_, NodeType::kXE, jobs, policy, rng_,
                               stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result) : std::vector<Placement>{};
  }

  /// Verifies no node hosts two jobs at once and all starts >= arrivals.
  void CheckFeasible(const std::vector<JobRequest>& jobs,
                     const std::vector<Placement>& placements) {
    ASSERT_EQ(jobs.size(), placements.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_GE(placements[i].start, jobs[i].arrival);
      EXPECT_EQ(placements[i].nodes.size(), jobs[i].nodect);
      std::set<NodeIndex> unique(placements[i].nodes.begin(),
                                 placements[i].nodes.end());
      EXPECT_EQ(unique.size(), jobs[i].nodect);
      for (std::size_t j = i + 1; j < jobs.size(); ++j) {
        const Interval a{placements[i].start,
                         placements[i].start + jobs[i].hold};
        const Interval b{placements[j].start,
                         placements[j].start + jobs[j].hold};
        if (!a.Overlaps(b)) continue;
        for (NodeIndex n : placements[j].nodes) {
          EXPECT_EQ(unique.count(n), 0u)
              << "node " << n << " double-booked by jobs " << i << "," << j;
        }
      }
    }
  }

  Machine machine_;
  Rng rng_;
};

TEST_F(SchedulerTest, ImmediateStartWhenEmpty) {
  const std::vector<JobRequest> jobs = {Req(100, 10, 50)};
  const auto placements = Schedule(jobs, SchedulerPolicy::kFcfs);
  EXPECT_EQ(placements[0].start, TimePoint(100));
}

TEST_F(SchedulerTest, RejectsBadRequests) {
  Rng rng(1);
  EXPECT_FALSE(ScheduleJobs(machine_, NodeType::kXE, {Req(0, 0, 10)},
                            SchedulerPolicy::kFcfs, rng, nullptr)
                   .ok());
  EXPECT_FALSE(ScheduleJobs(machine_, NodeType::kXE, {Req(0, 97, 10)},
                            SchedulerPolicy::kFcfs, rng, nullptr)
                   .ok());
}

TEST_F(SchedulerTest, FcfsBlocksBehindBigJob) {
  // 90 nodes busy until t=1000; a 90-node job arrives at t=10 and a
  // 1-node job at t=20.  FCFS: the small job waits behind the big one.
  const std::vector<JobRequest> jobs = {
      Req(0, 90, 1000),
      Req(10, 90, 100),
      Req(20, 1, 10),
  };
  const auto placements = Schedule(jobs, SchedulerPolicy::kFcfs);
  EXPECT_EQ(placements[1].start, TimePoint(1000));
  EXPECT_GE(placements[2].start, placements[1].start);
  CheckFeasible(jobs, placements);
}

TEST_F(SchedulerTest, EasyBackfillsShortSmallJob) {
  // Same situation under EASY: the 1-node 10s job finishes long before
  // the big job's shadow time, so it backfills immediately.
  const std::vector<JobRequest> jobs = {
      Req(0, 90, 1000),
      Req(10, 90, 100),
      Req(20, 1, 10),
  };
  ScheduleStats stats;
  const auto placements = Schedule(jobs, SchedulerPolicy::kEasyBackfill,
                                   &stats);
  EXPECT_EQ(placements[1].start, TimePoint(1000));
  EXPECT_EQ(placements[2].start, TimePoint(20));
  EXPECT_EQ(stats.backfilled, 1u);
  CheckFeasible(jobs, placements);
}

TEST_F(SchedulerTest, EasyNeverDelaysQueueHead) {
  // The backfill candidate would outlive the shadow time AND needs more
  // than the spare nodes, so it must NOT start ahead of the head.
  const std::vector<JobRequest> jobs = {
      Req(0, 90, 1000),   // running until 1000
      Req(10, 90, 100),   // head: shadow = 1000, extra = 96-90 = 6
      Req(20, 50, 5000),  // too big for spare, too long for shadow
  };
  const auto placements = Schedule(jobs, SchedulerPolicy::kEasyBackfill);
  EXPECT_EQ(placements[1].start, TimePoint(1000));
  EXPECT_GE(placements[2].start, TimePoint(1000));
  CheckFeasible(jobs, placements);
}

TEST_F(SchedulerTest, EasyBackfillsWithinSpareNodes) {
  // A long job that fits inside the spare-node margin may backfill even
  // though it outlives the shadow time.
  const std::vector<JobRequest> jobs = {
      Req(0, 90, 1000),
      Req(10, 90, 100),  // head; extra = 6 spare nodes
      Req(20, 5, 9000),  // 5 <= 6 spare: backfills despite its length
  };
  const auto placements = Schedule(jobs, SchedulerPolicy::kEasyBackfill);
  EXPECT_EQ(placements[2].start, TimePoint(20));
  CheckFeasible(jobs, placements);
}

TEST_F(SchedulerTest, WalltimeBoundGovernsReservations) {
  // The head's shadow derives from walltime bounds, not actual holds:
  // the running job's limit is 2000 even though it actually ends at 500,
  // so a 1500s backfill candidate is admitted (ends before shadow 2000).
  const std::vector<JobRequest> jobs = {
      Req(0, 90, 500, 2000),
      Req(10, 96, 100, 100),
      Req(20, 6, 1500, 1500),
  };
  const auto placements = Schedule(jobs, SchedulerPolicy::kEasyBackfill);
  EXPECT_EQ(placements[2].start, TimePoint(20));
  // Head starts when nodes actually free (500), not at the bound.
  EXPECT_GE(placements[1].start, TimePoint(500));
  CheckFeasible(jobs, placements);
}

TEST_F(SchedulerTest, UtilizationAndWaitStats) {
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 50; ++i) {
    jobs.push_back(Req(i * 10, 48, 1000));
  }
  ScheduleStats stats;
  (void)Schedule(jobs, SchedulerPolicy::kFcfs, &stats);
  EXPECT_EQ(stats.jobs, 50u);
  EXPECT_GT(stats.mean_wait_hours, 0.0);
  EXPECT_GT(stats.utilization, 0.5);
  EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

TEST_F(SchedulerTest, EasyImprovesUtilizationUnderMixedLoad) {
  // Heavy bimodal load: big long jobs + streams of small short ones.
  Rng gen(7);
  std::vector<JobRequest> jobs;
  std::int64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    t += gen.UniformInt(5, 60);
    if (i % 13 == 0) {
      jobs.push_back(Req(t, 80, gen.UniformInt(2000, 6000)));
    } else {
      jobs.push_back(
          Req(t, static_cast<std::uint32_t>(gen.UniformInt(1, 8)),
              gen.UniformInt(30, 600)));
    }
  }
  ScheduleStats fcfs_stats, easy_stats;
  Rng r1(3), r2(3);
  auto fcfs = ScheduleJobs(machine_, NodeType::kXE, jobs,
                           SchedulerPolicy::kFcfs, r1, &fcfs_stats);
  auto easy = ScheduleJobs(machine_, NodeType::kXE, jobs,
                           SchedulerPolicy::kEasyBackfill, r2, &easy_stats);
  ASSERT_TRUE(fcfs.ok());
  ASSERT_TRUE(easy.ok());
  EXPECT_GT(easy_stats.backfilled, 0u);
  EXPECT_LT(easy_stats.mean_wait_hours, fcfs_stats.mean_wait_hours);
  CheckFeasible(jobs, *easy);
}

TEST_F(SchedulerTest, DeterministicInSeed) {
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 100; ++i) jobs.push_back(Req(i * 5, 10, 200));
  Rng r1(9), r2(9);
  auto a = ScheduleJobs(machine_, NodeType::kXE, jobs,
                        SchedulerPolicy::kEasyBackfill, r1, nullptr);
  auto b = ScheduleJobs(machine_, NodeType::kXE, jobs,
                        SchedulerPolicy::kEasyBackfill, r2, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].start, (*b)[i].start);
    EXPECT_EQ((*a)[i].nodes, (*b)[i].nodes);
  }
}

TEST_F(SchedulerTest, UnsortedArrivalsHandled) {
  const std::vector<JobRequest> jobs = {Req(500, 10, 50), Req(0, 10, 50)};
  const auto placements = Schedule(jobs, SchedulerPolicy::kFcfs);
  EXPECT_EQ(placements[1].start, TimePoint(0));
  EXPECT_EQ(placements[0].start, TimePoint(500));
}

TEST(SchedulerPolicyName, Names) {
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kFcfs), "fcfs");
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kEasyBackfill),
               "easy-backfill");
}

}  // namespace
}  // namespace ld
