#include "workload/appmix.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "workload/generator.hpp"

namespace ld {
namespace {

TEST(AppMix, IoHeavyMixIsWellFormed) {
  const auto& mix = IoHeavyMix();
  ASSERT_GE(mix.size(), 4u);
  double weight = 0.0;
  bool any_xk = false, any_xe = false;
  for (const AppMixEntry& entry : mix) {
    EXPECT_GT(entry.weight, 0.0) << entry.name;
    EXPECT_GE(entry.nodes_hi, entry.nodes_lo) << entry.name;
    EXPECT_GT(entry.nodes_lo, 0u) << entry.name;
    EXPECT_GT(entry.median_hours, 0.0) << entry.name;
    EXPECT_GT(entry.lustre_sensitivity, 0.0) << entry.name;
    weight += entry.weight;
    (entry.xk ? any_xk : any_xe) = true;
  }
  EXPECT_NEAR(weight, 1.0, 1e-9);
  // The A6 contrast needs both partitions populated.
  EXPECT_TRUE(any_xe);
  EXPECT_TRUE(any_xk);
}

TEST(AppMix, FindMixEntry) {
  const auto& mix = IoHeavyMix();
  const AppMixEntry* wrf = FindMixEntry(mix, "wrf");
  ASSERT_NE(wrf, nullptr);
  EXPECT_FALSE(wrf->xk);
  EXPECT_EQ(FindMixEntry(mix, "no-such-app"), nullptr);
  EXPECT_GT(MixMeanLustreSensitivity(mix), 0.0);
}

class AppMixGeneratorTest : public ::testing::Test {
 protected:
  AppMixGeneratorTest() : machine_(Machine::Testbed(960, 192)) {
    config_.target_app_runs = 1500;
    config_.campaign = Duration::Days(20);
  }

  Workload Generate(std::uint64_t seed) {
    WorkloadGenerator gen(machine_, config_);
    Rng rng(seed);
    auto wl = gen.Generate(rng);
    EXPECT_TRUE(wl.ok());
    return std::move(*wl);
  }

  Machine machine_;
  WorkloadConfig config_;
};

TEST_F(AppMixGeneratorTest, MixJobsCarryNameAndSensitivity) {
  config_.app_mix = IoHeavyMix();
  const Workload wl = Generate(11);
  ASSERT_GT(wl.jobs.size(), 50u);
  std::size_t named = 0;
  for (const Job& job : wl.jobs) {
    // Every job must come from a mix entry: name prefix, node range and
    // partition must agree with that entry.
    const auto underscore = job.job_name.find('_');
    ASSERT_NE(underscore, std::string::npos) << job.job_name;
    const AppMixEntry* entry =
        FindMixEntry(config_.app_mix, job.job_name.substr(0, underscore));
    ASSERT_NE(entry, nullptr) << job.job_name;
    ++named;
    EXPECT_EQ(job.node_type, entry->xk ? NodeType::kXK : NodeType::kXE);
    EXPECT_GE(job.nodect(), entry->nodes_lo);
    EXPECT_LE(job.nodect(), entry->nodes_hi);
    EXPECT_DOUBLE_EQ(job.lustre_sensitivity, entry->lustre_sensitivity);
  }
  EXPECT_EQ(named, wl.jobs.size());
}

TEST_F(AppMixGeneratorTest, DefaultPathKeepsUnitSensitivity) {
  const Workload wl = Generate(11);
  for (const Job& job : wl.jobs) {
    EXPECT_DOUBLE_EQ(job.lustre_sensitivity, 1.0);
  }
}

TEST_F(AppMixGeneratorTest, ZeroDiurnalAmplitudeChangesNothing) {
  // amplitude 0 must not consume any extra randomness: the stream — and
  // hence every calibrated anchor — stays bit-identical to the default.
  const Workload baseline = Generate(7);
  config_.diurnal_amplitude = 0.0;
  config_.diurnal_peak_hour = 3;  // irrelevant at zero amplitude
  const Workload same = Generate(7);
  ASSERT_EQ(baseline.apps.size(), same.apps.size());
  ASSERT_EQ(baseline.jobs.size(), same.jobs.size());
  for (std::size_t i = 0; i < baseline.apps.size(); ++i) {
    EXPECT_EQ(baseline.apps[i].apid, same.apps[i].apid);
    EXPECT_EQ(baseline.apps[i].start, same.apps[i].start);
    EXPECT_EQ(baseline.apps[i].end, same.apps[i].end);
  }
}

TEST_F(AppMixGeneratorTest, DiurnalLoadPeaksAtConfiguredHour) {
  config_.target_app_runs = 4000;
  config_.campaign = Duration::Days(40);
  config_.diurnal_amplitude = 0.8;
  config_.diurnal_peak_hour = 14;
  const Workload wl = Generate(13);
  ASSERT_GT(wl.jobs.size(), 200u);

  // Bin submissions by hour of day and contrast the 6 hours around the
  // peak with the 6 hours around the trough (peak + 12).
  std::array<std::uint64_t, 24> bins{};
  const TimePoint epoch = config_.epoch;
  for (const Job& job : wl.jobs) {
    const double hours = (job.submit - epoch).seconds() / 3600.0;
    bins[static_cast<std::size_t>(std::fmod(hours, 24.0))] += 1;
  }
  auto window = [&bins](int center) {
    std::uint64_t total = 0;
    for (int d = -3; d <= 3; ++d) total += bins[(center + d + 24) % 24];
    return total;
  };
  const std::uint64_t peak = window(14);
  const std::uint64_t trough = window(2);
  EXPECT_GT(static_cast<double>(peak), 1.3 * static_cast<double>(trough))
      << "peak " << peak << " trough " << trough;
}

}  // namespace
}  // namespace ld
