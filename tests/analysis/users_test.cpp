#include "analysis/users.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

AppRun MakeRun(ApId apid, const std::string& user, std::uint32_t nodect,
               std::int64_t hours) {
  AppRun run;
  run.apid = apid;
  run.user = Intern(user);
  run.nodect = nodect;
  run.start = TimePoint(0);
  run.end = TimePoint(hours * 3600);
  run.has_termination = true;
  return run;
}

ClassifiedRun Cls(std::uint32_t idx, AppOutcome outcome) {
  ClassifiedRun cls;
  cls.run_index = idx;
  cls.outcome = outcome;
  return cls;
}

TEST(UserImpact, AggregatesPerUser) {
  std::vector<AppRun> runs = {
      MakeRun(1, "alice", 10, 2),  // 20 nh
      MakeRun(2, "alice", 10, 1),  // 10 nh
      MakeRun(3, "bob", 100, 3),   // 300 nh
  };
  std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSuccess),
      Cls(1, AppOutcome::kSystemFailure),
      Cls(2, AppOutcome::kUserFailure),
  };
  const UserImpactReport report = ComputeUserImpact(runs, classified);
  ASSERT_EQ(report.rows.size(), 2u);
  // alice leads: she lost node-hours, bob lost none.
  EXPECT_EQ(report.rows[0].user, "alice");
  EXPECT_EQ(report.rows[0].runs, 2u);
  EXPECT_EQ(report.rows[0].system_failures, 1u);
  EXPECT_DOUBLE_EQ(report.rows[0].lost_node_hours, 10.0);
  EXPECT_DOUBLE_EQ(report.rows[0].SystemFailureRate(), 0.5);
  EXPECT_EQ(report.rows[1].user, "bob");
  EXPECT_EQ(report.rows[1].user_failures, 1u);
  EXPECT_DOUBLE_EQ(report.rows[1].lost_node_hours, 0.0);
  EXPECT_DOUBLE_EQ(report.total_lost_node_hours, 10.0);
}

TEST(UserImpact, TopDecileShare) {
  std::vector<AppRun> runs;
  std::vector<ClassifiedRun> classified;
  // 20 users; user u00 loses 100 nh, the rest lose 1 nh each.
  for (int u = 0; u < 20; ++u) {
    char name[8];
    std::snprintf(name, sizeof(name), "u%02d", u);
    runs.push_back(MakeRun(static_cast<ApId>(u + 1), name,
                           u == 0 ? 100 : 1, 1));
    classified.push_back(
        Cls(static_cast<std::uint32_t>(u), AppOutcome::kSystemFailure));
  }
  const UserImpactReport report = ComputeUserImpact(runs, classified);
  ASSERT_EQ(report.rows.size(), 20u);
  EXPECT_EQ(report.rows[0].user, "u00");
  // Top decile = 2 users = 100 + 1 of 119 total.
  EXPECT_NEAR(report.top_decile_lost_share, 101.0 / 119.0, 1e-12);
}

TEST(UserImpact, EmptyInput) {
  const UserImpactReport report = ComputeUserImpact({}, {});
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.top_decile_lost_share, 0.0);
}

TEST(UserImpact, NoLossesNoShare) {
  std::vector<AppRun> runs = {MakeRun(1, "alice", 1, 1)};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess)};
  const UserImpactReport report = ComputeUserImpact(runs, classified);
  EXPECT_EQ(report.top_decile_lost_share, 0.0);
}

}  // namespace
}  // namespace ld
