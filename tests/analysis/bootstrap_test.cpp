#include "analysis/bootstrap.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(BootstrapRatioCi, PointEstimateExact) {
  Rng rng(1);
  auto ci = BootstrapRatioCi({1.0, 0.0, 1.0, 0.0}, {1.0, 1.0, 1.0, 1.0}, 200,
                             rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci->point, 0.5);
  EXPECT_LE(ci->lo, ci->point);
  EXPECT_GE(ci->hi, ci->point);
}

TEST(BootstrapRatioCi, Rejections) {
  Rng rng(1);
  EXPECT_FALSE(BootstrapRatioCi({}, {}, 100, rng).ok());
  EXPECT_FALSE(BootstrapRatioCi({1.0}, {1.0, 2.0}, 100, rng).ok());
  EXPECT_FALSE(BootstrapRatioCi({1.0}, {0.0}, 100, rng).ok());
  EXPECT_FALSE(BootstrapRatioCi({1.0}, {1.0}, 0, rng).ok());
}

TEST(BootstrapRatioCi, IntervalNarrowsWithSampleSize) {
  Rng rng(2);
  auto width = [&rng](std::size_t n) {
    std::vector<double> num(n), den(n, 1.0);
    Rng gen(7);
    for (std::size_t i = 0; i < n; ++i) num[i] = gen.Bernoulli(0.2) ? 1.0 : 0.0;
    auto ci = BootstrapRatioCi(num, den, 300, rng);
    EXPECT_TRUE(ci.ok());
    return ci->hi - ci->lo;
  };
  EXPECT_GT(width(50), width(5000));
}

TEST(BootstrapRatioCi, HeavyTailWidensInterval) {
  // One huge denominator item dominating the ratio makes the CI wide —
  // the exact phenomenon that motivates bootstrapping A3.
  Rng rng(3);
  std::vector<double> num(200, 0.0), den(200, 1.0);
  num[0] = 500.0;
  den[0] = 500.0;  // one run is 70% of all node-hours and it failed
  auto ci = BootstrapRatioCi(num, den, 500, rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_GT(ci->hi - ci->lo, 0.3);
  EXPECT_NEAR(ci->point, 500.0 / 699.0, 1e-9);
}

AppRun NodeHoursRun(std::uint32_t nodect, std::int64_t hours) {
  AppRun run;
  run.nodect = nodect;
  run.start = TimePoint(0);
  run.end = TimePoint(hours * 3600);
  return run;
}

TEST(BootstrapHeadlines, LostShareAndFraction) {
  std::vector<AppRun> runs = {NodeHoursRun(1, 1), NodeHoursRun(100, 10),
                              NodeHoursRun(1, 1), NodeHoursRun(1, 1)};
  std::vector<ClassifiedRun> classified(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    classified[i].run_index = i;
    classified[i].outcome =
        i == 1 ? AppOutcome::kSystemFailure : AppOutcome::kSuccess;
  }
  Rng rng(4);
  auto lost = BootstrapLostShareCi(runs, classified, 300, rng);
  ASSERT_TRUE(lost.ok());
  EXPECT_NEAR(lost->point, 1000.0 / 1003.0, 1e-9);
  auto frac = BootstrapFailureFractionCi(runs, classified, 300, rng);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(frac->point, 0.25);
}

}  // namespace
}  // namespace ld
