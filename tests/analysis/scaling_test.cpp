#include "analysis/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ld {
namespace {

ScalePoint Point(std::uint32_t lo, std::uint32_t hi, std::uint64_t runs,
                 std::uint64_t failures) {
  ScalePoint p;
  p.lo = lo;
  p.hi = hi;
  p.runs = runs;
  p.system_failures = failures;
  p.failure_probability = WilsonInterval(failures, runs);
  return p;
}

TEST(FitScaleCurve, RecoversLinearExposureModel) {
  // Generate points from P = 1 - exp(-c*N) with c = 1e-5 (exponent 1).
  std::vector<ScalePoint> points;
  for (std::uint32_t n : {100u, 1000u, 10000u, 20000u}) {
    const double p = 1.0 - std::exp(-1e-5 * n);
    const std::uint64_t runs = 1000000;
    points.push_back(
        Point(n, n, runs, static_cast<std::uint64_t>(p * runs)));
  }
  auto fit = FitScaleCurve(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 1.0, 0.02);
  EXPECT_GT(fit->r_squared, 0.999);
  EXPECT_NEAR(fit->Predict(10000), 1.0 - std::exp(-0.1), 0.005);
}

TEST(FitScaleCurve, DetectsSuperlinearity) {
  // P = 1 - exp(-(c*N)^2): exponent 2.
  std::vector<ScalePoint> points;
  for (std::uint32_t n : {100u, 1000u, 5000u, 20000u}) {
    const double z = 2e-5 * n;
    const double p = 1.0 - std::exp(-z * z);
    points.push_back(
        Point(n, n, 1000000, static_cast<std::uint64_t>(p * 1000000)));
  }
  auto fit = FitScaleCurve(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 2.0, 0.1);
}

TEST(FitScaleCurve, SkipsDegenerateBuckets) {
  std::vector<ScalePoint> points = {
      Point(1, 1, 0, 0),          // no runs
      Point(10, 10, 100, 0),      // p == 0
      Point(100, 100, 100, 100),  // p == 1
      Point(1000, 1000, 1000, 10),
  };
  // Only one usable bucket -> error.
  EXPECT_FALSE(FitScaleCurve(points).ok());
  points.push_back(Point(5000, 5000, 1000, 200));
  EXPECT_TRUE(FitScaleCurve(points).ok());
}

TEST(InterpolateScaleCurve, InterpolatesAndClamps) {
  std::vector<ScalePoint> points = {
      Point(1, 1, 100, 1),          // p = 0.01 at N=1
      Point(100, 100, 100, 10),     // p = 0.10 at N=100
      Point(10000, 10000, 100, 40), // p = 0.40 at N=10000
  };
  // Below and above the curve: clamp to the edge buckets.
  EXPECT_NEAR(InterpolateScaleCurve(points, 0.5).value(), 0.01, 1e-12);
  EXPECT_NEAR(InterpolateScaleCurve(points, 1e6).value(), 0.40, 1e-12);
  // At a midpoint: exact.
  EXPECT_NEAR(InterpolateScaleCurve(points, 100).value(), 0.10, 1e-12);
  // Log-linear between N=100 and N=10000: N=1000 is halfway in log space.
  EXPECT_NEAR(InterpolateScaleCurve(points, 1000).value(), 0.25, 1e-9);
}

TEST(InterpolateScaleCurve, SkipsEmptyBucketsAndRejectsBadInput) {
  std::vector<ScalePoint> points = {Point(1, 1, 0, 0), Point(10, 10, 50, 5)};
  EXPECT_NEAR(InterpolateScaleCurve(points, 3).value(), 0.1, 1e-12);
  EXPECT_FALSE(InterpolateScaleCurve({}, 10).ok());
  EXPECT_FALSE(InterpolateScaleCurve(points, 0.0).ok());
  EXPECT_FALSE(InterpolateScaleCurve({Point(1, 1, 0, 0)}, 5).ok());
}

TEST(InterruptionGaps, ComputedFromSortedFailures) {
  std::vector<AppRun> runs(3);
  runs[0].end = TimePoint(3600 * 10);
  runs[1].end = TimePoint(3600 * 2);
  runs[2].end = TimePoint(3600 * 5);
  std::vector<ClassifiedRun> classified;
  for (std::uint32_t i = 0; i < 3; ++i) {
    ClassifiedRun cls;
    cls.run_index = i;
    cls.outcome = AppOutcome::kSystemFailure;
    classified.push_back(cls);
  }
  const auto gaps = InterruptionGapsHours(runs, classified);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 3.0);  // 2h -> 5h
  EXPECT_DOUBLE_EQ(gaps[1], 5.0);  // 5h -> 10h
}

TEST(InterruptionGaps, IgnoresNonSystemOutcomes) {
  std::vector<AppRun> runs(2);
  runs[0].end = TimePoint(100);
  runs[1].end = TimePoint(200);
  std::vector<ClassifiedRun> classified(2);
  classified[0].run_index = 0;
  classified[0].outcome = AppOutcome::kUserFailure;
  classified[1].run_index = 1;
  classified[1].outcome = AppOutcome::kSuccess;
  EXPECT_TRUE(InterruptionGapsHours(runs, classified).empty());
}

TEST(FitInterruptionGaps, NeedsEnoughData) {
  std::vector<AppRun> runs(3);
  std::vector<ClassifiedRun> classified(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    runs[i].end = TimePoint(i * 1000);
    classified[i].run_index = i;
    classified[i].outcome = AppOutcome::kSystemFailure;
  }
  EXPECT_FALSE(FitInterruptionGaps(runs, classified).ok());
}

TEST(FitInterruptionGaps, FitsExponentialArrivals) {
  // Poisson failure arrivals -> exponential gaps.
  Rng rng(9);
  std::vector<AppRun> runs;
  std::vector<ClassifiedRun> classified;
  double clock = 0.0;
  for (int i = 0; i < 2000; ++i) {
    clock += rng.Exponential(1.0 / 7200.0);  // mean 2h in seconds
    AppRun run;
    run.end = TimePoint(static_cast<std::int64_t>(clock));
    runs.push_back(run);
    ClassifiedRun cls;
    cls.run_index = static_cast<std::uint32_t>(i);
    cls.outcome = AppOutcome::kSystemFailure;
    classified.push_back(cls);
  }
  auto fits = FitInterruptionGaps(runs, classified);
  ASSERT_TRUE(fits.ok());
  ASSERT_FALSE(fits->empty());
  // Mean of the best fit should be near 2 hours.
  EXPECT_NEAR(fits->front()->Mean(), 2.0, 0.15);
}

}  // namespace
}  // namespace ld
