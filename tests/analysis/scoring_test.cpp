#include "analysis/scoring.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ld {
namespace {

AppRun MakeRun(ApId apid) {
  AppRun run;
  run.apid = apid;
  run.nodect = 1;
  run.has_termination = true;
  return run;
}

ClassifiedRun Cls(std::uint32_t idx, AppOutcome outcome,
                  ErrorCategory cause = ErrorCategory::kUnknown) {
  ClassifiedRun cls;
  cls.run_index = idx;
  cls.outcome = outcome;
  cls.cause = cause;
  return cls;
}

TruthRecord Truth(ApId apid, AppOutcome outcome,
                  ErrorCategory cause = ErrorCategory::kUnknown) {
  TruthRecord rec;
  rec.apid = apid;
  rec.outcome = outcome;
  rec.cause = cause;
  return rec;
}

TEST(Scoring, PerfectClassification) {
  const std::vector<AppRun> runs = {MakeRun(1), MakeRun(2)};
  const std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSuccess),
      Cls(1, AppOutcome::kSystemFailure, ErrorCategory::kLustre)};
  std::unordered_map<ApId, TruthRecord> truth;
  truth.emplace(1, Truth(1, AppOutcome::kSuccess));
  truth.emplace(2, Truth(2, AppOutcome::kSystemFailure, ErrorCategory::kLustre));
  const ScoreReport report = ScoreClassification(runs, classified, truth);
  EXPECT_EQ(report.scored_runs, 2u);
  EXPECT_DOUBLE_EQ(report.overall_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.system_precision, 1.0);
  EXPECT_DOUBLE_EQ(report.system_recall, 1.0);
  EXPECT_DOUBLE_EQ(report.system_f1, 1.0);
  EXPECT_DOUBLE_EQ(report.cause_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.cause_unattributed, 0.0);
}

TEST(Scoring, FalsePositiveAndNegative) {
  const std::vector<AppRun> runs = {MakeRun(1), MakeRun(2), MakeRun(3),
                                    MakeRun(4)};
  const std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSystemFailure, ErrorCategory::kLustre),  // FP
      Cls(1, AppOutcome::kUserFailure),                            // FN
      Cls(2, AppOutcome::kSystemFailure, ErrorCategory::kMemoryUE),  // TP
      Cls(3, AppOutcome::kSuccess),                                 // TN
  };
  std::unordered_map<ApId, TruthRecord> truth;
  truth.emplace(1, Truth(1, AppOutcome::kUserFailure));
  truth.emplace(2, Truth(2, AppOutcome::kSystemFailure, ErrorCategory::kGpuDbe));
  truth.emplace(3, Truth(3, AppOutcome::kSystemFailure, ErrorCategory::kMemoryUE));
  truth.emplace(4, Truth(4, AppOutcome::kSuccess));
  const ScoreReport report = ScoreClassification(runs, classified, truth);
  EXPECT_DOUBLE_EQ(report.system_precision, 0.5);
  EXPECT_DOUBLE_EQ(report.system_recall, 0.5);
  EXPECT_DOUBLE_EQ(report.overall_accuracy, 0.5);
  // Confusion matrix entries.
  const auto ti = static_cast<std::size_t>(AppOutcome::kSystemFailure);
  const auto pi = static_cast<std::size_t>(AppOutcome::kUserFailure);
  EXPECT_EQ(report.confusion[ti][pi], 1u);
}

TEST(Scoring, CauseUnattributedCounted) {
  const std::vector<AppRun> runs = {MakeRun(1), MakeRun(2)};
  const std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSystemFailure, ErrorCategory::kUnknown),
      Cls(1, AppOutcome::kSystemFailure, ErrorCategory::kLustre)};
  std::unordered_map<ApId, TruthRecord> truth;
  truth.emplace(1, Truth(1, AppOutcome::kSystemFailure, ErrorCategory::kGpuDbe));
  truth.emplace(2, Truth(2, AppOutcome::kSystemFailure, ErrorCategory::kLustre));
  const ScoreReport report = ScoreClassification(runs, classified, truth);
  EXPECT_DOUBLE_EQ(report.cause_accuracy, 0.5);
  EXPECT_DOUBLE_EQ(report.cause_unattributed, 0.5);
}

TEST(Scoring, MissingTruthCounted) {
  const std::vector<AppRun> runs = {MakeRun(1)};
  const std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess)};
  const ScoreReport report = ScoreClassification(runs, classified, {});
  EXPECT_EQ(report.scored_runs, 0u);
  EXPECT_EQ(report.missing_truth, 1u);
}

TEST(Scoring, LoadGroundTruthRoundTrip) {
  const std::string path = ::testing::TempDir() + "/truth_test.csv";
  {
    std::ofstream f(path);
    f << "apid,outcome,cause,event_id,cause_detected\n";
    f << "100,success,,0,0\n";
    f << "101,system_failure,gpu_dbe,42,1\n";
    f << "102,user_failure,,0,0\n";
  }
  auto truth = LoadGroundTruth(path);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(truth->size(), 3u);
  EXPECT_EQ(truth->at(100).outcome, AppOutcome::kSuccess);
  EXPECT_EQ(truth->at(101).outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(truth->at(101).cause, ErrorCategory::kGpuDbe);
  EXPECT_EQ(truth->at(101).event_id, 42u);
  EXPECT_TRUE(truth->at(101).cause_detected);
  std::remove(path.c_str());
}

TEST(Scoring, LoadGroundTruthRejectsBadRows) {
  const std::string path = ::testing::TempDir() + "/truth_bad.csv";
  {
    std::ofstream f(path);
    f << "apid,outcome,cause,event_id,cause_detected\n";
    f << "100,not_an_outcome,,0,0\n";
  }
  EXPECT_FALSE(LoadGroundTruth(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadGroundTruth("/nonexistent.csv").ok());
}

}  // namespace
}  // namespace ld
