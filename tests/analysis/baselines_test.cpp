#include "analysis/baselines.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

AppRun MakeRun(ApId apid, std::vector<NodeIndex> nodes, std::int64_t start,
               std::int64_t end, int code, int signal) {
  AppRun run;
  run.apid = apid;
  run.nodes = std::move(nodes);
  run.nodect = static_cast<std::uint32_t>(run.nodes.size());
  run.start = TimePoint(start);
  run.end = TimePoint(end);
  run.has_termination = true;
  run.exit_code = code;
  run.exit_signal = signal;
  run.job_start = TimePoint(start);
  run.walltime_limit = Duration::Hours(10);
  return run;
}

ErrorTuple MakeTuple(std::uint64_t id, Severity sev,
                     std::vector<NodeIndex> nodes, std::int64_t t) {
  ErrorTuple tuple;
  tuple.id = id;
  tuple.category = ErrorCategory::kMemoryUE;
  tuple.severity = sev;
  tuple.scope = LocScope::kNode;
  tuple.nodes = std::move(nodes);
  tuple.first = TimePoint(t);
  tuple.last = TimePoint(t);
  tuple.count = 1;
  return tuple;
}

TEST(Baselines, NamesAreDistinct) {
  EXPECT_STRNE(BaselineModeName(BaselineMode::kExitOnlyConservative),
               BaselineModeName(BaselineMode::kExitOnlyPessimistic));
  EXPECT_STRNE(BaselineModeName(BaselineMode::kTemporalOnly),
               BaselineModeName(BaselineMode::kSpatialOnly));
}

TEST(Baselines, AllAgreeOnCleanExits) {
  const std::vector<AppRun> runs = {MakeRun(1, {0}, 0, 100, 0, 0)};
  for (BaselineMode mode :
       {BaselineMode::kExitOnlyConservative, BaselineMode::kExitOnlyPessimistic,
        BaselineMode::kTemporalOnly, BaselineMode::kSpatialOnly}) {
    const auto out = ClassifyBaseline(mode, runs, {}, CorrelatorConfig{});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].outcome, AppOutcome::kSuccess)
        << BaselineModeName(mode);
  }
}

TEST(Baselines, ExitOnlyModesDisagreeOnAbnormalExit) {
  const std::vector<AppRun> runs = {MakeRun(1, {0}, 0, 100, 139, 11)};
  const auto conservative =
      ClassifyBaseline(BaselineMode::kExitOnlyConservative, runs, {},
                       CorrelatorConfig{});
  const auto pessimistic = ClassifyBaseline(
      BaselineMode::kExitOnlyPessimistic, runs, {}, CorrelatorConfig{});
  EXPECT_EQ(conservative[0].outcome, AppOutcome::kUserFailure);
  EXPECT_EQ(pessimistic[0].outcome, AppOutcome::kSystemFailure);
}

TEST(Baselines, TemporalOnlyBlamesRemoteErrors) {
  // Error on node 50, run on node 0: LogDiver would not attribute, the
  // temporal baseline does.
  const std::vector<AppRun> runs = {MakeRun(1, {0}, 0, 1000, 1, 0)};
  const std::vector<ErrorTuple> tuples = {
      MakeTuple(1, Severity::kFatal, {50}, 990)};
  const auto out = ClassifyBaseline(BaselineMode::kTemporalOnly, runs, tuples,
                                    CorrelatorConfig{});
  EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(out[0].tuple_id, 1u);
}

TEST(Baselines, TemporalOnlyRespectsWindow) {
  const std::vector<AppRun> runs = {MakeRun(1, {0}, 0, 5000, 1, 0)};
  const std::vector<ErrorTuple> tuples = {
      MakeTuple(1, Severity::kFatal, {50}, 100)};
  const auto out = ClassifyBaseline(BaselineMode::kTemporalOnly, runs, tuples,
                                    CorrelatorConfig{});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST(Baselines, SpatialOnlyBlamesNoiseFloor) {
  // A corrected event on the run's node during its window is enough for
  // the spatial baseline — exactly its weakness.
  const std::vector<AppRun> runs = {MakeRun(1, {0}, 0, 1000, 1, 0)};
  const std::vector<ErrorTuple> tuples = {
      MakeTuple(1, Severity::kCorrected, {0}, 500)};
  const auto out = ClassifyBaseline(BaselineMode::kSpatialOnly, runs, tuples,
                                    CorrelatorConfig{});
  EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure);
}

TEST(Baselines, SpatialOnlyRequiresNodeOverlap) {
  const std::vector<AppRun> runs = {MakeRun(1, {0}, 0, 1000, 1, 0)};
  const std::vector<ErrorTuple> tuples = {
      MakeTuple(1, Severity::kFatal, {3}, 500)};
  const auto out = ClassifyBaseline(BaselineMode::kSpatialOnly, runs, tuples,
                                    CorrelatorConfig{});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST(Baselines, NodeFailureKillsAlwaysSystem) {
  AppRun run = MakeRun(1, {0}, 0, 1000, 137, 9);
  run.killed_node_failure = true;
  for (BaselineMode mode :
       {BaselineMode::kExitOnlyConservative, BaselineMode::kTemporalOnly,
        BaselineMode::kSpatialOnly}) {
    const auto out = ClassifyBaseline(mode, {run}, {}, CorrelatorConfig{});
    EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure)
        << BaselineModeName(mode);
  }
}

TEST(Baselines, WalltimeStillRecognized) {
  AppRun run = MakeRun(1, {0}, 0, 36000, 143, 15);
  run.walltime_limit = Duration(36000);
  const auto out = ClassifyBaseline(BaselineMode::kExitOnlyPessimistic, {run},
                                    {}, CorrelatorConfig{});
  EXPECT_EQ(out[0].outcome, AppOutcome::kWalltime);
}

}  // namespace
}  // namespace ld
