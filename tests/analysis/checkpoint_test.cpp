#include "analysis/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ld {
namespace {

TEST(DalyInterval, Formula) {
  EXPECT_DOUBLE_EQ(DalyInterval(0.08, 25.0), 2.0);  // sqrt(2*0.08*25) = 2
  EXPECT_DOUBLE_EQ(DalyInterval(0.0, 10.0), 0.0);
  EXPECT_THROW(DalyInterval(0.1, 0.0), std::logic_error);
}

TEST(CheckpointSim, NoFailuresFinishExactly) {
  CheckpointRunConfig config;
  config.work_hours = 10.0;
  config.checkpoint_cost_hours = 0.1;
  config.interval_hours = 1.0;
  Rng rng(1);
  // Effectively no interruptions.
  const CheckpointRunResult run = SimulateCheckpointRun(config, 1e12, rng);
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.interruptions, 0u);
  // 10 segments of 1h, 9 intermediate checkpoints of 0.1h.
  EXPECT_NEAR(run.makespan_hours, 10.0 + 9 * 0.1, 1e-9);
  EXPECT_NEAR(run.useful_fraction, 10.0 / 10.9, 1e-9);
}

TEST(CheckpointSim, NoCheckpointingLosesEverything) {
  CheckpointRunConfig config;
  config.work_hours = 5.0;
  config.interval_hours = 0.0;  // none
  config.restart_cost_hours = 0.0;
  Rng rng(2);
  // MTTI comparable to the work: many total restarts expected.
  const CheckpointRunResult run = SimulateCheckpointRun(config, 5.0, rng);
  if (run.completed) {
    // Whatever happened, useful fraction cannot exceed 1 and the
    // makespan must be >= the raw work.
    EXPECT_GE(run.makespan_hours, 5.0);
    EXPECT_LE(run.useful_fraction, 1.0);
  }
}

TEST(CheckpointSim, CheckpointingBeatsNoneUnderFrequentFailures) {
  CheckpointRunConfig with;
  with.work_hours = 20.0;
  with.checkpoint_cost_hours = 0.05;
  with.restart_cost_hours = 0.05;
  with.interval_hours = 1.0;
  CheckpointRunConfig without = with;
  without.interval_hours = 0.0;
  without.max_makespan_hours = 100000.0;

  Rng rng(3);
  const CheckpointStudy ckpt = RunCheckpointStudy(with, 10.0, 200, rng);
  const CheckpointStudy none = RunCheckpointStudy(without, 10.0, 200, rng);
  EXPECT_EQ(ckpt.completion_rate, 1.0);
  EXPECT_LT(ckpt.mean_makespan_hours, none.mean_makespan_hours);
  EXPECT_GT(ckpt.mean_useful_fraction, none.mean_useful_fraction);
}

TEST(CheckpointSim, DalyIntervalNearOptimal) {
  // Sweep intervals around Daly's tau*; the simulated makespan at tau*
  // must be within a few percent of the sweep's best.
  const double mtti = 25.0;
  const double cost = 0.08;
  const double tau_star = DalyInterval(cost, mtti);  // = 2.0

  auto makespan_at = [&](double tau) {
    CheckpointRunConfig config;
    config.work_hours = 50.0;
    config.checkpoint_cost_hours = cost;
    config.restart_cost_hours = cost;
    config.interval_hours = tau;
    Rng rng(7);
    return RunCheckpointStudy(config, mtti, 400, rng).mean_makespan_hours;
  };

  const double at_star = makespan_at(tau_star);
  double best = at_star;
  for (double tau : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    best = std::min(best, makespan_at(tau));
  }
  EXPECT_LT(at_star, best * 1.05);
  // And the extremes must be clearly worse.
  EXPECT_GT(makespan_at(0.25), at_star * 1.02);
  EXPECT_GT(makespan_at(16.0), at_star * 1.02);
}

TEST(CheckpointSim, MoreFailuresWithLowerMtti) {
  CheckpointRunConfig config;
  config.work_hours = 30.0;
  config.checkpoint_cost_hours = 0.05;
  config.interval_hours = 1.0;
  Rng rng1(5), rng2(5);
  const CheckpointStudy frequent = RunCheckpointStudy(config, 5.0, 100, rng1);
  const CheckpointStudy rare = RunCheckpointStudy(config, 500.0, 100, rng2);
  EXPECT_GT(frequent.mean_interruptions, rare.mean_interruptions);
  EXPECT_GT(frequent.mean_makespan_hours, rare.mean_makespan_hours);
}

TEST(CheckpointSim, SafetyValveDeclaresFailure) {
  CheckpointRunConfig config;
  config.work_hours = 100.0;
  config.interval_hours = 0.0;   // no checkpoints
  config.max_makespan_hours = 50.0;  // cannot possibly finish
  Rng rng(6);
  const CheckpointRunResult run = SimulateCheckpointRun(config, 1.0, rng);
  EXPECT_FALSE(run.completed);
  EXPECT_GE(run.makespan_hours, 50.0);
}

TEST(CheckpointSim, DistributionSamplerMatchesExponential) {
  // Sampling gaps from an ExponentialDist must agree (statistically)
  // with the rate-based path.
  CheckpointRunConfig config;
  config.work_hours = 20.0;
  config.checkpoint_cost_hours = 0.05;
  config.interval_hours = 1.0;

  const double mtti = 8.0;
  Rng rng1(9), rng2(9);
  double direct = 0.0, via_dist = 0.0;
  const ExponentialDist dist(1.0 / mtti);
  for (int i = 0; i < 150; ++i) {
    direct += SimulateCheckpointRun(config, mtti, rng1).makespan_hours;
    via_dist += SimulateCheckpointRun(config, dist, rng2).makespan_hours;
  }
  EXPECT_NEAR(via_dist / direct, 1.0, 0.08);
}

TEST(CheckpointSim, RejectsBadConfig) {
  CheckpointRunConfig config;
  config.work_hours = 0.0;
  Rng rng(1);
  EXPECT_THROW(SimulateCheckpointRun(config, 10.0, rng), std::logic_error);
  config.work_hours = 1.0;
  EXPECT_THROW(SimulateCheckpointRun(config, 0.0, rng), std::logic_error);
}

}  // namespace
}  // namespace ld
