#include "faults/taxonomy.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(Taxonomy, CategoryNamesRoundTrip) {
  for (int i = 0; i < kErrorCategoryCount; ++i) {
    const auto cat = static_cast<ErrorCategory>(i);
    const std::string name = ErrorCategoryName(cat);
    EXPECT_NE(name, "invalid");
    auto parsed = ParseErrorCategory(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, cat);
  }
}

TEST(Taxonomy, ParseRejectsUnknownCategory) {
  EXPECT_FALSE(ParseErrorCategory("cosmic_ray").ok());
  EXPECT_FALSE(ParseErrorCategory("").ok());
  EXPECT_FALSE(ParseErrorCategory("MACHINE_CHECK").ok());  // case-sensitive
}

TEST(Taxonomy, SeverityNamesRoundTrip) {
  for (Severity s : {Severity::kCorrected, Severity::kDegraded,
                     Severity::kFatal}) {
    auto parsed = ParseSeverity(SeverityName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(ParseSeverity("catastrophic").ok());
}

TEST(Taxonomy, SeverityOrdering) {
  // The coalescer takes max severity; the enum order must reflect rank.
  EXPECT_LT(Severity::kCorrected, Severity::kDegraded);
  EXPECT_LT(Severity::kDegraded, Severity::kFatal);
}

TEST(Taxonomy, ScopeNames) {
  EXPECT_STREQ(ScopeName(Scope::kNode), "node");
  EXPECT_STREQ(ScopeName(Scope::kBlade), "blade");
  EXPECT_STREQ(ScopeName(Scope::kSystem), "system");
}

TEST(Taxonomy, SpecificNames) {
  EXPECT_STREQ(ErrorCategoryName(ErrorCategory::kMachineCheck),
               "machine_check");
  EXPECT_STREQ(ErrorCategoryName(ErrorCategory::kGpuDbe), "gpu_dbe");
  EXPECT_STREQ(ErrorCategoryName(ErrorCategory::kLustre), "lustre");
  EXPECT_STREQ(ErrorCategoryName(ErrorCategory::kUnknown), "unknown");
}

}  // namespace
}  // namespace ld
