#include "faults/corruptor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/time.hpp"
#include "logdiver/alps_parser.hpp"
#include "logdiver/hwerr_parser.hpp"
#include "logdiver/syslog_parser.hpp"
#include "logdiver/torque_parser.hpp"

namespace ld {
namespace {

/// A small well-formed bundle shaped like simlog output.
struct Bundle {
  std::vector<std::string> torque;
  std::vector<std::string> alps;
  std::vector<std::string> syslog;
  std::vector<std::string> hwerr;
};

Bundle SampleBundle(int lines_per_stream = 50) {
  Bundle bundle;
  for (int i = 0; i < lines_per_stream; ++i) {
    const std::int64_t t = 1365000000 + i * 60;
    const TimePoint when(t);
    bundle.torque.push_back(
        "04/03/2013 12:00:00;E;" + std::to_string(100 + i) +
        ".bw;user=alice group=users queue=normal jobname=app ctime=" +
        std::to_string(t - 600) + " qtime=" + std::to_string(t - 600) +
        " start=" + std::to_string(t - 400) + " end=" + std::to_string(t) +
        " Exit_status=0 Resource_List.nodect=2 "
        "Resource_List.walltime=01:00:00");
    bundle.alps.push_back(when.ToIso() + " apsched[5]: placeApp apid=" +
                          std::to_string(5000 + i) +
                          " jobid=" + std::to_string(100 + i) +
                          " user=alice cmd=app.exe nodect=2 nids=8-9");
    bundle.syslog.push_back(when.ToSyslog() +
                            " c0-0c0s1n1 Machine check events logged, "
                            "corrected DIMM error");
    bundle.hwerr.push_back(std::to_string(t) +
                           "|machine_check|c0-0c0s1n1|corrected|bank=4");
  }
  return bundle;
}

CorruptorConfig AllOpsConfig(double rate) {
  CorruptorConfig config;
  config.rate = rate;
  config.ops = LogCorruptor::AllOps();
  return config;
}

TEST(LogCorruptor, ZeroRateIsIdentity) {
  Bundle bundle = SampleBundle();
  const Bundle original = bundle;
  const LogCorruptor corruptor(AllOpsConfig(0.0));
  const CorruptionLedger ledger = corruptor.CorruptBundle(bundle, Rng(1));
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_EQ(bundle.torque, original.torque);
  EXPECT_EQ(bundle.alps, original.alps);
  EXPECT_EQ(bundle.syslog, original.syslog);
  EXPECT_EQ(bundle.hwerr, original.hwerr);
}

TEST(LogCorruptor, EmptyOpSetIsIdentity) {
  Bundle bundle = SampleBundle();
  const Bundle original = bundle;
  CorruptorConfig config;
  config.rate = 1.0;  // rate without operators does nothing
  const LogCorruptor corruptor(config);
  const CorruptionLedger ledger = corruptor.CorruptBundle(bundle, Rng(1));
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_EQ(bundle.alps, original.alps);
}

TEST(LogCorruptor, DeterministicInSeed) {
  Bundle a = SampleBundle();
  Bundle b = SampleBundle();
  const LogCorruptor corruptor(AllOpsConfig(0.3));
  const CorruptionLedger la = corruptor.CorruptBundle(a, Rng(99));
  const CorruptionLedger lb = corruptor.CorruptBundle(b, Rng(99));
  EXPECT_EQ(a.torque, b.torque);
  EXPECT_EQ(a.alps, b.alps);
  EXPECT_EQ(a.syslog, b.syslog);
  EXPECT_EQ(a.hwerr, b.hwerr);
  EXPECT_EQ(la.total(), lb.total());

  Bundle c = SampleBundle();
  corruptor.CorruptBundle(c, Rng(100));
  EXPECT_NE(a.alps, c.alps);  // a different seed strikes elsewhere
}

TEST(LogCorruptor, LedgerCountsWhatHappened) {
  Bundle bundle = SampleBundle(200);
  const LogCorruptor corruptor(AllOpsConfig(0.2));
  const CorruptionLedger ledger = corruptor.CorruptBundle(bundle, Rng(7));

  EXPECT_GT(ledger.total(), 0u);
  for (std::size_t s = 0; s < kStreamDialectCount; ++s) {
    EXPECT_EQ(ledger.lines_in[s], 200u);
    // gap removes, duplicate adds; out = in - gap + dup.
    const auto gap =
        ledger.counts[s][static_cast<std::size_t>(CorruptionOp::kRotationGap)];
    const auto dup =
        ledger.counts[s][static_cast<std::size_t>(CorruptionOp::kDuplicate)];
    EXPECT_EQ(ledger.lines_out[s], 200u - gap + dup);
    EXPECT_GT(gap, 0u);
    EXPECT_GT(dup, 0u);
  }
  EXPECT_GT(ledger.total(CorruptionOp::kTruncate), 0u);
  EXPECT_GT(ledger.total(CorruptionOp::kGarble), 0u);
  EXPECT_GT(ledger.total(CorruptionOp::kTimeSkew), 0u);
  EXPECT_FALSE(ledger.Render().empty());
}

TEST(LogCorruptor, OperatorsAreIndependentSubstreams) {
  // Enabling truncation must not move where garbling strikes: ops draw
  // from independent forked substreams.
  Bundle garble_only = SampleBundle();
  CorruptorConfig config;
  config.rate = 0.3;
  config.ops = {CorruptionOp::kGarble};
  LogCorruptor(config).CorruptBundle(garble_only, Rng(5));

  Bundle both = SampleBundle();
  config.ops = {CorruptionOp::kTruncate, CorruptionOp::kGarble};
  LogCorruptor(config).CorruptBundle(both, Rng(5));

  // Lines the truncation pass left alone must carry identical garbling.
  int compared = 0;
  for (std::size_t i = 0; i < both.syslog.size(); ++i) {
    if (both.syslog[i].size() == garble_only.syslog[i].size()) {
      EXPECT_EQ(both.syslog[i], garble_only.syslog[i]);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(LogCorruptor, SkewedLinesStillParse) {
  Bundle bundle = SampleBundle(100);
  CorruptorConfig config;
  config.rate = 1.0;  // skew every line
  config.ops = {CorruptionOp::kTimeSkew};
  config.max_skew_seconds = 600;
  const LogCorruptor corruptor(config);
  const CorruptionLedger ledger = corruptor.CorruptBundle(bundle, Rng(11));
  EXPECT_EQ(ledger.total(CorruptionOp::kTimeSkew), 400u);

  // Skew attacks semantics, not syntax: every stream parses clean, but
  // the claimed times moved.
  TorqueParser torque;
  torque.ParseLines(bundle.torque);
  EXPECT_EQ(torque.stats().malformed, 0u);
  EXPECT_EQ(torque.stats().records, 100u);

  AlpsParser alps;
  const auto alps_records = alps.ParseLines(bundle.alps);
  EXPECT_EQ(alps.stats().malformed, 0u);
  ASSERT_EQ(alps_records.size(), 100u);
  bool moved = false;
  for (std::size_t i = 0; i < alps_records.size(); ++i) {
    const TimePoint original(1365000000 + static_cast<std::int64_t>(i) * 60);
    if (alps_records[i].time != original) moved = true;
    EXPECT_LE(alps_records[i].time - original, Duration::Seconds(600));
    EXPECT_LE(original - alps_records[i].time, Duration::Seconds(600));
  }
  EXPECT_TRUE(moved);

  SyslogParser syslog(2013);
  syslog.ParseLines(bundle.syslog);
  EXPECT_EQ(syslog.stats().malformed, 0u);

  HwerrParser hwerr;
  hwerr.ParseLines(bundle.hwerr);
  EXPECT_EQ(hwerr.stats().malformed, 0u);
}

TEST(LogCorruptor, RotationGapDropsOneContiguousSegment) {
  Bundle bundle = SampleBundle(100);
  CorruptorConfig config;
  config.rate = 0.1;
  config.ops = {CorruptionOp::kRotationGap};
  const CorruptionLedger ledger =
      LogCorruptor(config).CorruptBundle(bundle, Rng(3));
  EXPECT_EQ(bundle.alps.size(), 90u);
  EXPECT_EQ(ledger.total(CorruptionOp::kRotationGap), 40u);  // 10 per stream
  // The survivors are an untouched subsequence of the original.
  const Bundle original = SampleBundle(100);
  auto it = original.alps.begin();
  for (const std::string& line : bundle.alps) {
    it = std::find(it, original.alps.end(), line);
    ASSERT_NE(it, original.alps.end());
    ++it;
  }
}

}  // namespace
}  // namespace ld
