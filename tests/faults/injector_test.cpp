#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace ld {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() : machine_(Machine::Testbed(960, 192)) {
    workload_config_.target_app_runs = 3000;
    workload_config_.campaign = Duration::Days(30);
    // Hot fault rates so a small campaign still sees impact.
    fault_config_.xe_fatal_per_node_hour = 1e-4;
    fault_config_.xk_fatal_per_node_hour = 5e-4;
    fault_config_.lustre_incidents_per_day = 2.0;
    fault_config_.blade_faults_per_day = 0.5;
  }

  Workload MakeWorkload(std::uint64_t seed) {
    WorkloadGenerator gen(machine_, workload_config_);
    Rng rng(seed);
    auto wl = gen.Generate(rng);
    EXPECT_TRUE(wl.ok());
    return std::move(*wl);
  }

  InjectionResult Inject(Workload& wl, std::uint64_t seed) {
    FaultInjector injector(machine_, fault_config_);
    Rng rng(seed);
    auto result = injector.Inject(wl, workload_config_.epoch,
                                  workload_config_.campaign, rng);
    EXPECT_TRUE(result.ok());
    return std::move(*result);
  }

  Machine machine_;
  WorkloadConfig workload_config_;
  FaultModelConfig fault_config_;
};

TEST_F(InjectorTest, ProducesEventsAndKills) {
  Workload wl = MakeWorkload(1);
  const InjectionResult result = Inject(wl, 2);
  EXPECT_GT(result.events.size(), 100u);
  EXPECT_GT(result.system_killed_apps, 0u);
}

TEST_F(InjectorTest, DeterministicInSeed) {
  Workload wl1 = MakeWorkload(1);
  Workload wl2 = MakeWorkload(1);
  const InjectionResult a = Inject(wl1, 9);
  const InjectionResult b = Inject(wl2, 9);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.system_killed_apps, b.system_killed_apps);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].category, b.events[i].category);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
  }
}

TEST_F(InjectorTest, EventsAreTimeSortedWithinCampaign) {
  Workload wl = MakeWorkload(2);
  const InjectionResult result = Inject(wl, 3);
  const TimePoint lo = workload_config_.epoch;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    EXPECT_GE(result.events[i].time, lo);
    if (i > 0) EXPECT_GE(result.events[i].time, result.events[i - 1].time);
  }
}

TEST_F(InjectorTest, KilledAppsAreConsistent) {
  Workload wl = MakeWorkload(3);
  const InjectionResult result = Inject(wl, 4);
  std::uint64_t killed = 0;
  for (const Application& app : wl.apps) {
    if (app.cancelled) continue;
    EXPECT_GT(app.end, app.start);
    if (app.truth == AppOutcome::kSystemFailure) {
      ++killed;
      // A system-killed app shows an abnormal exit.
      EXPECT_TRUE(app.exit_code != 0 || app.exit_signal != 0);
      const auto it = result.truth.find(app.apid);
      ASSERT_NE(it, result.truth.end());
      EXPECT_EQ(it->second.outcome, AppOutcome::kSystemFailure);
      EXPECT_NE(it->second.cause, ErrorCategory::kUnknown);
      EXPECT_NE(it->second.event_id, 0u);
      if (app.alps_node_failure) {
        EXPECT_EQ(app.exit_signal, 9);
      }
    }
  }
  EXPECT_EQ(killed, result.system_killed_apps);
}

TEST_F(InjectorTest, CancelledAppsFollowNodeDownKills) {
  Workload wl = MakeWorkload(4);
  const InjectionResult result = Inject(wl, 5);
  std::uint64_t cancelled = 0;
  for (const Job& job : wl.jobs) {
    bool job_dead = false;
    for (std::size_t idx : job.app_indices) {
      const Application& app = wl.apps[idx];
      if (app.cancelled) {
        ++cancelled;
        EXPECT_TRUE(job_dead)
            << "cancelled app without a preceding node-down kill";
        // Cancelled apps must not appear in the truth map.
        EXPECT_EQ(result.truth.count(app.apid), 0u);
      }
      if (app.alps_node_failure) job_dead = true;
    }
    if (job_dead) EXPECT_EQ(job.exit_status, -11);
  }
  EXPECT_EQ(cancelled, result.cancelled_apps);
}

TEST_F(InjectorTest, TruthCoversEveryLiveApp) {
  Workload wl = MakeWorkload(5);
  const InjectionResult result = Inject(wl, 6);
  std::uint64_t live = 0;
  for (const Application& app : wl.apps) {
    if (app.cancelled) continue;
    ++live;
    const auto it = result.truth.find(app.apid);
    ASSERT_NE(it, result.truth.end());
    EXPECT_EQ(it->second.outcome, app.truth);
  }
  EXPECT_EQ(result.truth.size(), live);
}

TEST_F(InjectorTest, UndetectedEventsExist) {
  // The XK detection gap: some fatal GPU events must be undetected.
  // Rates are cranked so the expected undetected count is >> 1 and the
  // assertion is robust to seed choice.
  fault_config_.gpu_error_detection = 0.3;
  fault_config_.xk_fatal_per_node_hour = 5e-3;
  fault_config_.xk_app_fatal_per_hour = 0.05;
  Workload wl = MakeWorkload(6);
  const InjectionResult result = Inject(wl, 7);
  std::uint64_t undetected_gpu = 0;
  for (const ErrorEvent& ev : result.events) {
    if (!ev.detected && (ev.category == ErrorCategory::kGpuDbe ||
                         ev.category == ErrorCategory::kGpuXid)) {
      ++undetected_gpu;
    }
  }
  EXPECT_GT(undetected_gpu, 0u);
}

TEST_F(InjectorTest, LustreEventsAreSystemScopeWithOutage) {
  Workload wl = MakeWorkload(7);
  const InjectionResult result = Inject(wl, 8);
  std::uint64_t lustre = 0;
  for (const ErrorEvent& ev : result.events) {
    if (ev.category != ErrorCategory::kLustre) continue;
    ++lustre;
    EXPECT_EQ(ev.scope, Scope::kSystem);
    EXPECT_EQ(ev.node, kInvalidNode);
    EXPECT_GT(ev.outage.seconds(), 0);
  }
  EXPECT_GT(lustre, 20u);  // ~2/day for 30 days
}

TEST_F(InjectorTest, ZeroRatesInjectNothing) {
  fault_config_ = FaultModelConfig{};
  fault_config_.xe_fatal_per_node_hour = 0.0;
  fault_config_.xk_fatal_per_node_hour = 0.0;
  fault_config_.xe_app_fatal_per_hour = 0.0;
  fault_config_.xk_app_fatal_per_hour = 0.0;
  fault_config_.lustre_incidents_per_day = 0.0;
  fault_config_.blade_faults_per_day = 0.0;
  fault_config_.link_failures_per_day = 0.0;
  fault_config_.corrected_mce_per_day = 0.0;
  fault_config_.corrected_gpu_per_day = 0.0;
  fault_config_.link_degrade_per_day = 0.0;
  Workload wl = MakeWorkload(8);
  const InjectionResult result = Inject(wl, 9);
  EXPECT_TRUE(result.events.empty());
  EXPECT_EQ(result.system_killed_apps, 0u);
  for (const Application& app : wl.apps) {
    EXPECT_NE(app.truth, AppOutcome::kSystemFailure);
  }
}

TEST_F(InjectorTest, HigherRatesKillMoreApps) {
  Workload wl1 = MakeWorkload(9);
  const InjectionResult low = Inject(wl1, 10);
  fault_config_.xe_fatal_per_node_hour *= 10.0;
  fault_config_.xk_fatal_per_node_hour *= 10.0;
  fault_config_.lustre_incidents_per_day *= 3.0;
  Workload wl2 = MakeWorkload(9);
  const InjectionResult high = Inject(wl2, 10);
  EXPECT_GT(high.system_killed_apps, low.system_killed_apps);
}

TEST_F(InjectorTest, ReliabilityGrowthShiftsEventsEarly) {
  fault_config_.hazard_multiplier_start = 2.0;
  fault_config_.hazard_multiplier_end = 0.2;
  // Silence the stationary noise channels so the split is clean.
  fault_config_.corrected_mce_per_day = 0.0;
  fault_config_.corrected_gpu_per_day = 0.0;
  fault_config_.link_degrade_per_day = 0.0;
  Workload wl = MakeWorkload(11);
  const InjectionResult result = Inject(wl, 12);
  const TimePoint midpoint =
      workload_config_.epoch + Duration(workload_config_.campaign.seconds() / 2);
  std::uint64_t early = 0, late = 0;
  for (const ErrorEvent& ev : result.events) {
    (ev.time < midpoint ? early : late) += 1;
  }
  ASSERT_GT(early + late, 100u);
  // With a 2.0 -> 0.2 ramp, ~75% of the hazard mass is in the first half.
  EXPECT_GT(early, late * 2);
}

TEST_F(InjectorTest, MeanPreservingRampKeepsTotalsComparable) {
  // A ramp with mean multiplier 1.0 redistributes hazard in time but
  // should leave campaign totals within sampling noise of stationary.
  Workload wl1 = MakeWorkload(12);
  const InjectionResult base = Inject(wl1, 13);
  fault_config_.hazard_multiplier_start = 1.5;
  fault_config_.hazard_multiplier_end = 0.5;
  Workload wl2 = MakeWorkload(12);
  const InjectionResult ramped = Inject(wl2, 13);
  const double base_n = static_cast<double>(base.events.size());
  const double ramped_n = static_cast<double>(ramped.events.size());
  ASSERT_GT(base_n, 200.0);
  EXPECT_NEAR(ramped_n / base_n, 1.0, 0.25);
}

TEST_F(InjectorTest, KillTruncatesWithinOriginalWindow) {
  Workload pristine = MakeWorkload(10);
  Workload injected = MakeWorkload(10);
  (void)Inject(injected, 11);
  ASSERT_EQ(pristine.apps.size(), injected.apps.size());
  for (std::size_t i = 0; i < pristine.apps.size(); ++i) {
    EXPECT_LE(injected.apps[i].end, pristine.apps[i].end);
    EXPECT_EQ(injected.apps[i].start, pristine.apps[i].start);
  }
}

}  // namespace
}  // namespace ld
