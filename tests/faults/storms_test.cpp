#include "faults/storms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "faults/injector.hpp"
#include "faults/ledger.hpp"
#include "workload/generator.hpp"

namespace ld {
namespace {

std::vector<ErrorEvent> GpuPool(std::size_t gpu_fatals) {
  std::vector<ErrorEvent> events;
  std::uint64_t id = 1;
  for (std::size_t i = 0; i < gpu_fatals; ++i) {
    ErrorEvent ev;
    ev.event_id = id++;
    ev.time = TimePoint{} + Duration::Seconds(static_cast<std::int64_t>(i));
    ev.category = i % 2 == 0 ? ErrorCategory::kGpuDbe : ErrorCategory::kGpuXid;
    ev.severity = Severity::kFatal;
    ev.scope = Scope::kNode;
    ev.node = static_cast<NodeIndex>(i);
    ev.detected = true;
    events.push_back(ev);
  }
  // Out-of-pool company: a CPU fatal and a corrected GPU event — the
  // gap must never touch either.
  ErrorEvent cpu;
  cpu.event_id = id++;
  cpu.category = ErrorCategory::kMachineCheck;
  cpu.severity = Severity::kFatal;
  cpu.detected = true;
  events.push_back(cpu);
  ErrorEvent corrected;
  corrected.event_id = id++;
  corrected.category = ErrorCategory::kGpuDbe;
  corrected.severity = Severity::kCorrected;
  corrected.detected = true;
  events.push_back(corrected);
  return events;
}

std::uint64_t CountUndetectedGpuFatals(const std::vector<ErrorEvent>& events) {
  std::uint64_t n = 0;
  for (const ErrorEvent& ev : events) {
    const bool gpu = ev.category == ErrorCategory::kGpuDbe ||
                     ev.category == ErrorCategory::kGpuXid;
    if (gpu && ev.severity == Severity::kFatal && !ev.detected) ++n;
  }
  return n;
}

TEST(DetectionGap, FlipsExactlyRoundedFraction) {
  for (const double fraction : {0.0, 0.35, 0.5, 1.0}) {
    auto events = GpuPool(20);
    std::vector<KillCandidate> kills;
    const std::uint64_t flipped =
        ApplyGpuDetectionGap(fraction, &events, &kills, Rng(99).Fork("gap"));
    const auto expected =
        static_cast<std::uint64_t>(std::llround(fraction * 20.0));
    EXPECT_EQ(flipped, expected) << "fraction " << fraction;
    EXPECT_EQ(CountUndetectedGpuFatals(events), expected);
    // Out-of-pool events untouched.
    EXPECT_TRUE(events[events.size() - 2].detected);
    EXPECT_TRUE(events.back().detected);
  }
}

TEST(DetectionGap, UpdatesMatchingKillCandidates) {
  auto events = GpuPool(10);
  std::vector<KillCandidate> kills;
  for (const ErrorEvent& ev : events) {
    if (ev.severity != Severity::kFatal) continue;
    KillCandidate kill{};
    kill.time = ev.time;
    kill.app_idx = 0;
    kill.event_id = ev.event_id;
    kill.cause = ev.category;
    kill.detected = true;
    kills.push_back(kill);
  }
  const std::uint64_t flipped =
      ApplyGpuDetectionGap(0.5, &events, &kills, Rng(7).Fork("gap"));
  EXPECT_EQ(flipped, 5u);
  // Every kill mirrors its event's final detection flag.
  for (const KillCandidate& kill : kills) {
    const ErrorEvent& ev = events[kill.event_id - 1];
    EXPECT_EQ(kill.detected, ev.detected) << "event " << ev.event_id;
  }
}

TEST(DetectionGap, DeterministicInSeed) {
  auto a = GpuPool(16);
  auto b = GpuPool(16);
  std::vector<KillCandidate> ka, kb;
  ApplyGpuDetectionGap(0.25, &a, &ka, Rng(5).Fork("gap"));
  ApplyGpuDetectionGap(0.25, &b, &kb, Rng(5).Fork("gap"));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].detected, b[i].detected) << "event " << i;
  }
}

class StormsTest : public ::testing::Test {
 protected:
  StormsTest() : machine_(Machine::Testbed(960, 192)) {
    workload_config_.target_app_runs = 2500;
    workload_config_.campaign = Duration::Days(20);
    workload_config_.xk_job_fraction = 0.30;
  }

  Workload MakeWorkload(std::uint64_t seed) {
    WorkloadGenerator gen(machine_, workload_config_);
    Rng rng(seed);
    auto wl = gen.Generate(rng);
    EXPECT_TRUE(wl.ok());
    return std::move(*wl);
  }

  FaultLedger RunLedger(const FaultModelConfig& config, std::uint64_t seed,
                        InjectionResult* out = nullptr) {
    Workload wl = MakeWorkload(seed);
    FaultInjector injector(machine_, config);
    Rng rng(seed + 1);
    auto result = injector.Inject(wl, workload_config_.epoch,
                                  workload_config_.campaign, rng);
    EXPECT_TRUE(result.ok());
    FaultLedger ledger = BuildFaultLedger(wl, *result);
    if (out != nullptr) *out = std::move(*result);
    return ledger;
  }

  static const CategoryTally& Tally(const FaultLedger& ledger,
                                    ErrorCategory category) {
    return ledger.by_category[static_cast<std::size_t>(category)];
  }

  Machine machine_;
  WorkloadConfig workload_config_;
};

TEST_F(StormsTest, InjectorGapIdentityIsExact) {
  FaultModelConfig config;
  // Hot GPU-side hazards so the pool is large enough to matter.
  config.xk_fatal_per_node_hour = 5e-4;
  config.xk_app_fatal_per_hour = 0.10;
  config.gpu_underreport_fraction = 0.35;
  const FaultLedger ledger = RunLedger(config, 21);
  ASSERT_GT(ledger.gpu_fatal_injected, 30u);
  EXPECT_EQ(ledger.gpu_fatal_undetected,
            static_cast<std::uint64_t>(std::llround(
                0.35 * static_cast<double>(ledger.gpu_fatal_injected))));
}

TEST_F(StormsTest, CascadeStormsAddGeminiEpisodes) {
  FaultModelConfig baseline;
  const FaultLedger before = RunLedger(baseline, 31);

  FaultModelConfig config;
  config.cascade.storms_per_campaign = 8.0;
  InjectionResult result;
  const FaultLedger after = RunLedger(config, 31, &result);
  EXPECT_GT(Tally(after, ErrorCategory::kGeminiLink).injected,
            Tally(before, ErrorCategory::kGeminiLink).injected);
  EXPECT_GT(Tally(after, ErrorCategory::kGeminiLink).kills, 0u);
  // The episode channel must respect the injector's global contract:
  // time-ordered events with unique ids.
  for (std::size_t i = 1; i < result.events.size(); ++i) {
    EXPECT_GE(result.events[i].time, result.events[i - 1].time);
  }
}

TEST_F(StormsTest, LustreStormsClusterIncidents) {
  FaultModelConfig baseline;
  const FaultLedger before = RunLedger(baseline, 41);
  FaultModelConfig config;
  config.lustre_storm.storms_per_campaign = 5.0;
  const FaultLedger after = RunLedger(config, 41);
  EXPECT_GT(Tally(after, ErrorCategory::kLustre).injected,
            Tally(before, ErrorCategory::kLustre).injected);
  EXPECT_GT(Tally(after, ErrorCategory::kLustre).kills,
            Tally(before, ErrorCategory::kLustre).kills);
}

TEST_F(StormsTest, MaintenanceWindowsDrainAndReboot) {
  FaultModelConfig config;
  config.maintenance.windows_per_campaign = 2.0;
  config.maintenance.node_fraction = 0.30;
  InjectionResult result;
  const FaultLedger ledger = RunLedger(config, 51, &result);
  // Drains kill via the (always detected) heartbeat category.
  const CategoryTally& heartbeat = Tally(ledger, ErrorCategory::kNodeHeartbeat);
  EXPECT_GT(heartbeat.kills, 0u);
  EXPECT_EQ(heartbeat.undetected, 0u);
  // The reboot noise is benign machine-check chatter, never a kill.
  bool saw_corrected_mce = false;
  for (const ErrorEvent& ev : result.events) {
    if (ev.category == ErrorCategory::kMachineCheck &&
        ev.severity == Severity::kCorrected) {
      saw_corrected_mce = true;
      break;
    }
  }
  EXPECT_TRUE(saw_corrected_mce);
}

TEST_F(StormsTest, EpisodesAreDeterministic) {
  FaultModelConfig config;
  config.cascade.storms_per_campaign = 4.0;
  config.lustre_storm.storms_per_campaign = 3.0;
  config.maintenance.windows_per_campaign = 1.0;
  config.gpu_underreport_fraction = 0.5;
  const FaultLedger a = RunLedger(config, 61);
  const FaultLedger b = RunLedger(config, 61);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.events_total, b.events_total);
  EXPECT_EQ(a.kills_total, b.kills_total);
}

}  // namespace
}  // namespace ld
