// The SIMD kernels (src/common/simd.hpp) promise bit-identical results
// across backends.  These tests hold the active backend (AVX2, SSE2,
// NEON or scalar, depending on the build and host) to the scalar
// reference on edge cases and on randomized buffers that straddle the
// 16- and 32-byte vector-width boundaries, and additionally sweep every
// *compiled* backend via GetBackend so the forced-dispatch tiers are
// covered even when the runner would not pick them by default.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd.hpp"

namespace ld::simd {
namespace {

/// Every backend this build compiled in and this host can run — always
/// includes scalar, so each test exercises at least the reference.
std::vector<const Kernels*> SupportedBackends() {
  std::vector<const Kernels*> out;
  for (const char* name : {"scalar", "sse2", "avx2", "neon"}) {
    if (const Kernels* k = GetBackend(name)) out.push_back(k);
  }
  return out;
}

TEST(Simd, BackendNameIsKnown) {
  const std::string name = BackendName();
  EXPECT_TRUE(name == "sse2" || name == "avx2" || name == "neon" ||
              name == "scalar")
      << name;
}

TEST(Simd, GetBackendAlwaysKnowsScalarAndRejectsUnknown) {
  ASSERT_NE(GetBackend("scalar"), nullptr);
  EXPECT_EQ(std::string_view(GetBackend("scalar")->name), "scalar");
  EXPECT_EQ(GetBackend("avx512"), nullptr);
  EXPECT_EQ(GetBackend(""), nullptr);
}

TEST(Simd, FindByteMatchesStringViewFind) {
  const std::string_view cases[] = {
      "",
      "\n",
      "a",
      "abc\ndef\n",
      "no newline here at all ........................",
      std::string_view("\0\0\n\0", 4),
      "ends exactly on a sixteen-byte b\n",
  };
  for (const std::string_view data : cases) {
    for (const char needle : {'\n', 'a', '\0', ':'}) {
      for (std::size_t pos = 0; pos <= data.size() + 1; ++pos) {
        EXPECT_EQ(FindByte(data, needle, pos), data.find(needle, pos))
            << "needle=" << static_cast<int>(needle) << " pos=" << pos;
        EXPECT_EQ(scalar::FindByte(data, needle, pos), data.find(needle, pos));
      }
    }
  }
}

TEST(Simd, WhitespaceKernelsMatchScalarOnAllSingleBytes) {
  // Every byte value, including >= 0x80 where a naive signed-char
  // classifier goes wrong, as a one-byte buffer.
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const std::string_view data(&c, 1);
    EXPECT_EQ(FindWhitespace(data), scalar::FindWhitespace(data)) << b;
    EXPECT_EQ(SkipWhitespace(data), scalar::SkipWhitespace(data)) << b;
    EXPECT_EQ(DigitRunLength(data), scalar::DigitRunLength(data)) << b;
  }
}

TEST(Simd, WhitespaceSetIsExactlyIsspace) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const std::string_view data(&c, 1);
    const bool is_space = b == ' ' || b == '\t' || b == '\n' || b == '\v' ||
                          b == '\f' || b == '\r';
    EXPECT_EQ(FindWhitespace(data) == 0, is_space) << b;
    EXPECT_EQ(SkipWhitespace(data) == 1, is_space) << b;
  }
}

TEST(Simd, RandomBuffersAgreeAcrossBackendsAtEveryOffset) {
  // Buffer lengths chosen to land on, just under and just over the 16-,
  // 32- and 64-byte boundaries the vector loops care about; every
  // compiled-and-runnable backend must agree with scalar at every
  // starting offset, which also walks the tails through every lane
  // misalignment.
  std::mt19937_64 rng(20260808);
  // Skew toward bytes the kernels classify, so matches are dense.
  const char alphabet[] = " \t\n\r\v\f0123456789abc:\x80\xff";
  const std::vector<const Kernels*> backends = SupportedBackends();
  ASSERT_FALSE(backends.empty());
  for (const std::size_t len : {0u, 1u, 7u, 15u, 16u, 17u, 31u, 32u, 33u,
                                63u, 64u, 65u, 200u}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::string buffer(len, '\0');
      for (char& c : buffer) {
        c = alphabet[rng() % (sizeof(alphabet) - 1)];
      }
      const std::string_view data = buffer;
      for (std::size_t pos = 0; pos <= len; ++pos) {
        const std::size_t want_find = scalar::FindByte(data, '\n', pos);
        const std::size_t want_ws = scalar::FindWhitespace(data, pos);
        const std::size_t want_skip = scalar::SkipWhitespace(data, pos);
        const std::size_t want_digits = scalar::DigitRunLength(data, pos);
        for (const Kernels* k : backends) {
          ASSERT_EQ(k->find_byte(data, '\n', pos), want_find)
              << k->name << " len=" << len << " pos=" << pos;
          ASSERT_EQ(k->find_whitespace(data, pos), want_ws)
              << k->name << " len=" << len << " pos=" << pos;
          ASSERT_EQ(k->skip_whitespace(data, pos), want_skip)
              << k->name << " len=" << len << " pos=" << pos;
          ASSERT_EQ(k->digit_run_length(data, pos), want_digits)
              << k->name << " len=" << len << " pos=" << pos;
        }
      }
    }
  }
}

TEST(Simd, FindAnyOfMatchesStringViewAcrossBackends) {
  const std::string_view cases[] = {
      "",
      "=",
      "key=value trailing",
      "   user=alice   queue=batch jobname=x",
      "no delimiter bytes whatsoever_in_this_one_at_all!!",
      std::string_view("nul\0byte=ok", 11),
      "ends exactly on a thirty-two-byte=B",
  };
  const std::string_view delim_sets[] = {
      "",                 // empty set: never matches
      "=",                // single delimiter
      "= \t\n\v\f\r",     // the key/value splitter's working set
      "=: \t\n\v\f\r-/",  // 9 delimiters: past the vector limit, takes
                          // the scalar fallback path in every backend
  };
  const std::vector<const Kernels*> backends = SupportedBackends();
  for (const std::string_view data : cases) {
    for (const std::string_view delims : delim_sets) {
      for (std::size_t pos = 0; pos <= data.size() + 1; ++pos) {
        const std::size_t want = data.find_first_of(delims, pos);
        ASSERT_EQ(scalar::FindAnyOf(data, delims, pos), want)
            << "pos=" << pos;
        ASSERT_EQ(FindAnyOf(data, delims, pos), want) << "pos=" << pos;
        for (const Kernels* k : backends) {
          ASSERT_EQ(k->find_any_of(data, delims, pos), want)
              << k->name << " pos=" << pos;
        }
      }
    }
  }
}

TEST(Simd, FindAnyOfCoversAllByteValues) {
  // One buffer holding every byte value 0..255: high-bit bytes must
  // neither match a low delimiter nor be skipped, on any backend.
  std::string all(256, '\0');
  for (int b = 0; b < 256; ++b) all[static_cast<std::size_t>(b)] =
      static_cast<char>(b);
  const std::string_view data = all;
  const std::vector<const Kernels*> backends = SupportedBackends();
  for (const std::string_view delims :
       {std::string_view("="), std::string_view("= \t\n\v\f\r"),
        std::string_view("\x80\xff"), std::string_view("\x00\x01", 2)}) {
    for (std::size_t pos = 0; pos <= data.size(); pos += 13) {
      const std::size_t want = data.find_first_of(delims, pos);
      for (const Kernels* k : backends) {
        ASSERT_EQ(k->find_any_of(data, delims, pos), want)
            << k->name << " pos=" << pos;
      }
    }
  }
}

TEST(Simd, RandomBuffersAgreeOnFindAnyOf) {
  std::mt19937_64 rng(20260809);
  const char alphabet[] = " \t=0123456789abcdef:\x80\xff";
  const std::vector<const Kernels*> backends = SupportedBackends();
  for (const std::size_t len : {15u, 16u, 17u, 31u, 32u, 33u, 200u}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::string buffer(len, '\0');
      for (char& c : buffer) {
        c = alphabet[rng() % (sizeof(alphabet) - 1)];
      }
      const std::string_view data = buffer;
      for (std::size_t pos = 0; pos <= len; ++pos) {
        const std::size_t want = data.find_first_of("= \t\n\v\f\r", pos);
        for (const Kernels* k : backends) {
          ASSERT_EQ(k->find_any_of(data, "= \t\n\v\f\r", pos), want)
              << k->name << " len=" << len << " pos=" << pos;
        }
      }
    }
  }
}

// Every backend's classifier must produce the exact bitmaps the scalar
// reference does — including zeroed bits past `size` in the last word —
// at sizes straddling the 16/32/64-byte block boundaries the vector
// loops and their padded-copy tails care about.
TEST(Simd, ClassifyKeyValueAgreesAcrossBackends) {
  std::mt19937_64 rng(20260810);
  const char alphabet[] = " \t\n=0123456789abcdef:\x80\xff";
  const std::vector<const Kernels*> backends = SupportedBackends();
  for (const std::size_t len :
       {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u, 127u, 128u,
        129u, 400u}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::string buffer(len, '\0');
      for (char& c : buffer) {
        c = alphabet[rng() % (sizeof(alphabet) - 1)];
      }
      const std::size_t nwords = (len + 63) / 64;
      // Whitespace delim: a byte may legitimately set both bitmaps.
      for (const char delim : {'=', ' '}) {
        std::vector<std::uint64_t> want_eq(nwords + 1, ~std::uint64_t{0});
        std::vector<std::uint64_t> want_ws(nwords + 1, ~std::uint64_t{0});
        scalar::ClassifyKeyValue(buffer.data(), len, delim, want_eq.data(),
                                 want_ws.data());
        for (std::size_t i = 0; i < len; ++i) {
          const bool eq_bit = (want_eq[i / 64] >> (i % 64)) & 1;
          const bool ws_bit = (want_ws[i / 64] >> (i % 64)) & 1;
          ASSERT_EQ(eq_bit, buffer[i] == delim) << "i=" << i;
          const unsigned char c = static_cast<unsigned char>(buffer[i]);
          ASSERT_EQ(ws_bit, c == ' ' || (c >= '\t' && c <= '\r')) << "i=" << i;
        }
        // Bits past `size` in the last word must be zero.
        if (len % 64 != 0 && nwords > 0) {
          EXPECT_EQ(want_eq[nwords - 1] >> (len % 64), 0u);
          EXPECT_EQ(want_ws[nwords - 1] >> (len % 64), 0u);
        }
        for (const Kernels* k : backends) {
          std::vector<std::uint64_t> got_eq(nwords + 1, ~std::uint64_t{0});
          std::vector<std::uint64_t> got_ws(nwords + 1, ~std::uint64_t{0});
          k->classify_kv(buffer.data(), len, delim, got_eq.data(),
                         got_ws.data());
          for (std::size_t w = 0; w < nwords; ++w) {
            ASSERT_EQ(got_eq[w], want_eq[w])
                << k->name << " len=" << len << " word=" << w;
            ASSERT_EQ(got_ws[w], want_ws[w])
                << k->name << " len=" << len << " word=" << w;
          }
          // The sentinel word past the arrays must be untouched.
          EXPECT_EQ(got_eq[nwords], ~std::uint64_t{0}) << k->name;
          EXPECT_EQ(got_ws[nwords], ~std::uint64_t{0}) << k->name;
        }
      }
    }
  }
}

TEST(Simd, ClockRecognizerAgreesWithScalar) {
  const char* good[] = {"01:23:45", "00:00:00", "23:59:59", "99:99:99"};
  for (const char* p : good) {
    EXPECT_TRUE(IsClockHHMMSS(p)) << p;
    EXPECT_TRUE(scalar::IsClockHHMMSS(p)) << p;
  }
  // Every single-character corruption of a valid clock must flip both
  // implementations the same way.
  const std::string base = "12:34:56";
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (const char c : {'a', ' ', ':', '0', '\0', '\x80'}) {
      std::string corrupted = base;
      corrupted[i] = c;
      const bool want = scalar::IsClockHHMMSS(corrupted.data());
      EXPECT_EQ(IsClockHHMMSS(corrupted.data()), want)
          << "i=" << i << " c=" << static_cast<int>(c);
      for (const Kernels* k : SupportedBackends()) {
        EXPECT_EQ(k->is_clock_hhmmss(corrupted.data()), want)
            << k->name << " i=" << i << " c=" << static_cast<int>(c);
      }
    }
  }
}

}  // namespace
}  // namespace ld::simd
