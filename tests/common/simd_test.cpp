// The SIMD kernels (src/common/simd.hpp) promise bit-identical results
// across backends.  These tests hold the active backend (SSE2, NEON or
// scalar, depending on the build) to the scalar reference on edge cases
// and on randomized buffers that straddle vector-width boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "common/simd.hpp"

namespace ld::simd {
namespace {

TEST(Simd, BackendNameIsKnown) {
  const std::string name = BackendName();
  EXPECT_TRUE(name == "sse2" || name == "neon" || name == "scalar") << name;
}

TEST(Simd, FindByteMatchesStringViewFind) {
  const std::string_view cases[] = {
      "",
      "\n",
      "a",
      "abc\ndef\n",
      "no newline here at all ........................",
      std::string_view("\0\0\n\0", 4),
      "ends exactly on a sixteen-byte b\n",
  };
  for (const std::string_view data : cases) {
    for (const char needle : {'\n', 'a', '\0', ':'}) {
      for (std::size_t pos = 0; pos <= data.size() + 1; ++pos) {
        EXPECT_EQ(FindByte(data, needle, pos), data.find(needle, pos))
            << "needle=" << static_cast<int>(needle) << " pos=" << pos;
        EXPECT_EQ(scalar::FindByte(data, needle, pos), data.find(needle, pos));
      }
    }
  }
}

TEST(Simd, WhitespaceKernelsMatchScalarOnAllSingleBytes) {
  // Every byte value, including >= 0x80 where a naive signed-char
  // classifier goes wrong, as a one-byte buffer.
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const std::string_view data(&c, 1);
    EXPECT_EQ(FindWhitespace(data), scalar::FindWhitespace(data)) << b;
    EXPECT_EQ(SkipWhitespace(data), scalar::SkipWhitespace(data)) << b;
    EXPECT_EQ(DigitRunLength(data), scalar::DigitRunLength(data)) << b;
  }
}

TEST(Simd, WhitespaceSetIsExactlyIsspace) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const std::string_view data(&c, 1);
    const bool is_space = b == ' ' || b == '\t' || b == '\n' || b == '\v' ||
                          b == '\f' || b == '\r';
    EXPECT_EQ(FindWhitespace(data) == 0, is_space) << b;
    EXPECT_EQ(SkipWhitespace(data) == 1, is_space) << b;
  }
}

TEST(Simd, RandomBuffersAgreeWithScalarAtEveryOffset) {
  // Buffer lengths chosen to land on, just under and just over the 16-
  // and 64-byte boundaries the vector loops care about.
  std::mt19937_64 rng(20260808);
  // Skew toward bytes the kernels classify, so matches are dense.
  const char alphabet[] = " \t\n\r\v\f0123456789abc:\x80\xff";
  for (const std::size_t len : {0u, 1u, 7u, 15u, 16u, 17u, 31u, 63u, 64u,
                                65u, 200u}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::string buffer(len, '\0');
      for (char& c : buffer) {
        c = alphabet[rng() % (sizeof(alphabet) - 1)];
      }
      const std::string_view data = buffer;
      for (std::size_t pos = 0; pos <= len; ++pos) {
        ASSERT_EQ(FindByte(data, '\n', pos), scalar::FindByte(data, '\n', pos))
            << "len=" << len << " pos=" << pos;
        ASSERT_EQ(FindWhitespace(data, pos), scalar::FindWhitespace(data, pos))
            << "len=" << len << " pos=" << pos;
        ASSERT_EQ(SkipWhitespace(data, pos), scalar::SkipWhitespace(data, pos))
            << "len=" << len << " pos=" << pos;
        ASSERT_EQ(DigitRunLength(data, pos), scalar::DigitRunLength(data, pos))
            << "len=" << len << " pos=" << pos;
      }
    }
  }
}

TEST(Simd, ClockRecognizerAgreesWithScalar) {
  const char* good[] = {"01:23:45", "00:00:00", "23:59:59", "99:99:99"};
  for (const char* p : good) {
    EXPECT_TRUE(IsClockHHMMSS(p)) << p;
    EXPECT_TRUE(scalar::IsClockHHMMSS(p)) << p;
  }
  // Every single-character corruption of a valid clock must flip both
  // implementations the same way.
  const std::string base = "12:34:56";
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (const char c : {'a', ' ', ':', '0', '\0', '\x80'}) {
      std::string corrupted = base;
      corrupted[i] = c;
      EXPECT_EQ(IsClockHHMMSS(corrupted.data()),
                scalar::IsClockHHMMSS(corrupted.data()))
          << "i=" << i << " c=" << static_cast<int>(c);
    }
  }
}

}  // namespace
}  // namespace ld::simd
