#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ld {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    TaskGroup group(&pool);
    for (int i = 0; i < 100; ++i) {
      group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, GroupWaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(ThreadPool, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int calls = 0;
  group.Run([&calls] { ++calls; });
  group.Run([&calls] { ++calls; });
  group.Wait();
  EXPECT_EQ(calls, 2);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MapKeepsIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      ParallelMap(&pool, 257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, MapWithoutPoolMatchesWithPool) {
  ThreadPool pool(3);
  const auto serial =
      ParallelMap(nullptr, 100, [](std::size_t i) { return 3 * i + 1; });
  const auto parallel =
      ParallelMap(&pool, 100, [](std::size_t i) { return 3 * i + 1; });
  EXPECT_EQ(serial, parallel);
}

TEST(Parallel, ChunkRangesTileExactly) {
  const auto ranges = ChunkRanges(10, 3);
  ASSERT_EQ(ranges.size(), 4u);
  std::size_t expected_begin = 0;
  std::size_t total = 0;
  for (const IndexRange& r : ranges) {
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LE(r.size(), 3u);
    expected_begin = r.end;
    total += r.size();
  }
  EXPECT_EQ(total, 10u);
  EXPECT_TRUE(ChunkRanges(0, 3).empty());
  // chunk = 0 is treated as 1, not an infinite loop.
  EXPECT_EQ(ChunkRanges(2, 0).size(), 2u);
}

TEST(Parallel, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(4), 4);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-2), 1);
}

TEST(Parallel, DefaultThreadCountReadsEnvOverride) {
  ::setenv("LOGDIVER_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3);
  ::setenv("LOGDIVER_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultThreadCount(), 1);  // falls back to hardware
  ::unsetenv("LOGDIVER_THREADS");
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace ld
