// The interning pool's contract: global dedup (equal strings -> equal
// symbols), stable views for the process lifetime, thread-safe interning
// with lock-free resolution — and the one thing callers must NOT rely
// on: symbol id values, which depend on interning order.
#include "common/intern.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace ld {
namespace {

TEST(Intern, DefaultSymbolIsEmpty) {
  const Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.id(), 0u);
  EXPECT_EQ(s.view(), "");
  EXPECT_EQ(s, Intern(""));
}

TEST(Intern, DedupsToOneSymbol) {
  const Symbol a = Intern("c12-3c2s7n1");
  const Symbol b = Intern("c12-3c2s7n1");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.view(), "c12-3c2s7n1");
  EXPECT_EQ(a.str(), std::string("c12-3c2s7n1"));
}

TEST(Intern, DistinctStringsGetDistinctSymbols) {
  const Symbol a = Intern("userA");
  const Symbol b = Intern("userB");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(Intern, ComparesAgainstStringView) {
  const Symbol s = Intern("normal");
  EXPECT_EQ(s, "normal");
  EXPECT_NE(s, "debug");
  EXPECT_TRUE(s == std::string_view("normal"));
}

TEST(Intern, StreamsResolvedString) {
  std::ostringstream os;
  os << Intern("queue-hi");
  EXPECT_EQ(os.str(), "queue-hi");
}

TEST(Intern, ViewsStayStableUnderGrowth) {
  const Symbol s = Intern("stable-anchor");
  const std::string_view before = s.view();
  const char* data = before.data();
  // Force many shard/chunk/arena growth steps.
  for (int i = 0; i < 20000; ++i) {
    Intern("growth-filler-" + std::to_string(i));
  }
  const std::string_view after = s.view();
  EXPECT_EQ(after.data(), data);  // same arena bytes, not a copy
  EXPECT_EQ(after, "stable-anchor");
}

TEST(Intern, ConcurrentInterningDedups) {
  // 8 threads intern the same 512 strings plus a private set each; the
  // shared set must dedup to exactly one symbol per string and every
  // symbol must resolve to its string.  Run under TSan in CI.
  constexpr int kThreads = 8;
  constexpr int kShared = 512;
  std::vector<std::vector<Symbol>> shared(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &shared] {
      shared[t].reserve(kShared);
      for (int i = 0; i < kShared; ++i) {
        shared[t].push_back(Intern("shared-" + std::to_string(i)));
        Intern("private-" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kShared; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(shared[0][i], shared[t][i]) << "string " << i;
    }
    EXPECT_EQ(shared[0][i].view(), "shared-" + std::to_string(i));
  }
}

TEST(Intern, CountersAreMonotone) {
  const std::size_t count_before = InternedCount();
  const std::size_t bytes_before = InternedBytes();
  Intern("counter-probe-abcdefgh");
  EXPECT_GT(InternedCount(), count_before);
  // Arena bytes count whole blocks, so a small string may fit in an
  // already-allocated block — but the total never shrinks.
  EXPECT_GE(InternedBytes(), bytes_before);
  EXPECT_GT(InternedBytes(), 0u);
}

}  // namespace
}  // namespace ld
