#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/simd.hpp"

namespace ld {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, TrailingSeparator) {
  const auto parts = Split("x;", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespace, DropsRuns) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StartsWithContains, Basics) {
  EXPECT_TRUE(StartsWith("apsched[5]", "apsched"));
  EXPECT_FALSE(StartsWith("ap", "apsched"));
  EXPECT_TRUE(Contains("Machine check events", "check"));
  EXPECT_FALSE(Contains("abc", "abd"));
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(ParseInt("-42").value(), -42);
  EXPECT_EQ(ParseInt("0").value(), 0);
  EXPECT_FALSE(ParseInt("42x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt(" 42").ok());
}

TEST(ParseUint, RejectsNegative) {
  EXPECT_EQ(ParseUint("18446744073709551615").value(), 18446744073709551615ull);
  EXPECT_FALSE(ParseUint("-1").ok());
}

TEST(ParseDouble, StrictWholeString) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("3.5kg").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(FindKeyValue, ExtractsFields) {
  const std::string rec =
      "user=u1 group=users queue=normal Exit_status=271 start=123";
  EXPECT_EQ(FindKeyValue(rec, "user").value(), "u1");
  EXPECT_EQ(FindKeyValue(rec, "Exit_status").value(), "271");
  EXPECT_EQ(FindKeyValue(rec, "start").value(), "123");
  EXPECT_FALSE(FindKeyValue(rec, "end").ok());
}

TEST(FindKeyValue, KeyMustBeFieldBoundary) {
  // "status=" must not match inside "Exit_status=".
  const std::string rec = "Exit_status=7";
  EXPECT_FALSE(FindKeyValue(rec, "status").ok());
  const std::string rec2 = "status=1 Exit_status=7";
  EXPECT_EQ(FindKeyValue(rec2, "status").value(), "1");
}

TEST(KeyValueView, AgreesWithFindKeyValueOpt) {
  // The one-pass splitter must answer every lookup exactly as the
  // per-key scanner does, on realistic accounting payloads and
  // adversarial ones (values containing '=', dotted keys, bare tokens,
  // duplicate keys, leading/trailing whitespace).
  const std::string_view records[] = {
      "",
      "   ",
      "placeApp",
      "user=u1 group=users queue=normal Exit_status=271 start=123",
      "Resource_List.nodect=32 Resource_List.neednodes=1:ppn=16 end=9",
      "  apid=204   jobid=7 nids=12-15,18  ",
      "status=1 Exit_status=7 status=2",
      "empty= next=ok",
      "trailing_bare_token user=x oddball",
      "a=1\tb=2\nc=3",
  };
  const std::string_view keys[] = {
      "user",        "queue",  "Exit_status",         "status",
      "start",       "end",    "Resource_List.nodect", "apid",
      "jobid",       "nids",   "empty",               "next",
      "oddball",     "a",      "b",                   "c",
      "Resource_List.neednodes", "missing",
  };
  for (const std::string_view rec : records) {
    const KeyValueView kv(rec);
    EXPECT_FALSE(kv.overflowed()) << rec;
    for (const std::string_view key : keys) {
      EXPECT_EQ(kv.Get(key), FindKeyValueOpt(rec, key))
          << "rec=\"" << rec << "\" key=" << key;
    }
  }
}

TEST(KeyValueView, ValueMayContainEquals) {
  const KeyValueView kv("Resource_List.neednodes=1:ppn=16 end=9");
  EXPECT_EQ(kv.Get("Resource_List.neednodes").value(), "1:ppn=16");
  EXPECT_EQ(kv.Get("end").value(), "9");
  // The embedded "ppn=" must not become its own entry.
  EXPECT_FALSE(kv.Get("ppn").has_value());
  EXPECT_FALSE(kv.Get("16").has_value());
}

TEST(KeyValueView, OverflowFallsBackToFullScan) {
  // More than kMaxEntries pairs: the view abandons its fixed table and
  // every Get must still answer correctly via the per-key scan.
  std::string rec;
  for (std::size_t i = 0; i < KeyValueView::kMaxEntries + 8; ++i) {
    rec += "k" + std::to_string(i) + "=" + std::to_string(i * 10) + " ";
  }
  const KeyValueView kv(rec);
  EXPECT_TRUE(kv.overflowed());
  EXPECT_EQ(kv.entry_count(), 0u);
  for (std::size_t i = 0; i < KeyValueView::kMaxEntries + 8; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(kv.Get(key).has_value()) << key;
    EXPECT_EQ(kv.Get(key).value(), std::to_string(i * 10)) << key;
  }
  EXPECT_FALSE(kv.Get("k999").has_value());
}

TEST(KeyValueView, PinnedBackendsAgree) {
  // The bitmap walk must split identically on every kernel backend this
  // host can run, including records whose '=' and token boundaries
  // straddle the 64-byte word boundary.
  std::string boundary = std::string(60, 'x') + " key=value tail=1";
  const std::string_view records[] = {
      "user=u1 group=users queue=normal Exit_status=271 start=123",
      "Resource_List.nodect=32 Resource_List.neednodes=1:ppn=16 end=9",
      "  apid=204   jobid=7 nids=12-15,18  ",
      boundary,
  };
  const std::string_view keys[] = {"user",  "queue", "Exit_status",
                                   "start", "end",   "Resource_List.nodect",
                                   "apid",  "key",   "tail"};
  for (const char* name : {"scalar", "sse2", "avx2", "neon"}) {
    const simd::Kernels* k = simd::GetBackend(name);
    if (k == nullptr) continue;
    for (const std::string_view rec : records) {
      const KeyValueView pinned(rec, *k);
      const KeyValueView active(rec);
      ASSERT_EQ(pinned.entry_count(), active.entry_count())
          << name << " rec=\"" << rec << "\"";
      for (const std::string_view key : keys) {
        EXPECT_EQ(pinned.Get(key), active.Get(key))
            << name << " rec=\"" << rec << "\" key=" << key;
      }
    }
  }
}

TEST(KeyValueView, LargeRecordTakesTokenScanFallback) {
  // A record past the 4 KiB stack-bitmap budget (a giant exec_host
  // list) takes the per-token fallback, which must answer exactly like
  // the per-key scanner.
  std::string rec = "user=u7 exec_host=";
  for (int i = 0; i < 400; ++i) {
    rec += "nid" + std::to_string(10000 + i) + "/0+";
  }
  rec += " Exit_status=0 end=1357088460";
  ASSERT_GT(rec.size(), 4096u);
  const KeyValueView kv(rec);
  EXPECT_FALSE(kv.overflowed());
  for (const std::string_view key :
       {"user", "exec_host", "Exit_status", "end", "missing", "nid10000"}) {
    EXPECT_EQ(kv.Get(key), FindKeyValueOpt(rec, key)) << key;
  }
  EXPECT_EQ(kv.Get("Exit_status").value(), "0");
  EXPECT_EQ(kv.Get("user").value(), "u7");
}

TEST(Join, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(WithThousands, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(5000000), "5,000,000");
}

}  // namespace
}  // namespace ld
