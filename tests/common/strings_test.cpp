#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, TrailingSeparator) {
  const auto parts = Split("x;", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWhitespace, DropsRuns) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StartsWithContains, Basics) {
  EXPECT_TRUE(StartsWith("apsched[5]", "apsched"));
  EXPECT_FALSE(StartsWith("ap", "apsched"));
  EXPECT_TRUE(Contains("Machine check events", "check"));
  EXPECT_FALSE(Contains("abc", "abd"));
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(ParseInt("-42").value(), -42);
  EXPECT_EQ(ParseInt("0").value(), 0);
  EXPECT_FALSE(ParseInt("42x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt(" 42").ok());
}

TEST(ParseUint, RejectsNegative) {
  EXPECT_EQ(ParseUint("18446744073709551615").value(), 18446744073709551615ull);
  EXPECT_FALSE(ParseUint("-1").ok());
}

TEST(ParseDouble, StrictWholeString) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("3.5kg").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(FindKeyValue, ExtractsFields) {
  const std::string rec =
      "user=u1 group=users queue=normal Exit_status=271 start=123";
  EXPECT_EQ(FindKeyValue(rec, "user").value(), "u1");
  EXPECT_EQ(FindKeyValue(rec, "Exit_status").value(), "271");
  EXPECT_EQ(FindKeyValue(rec, "start").value(), "123");
  EXPECT_FALSE(FindKeyValue(rec, "end").ok());
}

TEST(FindKeyValue, KeyMustBeFieldBoundary) {
  // "status=" must not match inside "Exit_status=".
  const std::string rec = "Exit_status=7";
  EXPECT_FALSE(FindKeyValue(rec, "status").ok());
  const std::string rec2 = "status=1 Exit_status=7";
  EXPECT_EQ(FindKeyValue(rec2, "status").value(), "1");
}

TEST(Join, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(WithThousands, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(5000000), "5,000,000");
}

}  // namespace
}  // namespace ld
