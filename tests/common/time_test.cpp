#include "common/time.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(Duration, Construction) {
  EXPECT_EQ(Duration::Seconds(90).seconds(), 90);
  EXPECT_EQ(Duration::Minutes(2).seconds(), 120);
  EXPECT_EQ(Duration::Hours(3).seconds(), 10800);
  EXPECT_EQ(Duration::Days(2).seconds(), 172800);
}

TEST(Duration, Arithmetic) {
  const Duration d = Duration::Hours(1) + Duration::Minutes(30);
  EXPECT_EQ(d.seconds(), 5400);
  EXPECT_EQ((d - Duration::Minutes(30)).seconds(), 3600);
  EXPECT_EQ((Duration::Seconds(10) * 6).seconds(), 60);
  EXPECT_DOUBLE_EQ(Duration::Days(1).hours(), 24.0);
  EXPECT_DOUBLE_EQ(Duration::Hours(12).days(), 0.5);
}

TEST(Duration, ToStringShort) {
  EXPECT_EQ(Duration::Seconds(0).ToString(), "00:00:00");
  EXPECT_EQ(Duration::Seconds(3661).ToString(), "01:01:01");
  EXPECT_EQ(Duration::Seconds(-60).ToString(), "-00:01:00");
}

TEST(Duration, ToStringWithDays) {
  EXPECT_EQ((Duration::Days(2) + Duration::Hours(3) + Duration::Minutes(15))
                .ToString(),
            "2d 03:15:00");
}

TEST(TimePoint, CalendarRoundTripEpoch) {
  const TimePoint t = TimePoint::FromCalendar(1970, 1, 1);
  EXPECT_EQ(t.unix_seconds(), 0);
  const CalendarTime c = ToCalendar(t);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(TimePoint, KnownEpochValue) {
  // 2013-04-01T00:00:00Z == 1364774400 (independently known).
  EXPECT_EQ(TimePoint::FromCalendar(2013, 4, 1).unix_seconds(), 1364774400);
}

TEST(TimePoint, IsoFormat) {
  const TimePoint t = TimePoint::FromCalendar(2013, 4, 1, 2, 10, 2);
  EXPECT_EQ(t.ToIso(), "2013-04-01T02:10:02");
}

TEST(TimePoint, SyslogFormatPadsDay) {
  EXPECT_EQ(TimePoint::FromCalendar(2013, 4, 1, 2, 10, 2).ToSyslog(),
            "Apr  1 02:10:02");
  EXPECT_EQ(TimePoint::FromCalendar(2013, 12, 25, 23, 59, 59).ToSyslog(),
            "Dec 25 23:59:59");
}

TEST(TimePoint, FromIsoParsesBothSeparators) {
  auto a = TimePoint::FromIso("2013-04-01T02:10:02");
  ASSERT_TRUE(a.ok());
  auto b = TimePoint::FromIso("2013-04-01 02:10:02");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->unix_seconds(), b->unix_seconds());
}

TEST(TimePoint, FromIsoRejectsGarbage) {
  EXPECT_FALSE(TimePoint::FromIso("not a time").ok());
  EXPECT_FALSE(TimePoint::FromIso("2013-13-01T00:00:00").ok());
  EXPECT_FALSE(TimePoint::FromIso("2013-04-32T00:00:00").ok());
  EXPECT_FALSE(TimePoint::FromIso("2013-04-01T25:00:00").ok());
}

TEST(TimePoint, Comparisons) {
  const TimePoint a = TimePoint::FromCalendar(2013, 4, 1);
  const TimePoint b = a + Duration::Hours(1);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).seconds(), 3600);
  EXPECT_EQ(b - Duration::Hours(1), a);
}

TEST(TimePoint, LeapYearHandling) {
  const TimePoint feb29 = TimePoint::FromCalendar(2012, 2, 29);
  const CalendarTime c = ToCalendar(feb29);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 29);
  // 2013 is not a leap year: Feb 28 + 1 day = Mar 1.
  const TimePoint mar1 =
      TimePoint::FromCalendar(2013, 2, 28) + Duration::Days(1);
  const CalendarTime c2 = ToCalendar(mar1);
  EXPECT_EQ(c2.month, 3);
  EXPECT_EQ(c2.day, 1);
}

// Property sweep: calendar round trip across a broad grid of instants.
class TimeRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TimeRoundTrip, CalendarRoundTrips) {
  const TimePoint t(GetParam());
  const CalendarTime c = ToCalendar(t);
  const TimePoint back =
      TimePoint::FromCalendar(c.year, c.month, c.day, c.hour, c.minute,
                              c.second);
  EXPECT_EQ(back.unix_seconds(), t.unix_seconds());
}

TEST_P(TimeRoundTrip, IsoRoundTrips) {
  const TimePoint t(GetParam());
  auto parsed = TimePoint::FromIso(t.ToIso());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->unix_seconds(), t.unix_seconds());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimeRoundTrip,
    ::testing::Values(0, 1, 86399, 86400, 1364774400, 1388534399, 1388534400,
                      1400000000, 951782400 /* 2000-02-29 */,
                      4102444800 /* 2100-01-01 */, 978307199, 978307200));

}  // namespace
}  // namespace ld
