#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ld {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(CsvReader, ParsesQuotedFields) {
  auto fields = CsvReader::ParseLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "a,b");
  EXPECT_EQ((*fields)[1], "say \"hi\"");
  EXPECT_EQ((*fields)[2], "plain");
}

TEST(CsvReader, EmptyFields) {
  auto fields = CsvReader::ParseLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
}

TEST(CsvReader, RejectsMalformed) {
  EXPECT_FALSE(CsvReader::ParseLine("\"unterminated").ok());
  EXPECT_FALSE(CsvReader::ParseLine("ab\"cd").ok());
}

TEST(CsvRoundTrip, WriterOutputParses) {
  std::ostringstream out;
  CsvWriter writer(out);
  const std::vector<std::string> row = {"x,y", "", "q\"uote", "123"};
  writer.WriteRow(row);
  std::string line = out.str();
  line.pop_back();  // trailing newline
  auto parsed = CsvReader::ParseLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, row);
}

TEST(CsvReader, ReadFileWithHeader) {
  const std::string path = ::testing::TempDir() + "/csv_test_file.csv";
  {
    std::ofstream f(path);
    f << "id,name\n1,alpha\n2,beta\n\n";
  }
  auto table = CsvReader::ReadFile(path, /*has_header=*/true);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->header.size(), 2u);
  EXPECT_EQ(table->header[1], "name");
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "beta");
  std::remove(path.c_str());
}

TEST(CsvReader, MissingFile) {
  EXPECT_FALSE(CsvReader::ReadFile("/nonexistent/file.csv", true).ok());
}

}  // namespace
}  // namespace ld
