// Run manifests: golden schema (the key set docs/OBSERVABILITY.md
// documents), JSON validity, and input fingerprinting.
#include "common/obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/obs/build_info.hpp"
#include "common/obs/json.hpp"

namespace ld::obs {
namespace {

std::string TempPath(const char* name) {
  return std::filesystem::temp_directory_path().string() + "/" + name;
}

TEST(ObsManifestTest, GoldenSchema) {
  ManifestBuilder manifest("unit_test");
  const char* argv[] = {"tool", "analyze", "--seed", "7"};
  manifest.SetArgv(4, argv);
  manifest.SetUint("seed", 7);
  manifest.Set("mode", "analyze");
  manifest.RecordEnv("LD_OBS_MANIFEST_TEST_UNSET_VAR");
  manifest.SetExitCode(0);
  const std::string json = manifest.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;

  // The documented schema: every top-level key present, in a valid JSON
  // document.  Key order is part of the writer's contract (stable
  // diffs), so substring checks are exact enough.
  // The writer emits `"key": value` (one space after the colon).
  for (const char* key :
       {"\"schema_version\": 1", "\"tool\": \"unit_test\"",
        "\"created_unix\": ",
        "\"argv\": [\"tool\",\"analyze\",\"--seed\",\"7\"]", "\"build\": ",
        "\"git_sha\": ", "\"build_type\": ", "\"compiler\": ",
        "\"cxx_flags\": ", "\"sanitizers\": ", "\"obs_compiled_in\": ",
        "\"simd_backend\": ",
        "\"host\": ", "\"hardware_concurrency\": ", "\"config\": ",
        "\"seed\": \"7\"", "\"mode\": \"analyze\"", "\"env\": ",
        "\"LD_OBS_MANIFEST_TEST_UNSET_VAR\": null", "\"inputs\": [",
        "\"metrics\": ", "\"wall_seconds\": ", "\"max_rss_kb\": ",
        "\"exit_code\": 0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ObsManifestTest, ExitCodeOmittedUntilSet) {
  ManifestBuilder manifest("unit_test");
  EXPECT_EQ(manifest.ToJson().find("exit_code"), std::string::npos);
  manifest.SetExitCode(3);
  EXPECT_NE(manifest.ToJson().find("\"exit_code\": 3"), std::string::npos);
}

TEST(ObsManifestTest, InputFingerprint) {
  const std::string path = TempPath("ld_obs_manifest_input.txt");
  { std::ofstream(path) << "hello fingerprint\n"; }
  ManifestBuilder manifest("unit_test");
  manifest.AddInput(path);
  manifest.AddInput(TempPath("ld_obs_manifest_missing.txt"));
  const std::string json = manifest.ToJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;

  // FNV-1a 64 is deterministic: the embedded hash must match a direct
  // computation over the same bytes, rendered as 0x + 16 hex digits.
  const std::string data = "hello fingerprint\n";
  char expected[32];
  std::snprintf(expected, sizeof expected, "\"fnv1a64\": \"0x%016llx\"",
                static_cast<unsigned long long>(
                    Fnv1a64(data.data(), data.size())));
  EXPECT_NE(json.find(expected), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes\": 18"), std::string::npos) << json;
  // The missing file is disclosed, not fatal.
  EXPECT_NE(json.find("\"error\":"), std::string::npos) << json;
  std::remove(path.c_str());
}

TEST(ObsManifestTest, WriteProducesALoadableFile) {
  const std::string path = TempPath("ld_obs_manifest_out.json");
  ManifestBuilder manifest("unit_test");
  manifest.SetExitCode(0);
  ASSERT_TRUE(manifest.Write(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(ValidateJson(contents).ok());
  std::remove(path.c_str());
}

TEST(ObsManifestTest, BuildInfoIsWired) {
  const BuildInfo& build = GetBuildInfo();
  // configure_file must have substituted something for every field; the
  // literal @...@ placeholders mean the template was compiled raw.
  EXPECT_EQ(std::string(build.git_sha).find('@'), std::string::npos);
  EXPECT_NE(std::string(build.compiler), "");
#if defined(LOGDIVER_OBS_DISABLED)
  EXPECT_FALSE(build.obs_compiled_in);
#else
  EXPECT_TRUE(build.obs_compiled_in);
#endif
}

}  // namespace
}  // namespace ld::obs
