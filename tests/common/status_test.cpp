#include "common/status.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = ParseError("bad line 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad line 7");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad line 7");
}

TEST(Status, Factories) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(r.value(), std::runtime_error);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrOnSuccess) {
  Result<std::string> r(std::string("hit"));
  EXPECT_EQ(r.value_or("fallback"), "hit");
}

TEST(Result, RejectsOkStatusWithoutValue) {
  EXPECT_THROW((Result<int>(Status::Ok())), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailWhen(bool fail) {
  LD_TRY(fail ? ParseError("inner failure") : Status::Ok());
  return Status::Ok();
}

Result<int> DoubleOf(Result<int> input) {
  LD_ASSIGN_OR_RETURN(const int v, input);
  return v * 2;
}

TEST(LdTry, PropagatesErrorsAndPassesOk) {
  EXPECT_TRUE(FailWhen(false).ok());
  const Status failed = FailWhen(true);
  EXPECT_EQ(failed.code(), StatusCode::kParseError);
  EXPECT_EQ(failed.message(), "inner failure");
}

TEST(LdTry, AcceptsResultExpressions) {
  const auto through = [](Result<int> r) -> Status {
    LD_TRY(r);
    return Status::Ok();
  };
  EXPECT_TRUE(through(7).ok());
  EXPECT_EQ(through(NotFoundError("gone")).code(), StatusCode::kNotFound);
}

TEST(LdAssignOrReturn, AssignsValueOrPropagates) {
  const auto doubled = DoubleOf(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  const auto failed = DoubleOf(OutOfRangeError("too big"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(failed.status().message(), "too big");
}

TEST(LdCheck, ThrowsOnViolation) {
  EXPECT_THROW(LD_CHECK(false, "must not happen"), std::logic_error);
  EXPECT_NO_THROW(LD_CHECK(true, "fine"));
}

}  // namespace
}  // namespace ld
