#include "common/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ld {
namespace {

TEST(ExponentialDist, PdfCdfMean) {
  ExponentialDist d(2.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.5);
  EXPECT_DOUBLE_EQ(d.Pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_NEAR(d.Cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.Pdf(0.0), 2.0, 1e-12);
}

TEST(ExponentialDist, FitRecoversRate) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.Exponential(0.25));
  auto fit = ExponentialDist::Fit(sample);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rate(), 0.25, 0.01);
}

TEST(WeibullDist, CdfAtScale) {
  WeibullDist d(2.0, 3.0);
  // F(scale) = 1 - e^-1 for any shape.
  EXPECT_NEAR(d.Cdf(3.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(-2.0), 0.0);
}

TEST(WeibullDist, MeanViaGamma) {
  WeibullDist d(1.0, 5.0);  // reduces to Exponential(1/5)
  EXPECT_NEAR(d.Mean(), 5.0, 1e-9);
}

TEST(WeibullDist, FitRecoversParameters) {
  Rng rng(2);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.Weibull(0.8, 40.0));
  auto fit = WeibullDist::Fit(sample);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->shape(), 0.8, 0.02);
  EXPECT_NEAR(fit->scale(), 40.0, 1.5);
}

TEST(LogNormalDist, FitRecoversParameters) {
  Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.LogNormal(1.5, 0.6));
  auto fit = LogNormalDist::Fit(sample);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->mu(), 1.5, 0.02);
  EXPECT_NEAR(fit->sigma(), 0.6, 0.02);
  EXPECT_NEAR(fit->Mean(), std::exp(1.5 + 0.18), 0.2);
}

TEST(Fitting, RejectsBadSamples) {
  EXPECT_FALSE(ExponentialDist::Fit({}).ok());
  EXPECT_FALSE(WeibullDist::Fit({1.0, -2.0}).ok());
  EXPECT_FALSE(LogNormalDist::Fit({0.0, 1.0}).ok());
  EXPECT_FALSE(FitAll({}).ok());
}

TEST(FitAll, PicksGeneratingFamilyFirst) {
  // A strongly lognormal sample should rank lognormal best by AIC.
  Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.LogNormal(2.0, 1.2));
  auto fits = FitAll(sample);
  ASSERT_TRUE(fits.ok());
  ASSERT_EQ(fits->size(), 3u);
  EXPECT_EQ((*fits)[0]->name(), "lognormal");
}

TEST(FitAll, WeibullSampleRanksWeibullOverExponential) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Weibull(0.6, 10.0));
  auto fits = FitAll(sample);
  ASSERT_TRUE(fits.ok());
  // Find positions.
  int weibull_pos = -1, exp_pos = -1;
  for (int i = 0; i < 3; ++i) {
    if ((*fits)[i]->name() == "weibull") weibull_pos = i;
    if ((*fits)[i]->name() == "exponential") exp_pos = i;
  }
  EXPECT_LT(weibull_pos, exp_pos);
}

TEST(KsStatistic, SmallForMatchingDistribution) {
  Rng rng(6);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Exponential(1.0));
  const double d_match = KsStatistic(sample, ExponentialDist(1.0));
  const double d_mismatch = KsStatistic(sample, ExponentialDist(5.0));
  EXPECT_LT(d_match, 0.02);
  EXPECT_GT(d_mismatch, 0.3);
}

TEST(Distribution, LogLikelihoodAndAic) {
  ExponentialDist d(1.0);
  const std::vector<double> sample = {1.0, 2.0};
  EXPECT_NEAR(d.LogLikelihood(sample), -3.0, 1e-12);
  EXPECT_NEAR(d.Aic(sample), 2.0 + 6.0, 1e-12);
}

}  // namespace
}  // namespace ld
