// Metrics registry: exactness under concurrency, histogram bucket
// geometry, and the runtime kill switch.
#include "common/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/obs/names.hpp"
#include "common/obs/obs.hpp"

namespace ld::obs {
namespace {

class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Get().SetEnabled(true);
    Registry::Get().Reset();
  }
  void TearDown() override {
    Registry::Get().SetEnabled(true);
    Registry::Get().Reset();
  }
};

TEST_F(ObsMetricsTest, ConcurrentIncrementsAggregateExactly) {
  Counter& counter = Registry::Get().GetCounter("test.concurrent_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Sharded cells must sum to the exact total — striping may not lose
  // or double increments.
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, HistogramBucketEdges) {
  Histogram& hist = Registry::Get().GetHistogram("test.edges");
  // Bucket 0 is exactly zero; bucket i covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(7), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 4);
  EXPECT_EQ(Histogram::BucketFor((std::uint64_t{1} << 20) - 1), 20);
  EXPECT_EQ(Histogram::BucketFor(std::uint64_t{1} << 20), 21);
  EXPECT_EQ(Histogram::BucketFor(~std::uint64_t{0}), Histogram::kBuckets - 1);

  hist.Record(0);
  hist.Record(1);
  hist.Record(5);
  hist.Record(5);
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_EQ(hist.Sum(), 11u);
  EXPECT_EQ(hist.BucketCount(0), 1u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(3), 2u);
}

TEST_F(ObsMetricsTest, HistogramUpperBoundsAreHalfOpen) {
  // BucketUpperBound(b) is the exclusive upper edge: every value in
  // bucket b is < it, and the bound itself lands in bucket b+1.
  for (int b = 1; b < 10; ++b) {
    const std::uint64_t bound = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketFor(bound - 1), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketFor(bound), b + 1) << "bucket " << b;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST_F(ObsMetricsTest, GaugeTracksValueAndMax) {
  Gauge& gauge = Registry::Get().GetGauge("test.depth");
  gauge.Set(5);
  gauge.Set(12);
  gauge.Set(3);
  EXPECT_EQ(gauge.Value(), 3);
  EXPECT_EQ(gauge.Max(), 12);
}

TEST_F(ObsMetricsTest, SnapshotIsSortedAndTyped) {
  Registry::Get().GetCounter("test.snap.b_total").Add(2);
  Registry::Get().GetGauge("test.snap.a_gauge").Set(7);
  Registry::Get().GetHistogram("test.snap.c_micros").Record(100);
  // The registry is process-wide and other suites register metrics too;
  // filter to this test's namespace (the full snapshot stays sorted, so
  // the filtered view is as well).
  std::vector<MetricSnapshot> snap;
  for (MetricSnapshot& m : Registry::Get().Snapshot()) {
    if (m.name.starts_with("test.snap.")) snap.push_back(std::move(m));
  }
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "test.snap.a_gauge");
  EXPECT_EQ(snap[0].type, MetricType::kGauge);
  EXPECT_EQ(snap[0].gauge_value, 7);
  EXPECT_EQ(snap[1].name, "test.snap.b_total");
  EXPECT_EQ(snap[1].type, MetricType::kCounter);
  EXPECT_EQ(snap[1].count, 2u);
  EXPECT_EQ(snap[2].name, "test.snap.c_micros");
  EXPECT_EQ(snap[2].type, MetricType::kHistogram);
  EXPECT_EQ(snap[2].count, 1u);
  EXPECT_EQ(snap[2].sum, 100u);
}

TEST_F(ObsMetricsTest, GetReturnsStableReferencesAcrossResets) {
  Counter& first = Registry::Get().GetCounter("test.stable_total");
  first.Add(9);
  Registry::Get().Reset();
  // Reset zeroes in place — the macro layer caches references in
  // function-local statics, so deallocation would be a use-after-free.
  EXPECT_EQ(first.Value(), 0u);
  Counter& again = Registry::Get().GetCounter("test.stable_total");
  EXPECT_EQ(&first, &again);
  again.Add(1);
  EXPECT_EQ(first.Value(), 1u);
}

#if !defined(LOGDIVER_OBS_DISABLED)
TEST_F(ObsMetricsTest, RuntimeDisableStopsMacroRecording) {
  LD_OBS_COUNTER_ADD("test.switch_total", 1);
  Registry::Get().SetEnabled(false);
  EXPECT_FALSE(LD_OBS_ACTIVE());
  LD_OBS_COUNTER_ADD("test.switch_total", 1);
  LD_OBS_HIST_RECORD("test.switch_micros", 55);
  Registry::Get().SetEnabled(true);
  EXPECT_EQ(Registry::Get().GetCounter("test.switch_total").Value(), 1u);
  // The histogram macro never ran, so the metric was never registered.
  for (const MetricSnapshot& m : Registry::Get().Snapshot()) {
    EXPECT_NE(m.name, "test.switch_micros");
  }
}
#endif  // !LOGDIVER_OBS_DISABLED

TEST_F(ObsMetricsTest, CatalogNamesFollowTheNamingScheme) {
  // Counters end in _total; histograms in a unit suffix.  This pins the
  // convention documented in names.hpp for the names the pipeline uses.
  const std::string counters[] = {
      names::kIngestLinesTotal, names::kQuarantineAddedTotal,
      names::kPoolTasksTotal, names::kSnapshotWritesTotal};
  for (const std::string& name : counters) {
    EXPECT_TRUE(name.ends_with("_total")) << name;
    EXPECT_TRUE(name.starts_with("ld.")) << name;
  }
  const std::string histograms[] = {names::kIngestChunkMicros,
                                    names::kPoolWaitMicros,
                                    names::kSnapshotWriteMicros};
  for (const std::string& name : histograms) {
    EXPECT_TRUE(name.ends_with("_micros")) << name;
  }
}

}  // namespace
}  // namespace ld::obs
