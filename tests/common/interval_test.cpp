#include "common/interval.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

Interval Iv(std::int64_t a, std::int64_t b) {
  return Interval{TimePoint(a), TimePoint(b)};
}

TEST(Interval, EmptyAndLength) {
  EXPECT_TRUE(Iv(5, 5).empty());
  EXPECT_TRUE(Iv(5, 3).empty());
  EXPECT_EQ(Iv(5, 3).length().seconds(), 0);
  EXPECT_EQ(Iv(2, 10).length().seconds(), 8);
}

TEST(Interval, ContainsHalfOpen) {
  const Interval iv = Iv(10, 20);
  EXPECT_TRUE(iv.Contains(TimePoint(10)));
  EXPECT_TRUE(iv.Contains(TimePoint(19)));
  EXPECT_FALSE(iv.Contains(TimePoint(20)));
  EXPECT_FALSE(iv.Contains(TimePoint(9)));
}

TEST(Interval, Overlaps) {
  EXPECT_TRUE(Iv(0, 10).Overlaps(Iv(5, 15)));
  EXPECT_FALSE(Iv(0, 10).Overlaps(Iv(10, 20)));  // touching, half-open
  EXPECT_TRUE(Iv(0, 100).Overlaps(Iv(40, 50)));  // containment
}

TEST(Interval, IntersectAndInflate) {
  EXPECT_EQ(Iv(0, 10).Intersect(Iv(5, 15)), Iv(5, 10));
  EXPECT_TRUE(Iv(0, 10).Intersect(Iv(20, 30)).empty());
  EXPECT_EQ(Iv(10, 20).Inflate(Duration(3)), Iv(7, 23));
}

TEST(IntervalSet, AddDisjoint) {
  IntervalSet set;
  set.Add(Iv(0, 10));
  set.Add(Iv(20, 30));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.TotalLength().seconds(), 20);
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet set;
  set.Add(Iv(0, 10));
  set.Add(Iv(5, 15));
  set.Add(Iv(15, 20));  // touching merges too
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.TotalLength().seconds(), 20);
}

TEST(IntervalSet, MergeBridgesGaps) {
  IntervalSet set;
  set.Add(Iv(0, 5));
  set.Add(Iv(10, 15));
  set.Add(Iv(4, 11));  // bridges both
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], Iv(0, 15));
}

TEST(IntervalSet, IgnoresEmpty) {
  IntervalSet set;
  set.Add(Iv(7, 7));
  EXPECT_EQ(set.size(), 0u);
}

TEST(IntervalSet, Contains) {
  IntervalSet set;
  set.Add(Iv(0, 10));
  set.Add(Iv(20, 30));
  EXPECT_TRUE(set.Contains(TimePoint(5)));
  EXPECT_FALSE(set.Contains(TimePoint(15)));
  EXPECT_TRUE(set.Contains(TimePoint(20)));
  EXPECT_FALSE(set.Contains(TimePoint(30)));
  EXPECT_FALSE(set.Contains(TimePoint(-1)));
}

TEST(IntervalSet, OverlapWith) {
  IntervalSet set;
  set.Add(Iv(0, 10));
  set.Add(Iv(20, 30));
  EXPECT_EQ(set.OverlapWith(Iv(5, 25)).seconds(), 10);  // 5 + 5
  EXPECT_EQ(set.OverlapWith(Iv(10, 20)).seconds(), 0);
  EXPECT_EQ(set.OverlapWith(Iv(-5, 100)).seconds(), 20);
  EXPECT_EQ(set.OverlapWith(Iv(9, 9)).seconds(), 0);  // empty query
}

}  // namespace
}  // namespace ld
