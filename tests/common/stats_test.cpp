#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ld {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.Merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Quantile, OrderStatistics) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.75), 7.5);
}

TEST(Quantile, Rejections) {
  EXPECT_THROW(Quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(Quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, DistinctValuesWithTies) {
  const auto cdf = EmpiricalCdf({3.0, 1.0, 3.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].first, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].second, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(WilsonInterval, DegenerateInputs) {
  const ProportionCi zero = WilsonInterval(0, 0);
  EXPECT_EQ(zero.point, 0.0);
  const ProportionCi none = WilsonInterval(0, 100);
  EXPECT_EQ(none.point, 0.0);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_GT(none.hi, 0.0);  // Wilson never collapses to [0,0] with trials
  const ProportionCi all = WilsonInterval(100, 100);
  EXPECT_EQ(all.point, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
}

TEST(WilsonInterval, CoversPointAndNarrowsWithN) {
  const ProportionCi small = WilsonInterval(5, 50);
  const ProportionCi large = WilsonInterval(500, 5000);
  EXPECT_NEAR(small.point, 0.1, 1e-12);
  EXPECT_LE(small.lo, small.point);
  EXPECT_GE(small.hi, small.point);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 4
  h.Add(-3.0);   // clamps to bin 0
  h.Add(25.0);   // clamps to bin 4
  h.Add(5.0, 2.0);  // weighted, bin 2
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(LogHistogram, LogSpacedEdges) {
  LogHistogram h(1.0, 10000.0, 4);
  EXPECT_NEAR(h.bin_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-6);
  h.Add(5.0);
  h.Add(50.0);
  h.Add(5000.0);
  h.Add(0.0);  // clamps into the first bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_THROW(LogHistogram(0.0, 10.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace ld
