// Pins the compile-time kill switch: this translation unit is compiled
// with LOGDIVER_OBS_DISABLED (set_source_files_properties in
// tests/CMakeLists.txt), exactly as every TU is under
// -DLOGDIVER_OBS=OFF, so it proves the LD_OBS_* macros really compile
// to no-ops — not merely to cheap checks.
#include <gtest/gtest.h>

#include <string>

#include "common/obs/metrics.hpp"
#include "common/obs/obs.hpp"
#include "common/obs/trace.hpp"

#ifndef LOGDIVER_OBS_DISABLED
#error "obs_off_test.cpp must be compiled with LOGDIVER_OBS_DISABLED"
#endif

namespace ld::obs {
namespace {

TEST(ObsOffTest, ActiveIsACompileTimeFalse) {
  // The macro must be the literal `false` — usable in static_assert,
  // so dependent code is dead-stripped, not branched over.
  static_assert(!LD_OBS_ACTIVE());
  static_assert(LD_OBS_NOW_NS() == 0);
}

TEST(ObsOffTest, MacrosLeaveTheRegistryUntouched) {
  LD_OBS_COUNTER_ADD("off.counter_total", 5);
  LD_OBS_GAUGE_SET("off.gauge", 42);
  LD_OBS_HIST_RECORD("off.hist_micros", 1000);
  // The names must never have been registered: the macros expanded to
  // ((void)0), so no lookup ever happened.  (The registry itself still
  // links — manifests use it — it just records nothing from here.)
  for (const MetricSnapshot& metric : Registry::Get().Snapshot()) {
    EXPECT_TRUE(metric.name.rfind("off.", 0) != 0) << metric.name;
  }
}

TEST(ObsOffTest, SpanMacrosRecordNothing) {
  Tracer::Get().Start();
  {
    LD_OBS_SPAN("off_span");
    LD_OBS_SPAN_DYN(std::string("off_dyn_span"));
  }
  Tracer::Get().Stop();
  EXPECT_EQ(Tracer::Get().ToJson().find("off_span"), std::string::npos);
}

}  // namespace
}  // namespace ld::obs
