#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ld {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
    const std::int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW(rng.UniformInt(0), std::invalid_argument);
  EXPECT_THROW(rng.UniformInt(3, 1), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.UniformInt(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.Exponential(0.0), std::invalid_argument);
}

TEST(Rng, WeibullReducesToExponential) {
  // shape=1 Weibull(1, s) has mean s.
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.LogNormal(std::log(7.0), 0.9));
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 7.0, 0.4);
}

TEST(Rng, PoissonMean) {
  Rng rng(10);
  double small_sum = 0.0, big_sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.Poisson(3.5));
    big_sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(small_sum / n, 3.5, 0.1);
  EXPECT_NEAR(big_sum / n, 200.0, 1.0);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(12);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
  EXPECT_THROW(rng.WeightedIndex({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.WeightedIndex({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ForkIndependentAndDeterministic) {
  Rng a(99);
  Rng fork1 = a.Fork("alpha");
  Rng fork2 = a.Fork("alpha");
  Rng fork3 = a.Fork("beta");
  EXPECT_EQ(fork1.NextU64(), fork2.NextU64());
  EXPECT_NE(fork1.NextU64(), fork3.NextU64());
}

TEST(HashString, StableAndDistinct) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(ZipfSampler, RanksInBounds) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t r = zipf.Sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(ZipfSampler, HeavyHead) {
  ZipfSampler zipf(100, 1.5);
  Rng rng(14);
  int rank1 = 0, rank50plus = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t r = zipf.Sample(rng);
    if (r == 1) ++rank1;
    if (r >= 50) ++rank50plus;
  }
  EXPECT_GT(rank1, rank50plus);
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ld
