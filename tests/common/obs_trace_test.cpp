// Span tracer: Chrome trace_event JSON well-formedness, and span-count
// determinism across thread counts (chunking is deterministic, so the
// same analysis must emit the same spans no matter how many workers ran
// them).
#include "common/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/obs/json.hpp"
#include "common/obs/obs.hpp"
#include "logdiver/logdiver.hpp"
#include "simlog/scenario.hpp"

namespace ld::obs {
namespace {

// Spans come from the LD_OBS_* macros, which are no-ops when the build
// compiled observability out — nothing to test there (obs_off_test.cpp
// pins the no-op behavior instead).
#if !defined(LOGDIVER_OBS_DISABLED)

class ObsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Get().Stop(); }
};

TEST_F(ObsTraceTest, SpansRecordOnlyWhileArmed) {
  { LD_OBS_SPAN("before_start"); }
  Tracer::Get().Start();
  { LD_OBS_SPAN("while_armed"); }
  Tracer::Get().Stop();
  { LD_OBS_SPAN("after_stop"); }
  ASSERT_EQ(Tracer::Get().event_count(), 1u);
  const std::string json = Tracer::Get().ToJson();
  EXPECT_NE(json.find("\"while_armed\""), std::string::npos);
  EXPECT_EQ(json.find("before_start"), std::string::npos);
  EXPECT_EQ(json.find("after_stop"), std::string::npos);
}

TEST_F(ObsTraceTest, DynamicNamesAndEscaping) {
  Tracer::Get().Start();
  const std::string tricky = "load/a\"b\\c\tfile";
  { LD_OBS_SPAN_DYN(tricky); }
  Tracer::Get().Stop();
  const std::string json = Tracer::Get().ToJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\t"), std::string::npos) << json;
}

TEST_F(ObsTraceTest, JsonHasTheChromeTraceShape) {
  Tracer::Get().Start();
  {
    LD_OBS_SPAN("outer");
    LD_OBS_SPAN("inner");
  }
  Tracer::Get().Stop();
  const std::string json = Tracer::Get().ToJson();
  ASSERT_TRUE(ValidateJson(json).ok()) << json;
  // Every complete event carries the fields chrome://tracing requires.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(ObsTraceTest, StartClearsPreviousEvents) {
  Tracer::Get().Start();
  { LD_OBS_SPAN("first_run"); }
  Tracer::Get().Stop();
  ASSERT_EQ(Tracer::Get().event_count(), 1u);
  Tracer::Get().Start();
  Tracer::Get().Stop();
  EXPECT_EQ(Tracer::Get().event_count(), 0u);
}

TEST_F(ObsTraceTest, SpanCountIsDeterministicAcrossThreadCounts) {
  // The analysis pipeline chunks work identically at every thread count
  // (that's the bit-identical-output contract), so the set of spans —
  // one per chunk plus the fixed stages — must be identical too.
  ScenarioConfig config = SmallScenario(17);
  config.workload.target_app_runs = 300;
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());
  LogSet logs;
  logs.torque = campaign->logs.torque;
  logs.alps = campaign->logs.alps;
  logs.syslog = campaign->logs.syslog;
  logs.hwerr = campaign->logs.hwerr;

  std::vector<std::size_t> counts;
  for (const int threads : {1, 2, 4}) {
    Tracer::Get().Start();
    LogDiverConfig diver_config;
    diver_config.threads = threads;
    const LogDiver diver(machine, diver_config);
    auto analysis = diver.Analyze(logs);
    Tracer::Get().Stop();
    ASSERT_TRUE(analysis.ok());
    ASSERT_TRUE(ValidateJson(Tracer::Get().ToJson()).ok());
    counts.push_back(Tracer::Get().event_count());
  }
  EXPECT_GT(counts[0], 0u);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
}

#endif  // !LOGDIVER_OBS_DISABLED

}  // namespace
}  // namespace ld::obs
