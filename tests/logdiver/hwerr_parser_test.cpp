#include "logdiver/hwerr_parser.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(HwerrParser, ParsesRecord) {
  HwerrParser parser;
  auto rec = parser.ParseLine(
      "1364783402|machine_check|c1-2c0s3n1|fatal|bank=4 status=0x1a2b");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->time.unix_seconds(), 1364783402);
  EXPECT_EQ((*rec)->category, ErrorCategory::kMachineCheck);
  EXPECT_EQ((*rec)->severity, Severity::kFatal);
  EXPECT_EQ((*rec)->location, "c1-2c0s3n1");
  EXPECT_EQ((*rec)->scope, LocScope::kNode);
  EXPECT_EQ((*rec)->source, LogSource::kHwerr);
}

TEST(HwerrParser, CorrectedSeverity) {
  HwerrParser parser;
  auto rec = parser.ParseLine(
      "1364783402|machine_check|c0-0c0s0n0|corrected|bank=1 status=0x0");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->severity, Severity::kCorrected);
}

TEST(HwerrParser, BladeFaultNormalizedToBladePrefix) {
  HwerrParser parser;
  auto rec = parser.ParseLine(
      "1364783402|blade_fault|c3-4c1s2n1|fatal|voltage");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->scope, LocScope::kBlade);
  EXPECT_EQ((*rec)->location, "c3-4c1s2");
}

TEST(HwerrParser, SkipsUnknownCategories) {
  HwerrParser parser;
  auto rec = parser.ParseLine("1364783402|quantum_flux|c0-0c0s0n0|fatal|x");
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->has_value());
  EXPECT_EQ(parser.stats().skipped, 1u);
}

TEST(HwerrParser, MalformedLines) {
  HwerrParser parser;
  EXPECT_FALSE(parser.ParseLine("").ok());
  EXPECT_FALSE(parser.ParseLine("a|b|c").ok());
  EXPECT_FALSE(parser.ParseLine("xxx|machine_check|c0-0c0s0n0|fatal|d").ok());
  EXPECT_FALSE(
      parser.ParseLine("123|machine_check|c0-0c0s0n0|meltdown|d").ok());
  EXPECT_EQ(parser.stats().malformed, 4u);
}

TEST(HwerrParser, ParseLinesKeepsGood) {
  HwerrParser parser;
  const std::vector<std::string> lines = {
      "100|gpu_dbe|c9-9c0s0n3|fatal|ecc",
      "broken",
      "200|memory_ue|c0-0c0s0n0|fatal|row=4",
  };
  const auto records = parser.ParseLines(lines);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].category, ErrorCategory::kGpuDbe);
  EXPECT_EQ(records[1].category, ErrorCategory::kMemoryUE);
}

}  // namespace
}  // namespace ld
