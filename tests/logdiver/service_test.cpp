// Multi-tenant service tests: wire protocol, the write-ahead journal's
// torn-tail handling, per-tenant crash recovery (bit-identical to an
// uninterrupted run), daemon admission/backpressure/shed semantics, and
// the watchdog's stalled-shard recycle.  The full overload/fault sweep
// with hundreds of tenants lives in bench/service_campaign (ctest
// label `service`).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crashpoint.hpp"
#include "common/sockio.hpp"
#include "logdiver/service/daemon.hpp"
#include "logdiver/service/journal.hpp"
#include "logdiver/service/protocol.hpp"
#include "logdiver/service/tenant.hpp"
#include "simlog/scenario.hpp"

namespace ld::service {
namespace {

// --------------------------------------------------------------------
// Line framing
// --------------------------------------------------------------------

TEST(LineChannelTest, StripsCrlfFraming) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload =
      "PING\r\nINGEST t torque a \r mid-line stays\r\ntail";
  ASSERT_EQ(::send(fds[0], payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  ::shutdown(fds[0], SHUT_WR);
  LineChannel channel(fds[1]);
  auto line = channel.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(**line, "PING");
  line = channel.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(**line, "INGEST t torque a \r mid-line stays");
  line = channel.ReadLine();  // unterminated EOF tail, no \r to strip
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(**line, "tail");
  line = channel.ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_FALSE(line->has_value());
  ::close(fds[0]);
}

// --------------------------------------------------------------------
// Protocol grammar
// --------------------------------------------------------------------

TEST(ProtocolTest, ParsesIngest) {
  auto req = ParseRequest("INGEST acme syslog Apr  1 00:00:01 nid00001 up");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->kind, RequestKind::kIngest);
  EXPECT_EQ(req->tenant, "acme");
  EXPECT_EQ(req->source, LogSource::kSyslog);
  EXPECT_EQ(req->line, "Apr  1 00:00:01 nid00001 up");
}

TEST(ProtocolTest, IngestPreservesLineVerbatim) {
  // Raw log lines contain runs of spaces; only the three header tokens
  // are split, the rest passes through byte-for-byte.
  auto req = ParseRequest("INGEST t torque  leading  and   inner");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->line, " leading  and   inner");
}

TEST(ProtocolTest, ParsesQueryKinds) {
  for (const auto& [word, kind] :
       {std::pair<std::string, QueryKind>{"report", QueryKind::kReport},
        {"ingest", QueryKind::kIngest},
        {"health", QueryKind::kHealth}}) {
    auto req = ParseRequest("QUERY t1 " + word);
    ASSERT_TRUE(req.ok()) << word;
    EXPECT_EQ(req->kind, RequestKind::kQuery);
    EXPECT_EQ(req->query, kind);
  }
  EXPECT_FALSE(ParseRequest("QUERY t1 bogus").ok());
}

TEST(ProtocolTest, ParsesAdminVerbs) {
  EXPECT_EQ(ParseRequest("PING")->kind, RequestKind::kPing);
  EXPECT_EQ(ParseRequest("SNAPSHOT")->kind, RequestKind::kSnapshot);
  EXPECT_EQ(ParseRequest("DRAIN")->kind, RequestKind::kDrain);
  auto fault = ParseRequest("FAULT t1 slow 10 25 7");
  ASSERT_TRUE(fault.ok());
  EXPECT_EQ(fault->fault, FaultKind::kSlow);
  EXPECT_EQ(fault->fault_after, 10u);
  EXPECT_EQ(fault->fault_mean_ms, 25u);
  EXPECT_EQ(fault->fault_seed, 7u);
}

TEST(ProtocolTest, RejectsBadTenantIds) {
  // Tenant ids become directory names; the charset is the validation.
  EXPECT_TRUE(ValidTenantId("acme-prod_2.1"));
  EXPECT_FALSE(ValidTenantId(""));
  EXPECT_FALSE(ValidTenantId("."));
  EXPECT_FALSE(ValidTenantId(".."));
  EXPECT_FALSE(ValidTenantId("a/b"));
  EXPECT_FALSE(ValidTenantId(std::string(65, 'x')));
  EXPECT_FALSE(ParseRequest("INGEST ../evil torque x").ok());
}

TEST(ProtocolTest, ReplyVerdicts) {
  EXPECT_EQ(ReplyVerdict(OkReply("5")), "OK");
  EXPECT_EQ(ReplyVerdict(BusyReply(20, "queue full")), "BUSY");
  EXPECT_EQ(ReplyVerdict(ShedReply(250, "over budget")), "SHED");
  EXPECT_EQ(ReplyVerdict(ErrReply("nope")), "ERR");
  EXPECT_EQ(BusyReply(20, "queue full"), "BUSY 20 queue full");
}

// --------------------------------------------------------------------
// Delay fault point (LD_DELAY_AFTER)
// --------------------------------------------------------------------

TEST(DelayPointTest, BoundedAndDeterministic) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t ms = DelayForBoundary(i, /*mean_ms=*/10, /*seed=*/3);
    EXPECT_GE(ms, 5u);
    EXPECT_LE(ms, 15u);
    EXPECT_EQ(ms, DelayForBoundary(i, 10, 3)) << "not deterministic at " << i;
  }
  // Different seeds must produce different schedules somewhere.
  bool differs = false;
  for (std::uint64_t i = 0; i < 200 && !differs; ++i) {
    differs = DelayForBoundary(i, 10, 3) != DelayForBoundary(i, 10, 4);
  }
  EXPECT_TRUE(differs);
  EXPECT_GE(DelayForBoundary(7, /*mean_ms=*/0, /*seed=*/1), 1u);
}

TEST(DelayPointTest, ArmDisarm) {
  EXPECT_FALSE(DelayPointArmed());
  ArmDelayPoint(1, /*mean_ms=*/1, /*seed=*/1);
  EXPECT_TRUE(DelayPointArmed());
  CrashPoint("test");  // one ~1 ms nap; proves the path doesn't wedge
  DisarmDelayPoint();
  EXPECT_FALSE(DelayPointArmed());
}

// --------------------------------------------------------------------
// Journal
// --------------------------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) const {
    return testing::TempDir() + "svc_journal_" + name + "_" +
           std::to_string(::getpid());
  }
};

TEST_F(JournalTest, AppendReplayRoundTrip) {
  const std::string path = Path("roundtrip");
  std::filesystem::remove(path);
  TenantJournal j;
  ASSERT_TRUE(j.Open(path).ok());
  auto first = j.Append(LogSource::kTorque, TimePoint(100), "line one");
  ASSERT_TRUE(first.ok());
  auto second = j.Append(LogSource::kSyslog, TimePoint(200), "line  two ");
  ASSERT_TRUE(second.ok());
  j.Close();

  std::vector<JournalRecord> records;
  auto end = TenantJournal::Replay(
      path, 0, [&](const JournalRecord& r) { records.push_back(r); });
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(*end, *second);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].source, LogSource::kTorque);
  EXPECT_EQ(records[0].claimed, TimePoint(100));
  EXPECT_EQ(records[0].line, "line one");
  EXPECT_EQ(records[0].end_offset, *first);
  EXPECT_EQ(records[1].source, LogSource::kSyslog);
  EXPECT_EQ(records[1].line, "line  two ");  // spaces survive verbatim

  // Replaying from the first record's end offset yields only the tail.
  records.clear();
  end = TenantJournal::Replay(
      path, *first, [&](const JournalRecord& r) { records.push_back(r); });
  ASSERT_TRUE(end.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].line, "line  two ");
  std::filesystem::remove(path);
}

TEST_F(JournalTest, TornTailIsDetectedAndCut) {
  const std::string path = Path("torn");
  std::filesystem::remove(path);
  TenantJournal j;
  ASSERT_TRUE(j.Open(path).ok());
  auto first = j.Append(LogSource::kAlps, TimePoint(7), "whole record");
  ASSERT_TRUE(first.ok());
  j.Close();
  {
    // A crash mid-write leaves an unterminated final record.
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << "s 99 half a reco";  // no trailing newline
  }
  std::size_t replayed = 0;
  auto end = TenantJournal::Replay(path, 0,
                                   [&](const JournalRecord&) { ++replayed; });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, *first);  // valid data ends where the whole record did
  EXPECT_EQ(replayed, 1u);
  ASSERT_TRUE(TenantJournal::TruncateTo(path, *end).ok());
  EXPECT_EQ(std::filesystem::file_size(path), *first);
  std::filesystem::remove(path);
}

TEST_F(JournalTest, MissingFileReplaysNothing) {
  auto end = TenantJournal::Replay(Path("absent"), 0,
                                   [](const JournalRecord&) { FAIL(); });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, 0u);
}

TEST_F(JournalTest, OffsetPastEofIsRefused) {
  const std::string path = Path("pasteof");
  std::filesystem::remove(path);
  TenantJournal j;
  ASSERT_TRUE(j.Open(path).ok());
  ASSERT_TRUE(j.Append(LogSource::kTorque, TimePoint(1), "x").ok());
  j.Close();
  // A snapshot pointing past the journal means the journal lost acked
  // data — recovery must fail loudly, not silently resume.
  EXPECT_FALSE(
      TenantJournal::Replay(path, 10000, [](const JournalRecord&) {}).ok());
  std::filesystem::remove(path);
}

// --------------------------------------------------------------------
// Tenant shard: ingest, recovery, budget
// --------------------------------------------------------------------

/// Campaign lines merged chronologically — the tailer's-eye view a
/// service client would replay, shared by every shard test.
struct TimedLine {
  TimePoint time;
  LogSource source;
  std::string line;
};

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config = SmallScenario(707);
    config.workload.target_app_runs = 120;
    machine_ = new Machine(MakeMachine(config));
    auto campaign = RunCampaign(*machine_, config);
    ASSERT_TRUE(campaign.ok());
    lines_ = new std::vector<TimedLine>(Merge(campaign->logs));
    ASSERT_GT(lines_->size(), 500u);
  }

  static void TearDownTestSuite() {
    delete lines_;
    delete machine_;
    lines_ = nullptr;
    machine_ = nullptr;
  }

  static std::vector<TimedLine> Merge(const EmittedLogs& logs) {
    std::vector<TimedLine> merged;
    TorqueParser torque;
    for (const std::string& line : logs.torque) {
      auto rec = torque.ParseLine(line);
      if (rec.ok() && rec->has_value()) {
        merged.push_back({(*rec)->time, LogSource::kTorque, line});
      }
    }
    AlpsParser alps;
    for (const std::string& line : logs.alps) {
      auto rec = alps.ParseLine(line);
      if (rec.ok() && rec->has_value()) {
        merged.push_back({(*rec)->time, LogSource::kAlps, line});
      }
    }
    for (const std::string& line : logs.syslog) {
      auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15), 2013);
      merged.push_back({t.ok() ? *t : TimePoint(0), LogSource::kSyslog, line});
    }
    HwerrParser hwerr;
    for (const std::string& line : logs.hwerr) {
      auto rec = hwerr.ParseLine(line);
      if (rec.ok() && rec->has_value()) {
        merged.push_back({(*rec)->time, LogSource::kHwerr, line});
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TimedLine& a, const TimedLine& b) {
                       return a.time < b.time;
                     });
    return merged;
  }

  std::string Dir(const std::string& name) const {
    const std::string dir = testing::TempDir() + "svc_test_" + name + "_" +
                            std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
  }

  /// Feeds lines [begin, end) into the shard, absorbing backpressure
  /// the way a well-behaved client does.
  static void Feed(TenantShard& shard, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end && i < lines_->size(); ++i) {
      const TimedLine& item = (*lines_)[i];
      std::string reply;
      for (int attempt = 0; attempt < 1000; ++attempt) {
        reply = shard.Ingest(item.source, item.line);
        if (ReplyVerdict(reply) != "BUSY") break;
        ::usleep(1000);
      }
      ASSERT_EQ(ReplyVerdict(reply), "OK") << "line " << i << ": " << reply;
    }
  }

  static Machine* machine_;
  static std::vector<TimedLine>* lines_;
};

Machine* ServiceTest::machine_ = nullptr;
std::vector<TimedLine>* ServiceTest::lines_ = nullptr;

TEST_F(ServiceTest, ShardIngestAndReportBasics) {
  const std::string dir = Dir("basics");
  TenantShard shard("acme", dir, *machine_, LogDiverConfig{}, TenantLimits{});
  std::uint64_t recovered = 99;
  ASSERT_TRUE(shard.Start(&recovered).ok());
  EXPECT_EQ(recovered, 0u);  // fresh directory, nothing to replay
  Feed(shard, 0, 400);
  EXPECT_EQ(shard.accepted(), 400u);
  ASSERT_TRUE(shard.Drain().ok());
  EXPECT_EQ(shard.applied(), 400u);
  const std::string report = shard.QueryReport();
  EXPECT_EQ(ReplyVerdict(report), "OK");
  EXPECT_NE(report.find("applied=400"), std::string::npos) << report;
  const std::string health = shard.QueryHealth();
  EXPECT_NE(health.find("state=active"), std::string::npos) << health;
  shard.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, RecoveryIsBitIdenticalToUninterruptedRun) {
  const std::size_t n = std::min<std::size_t>(lines_->size(), 1500);

  // Reference: one shard, never interrupted.
  const std::string ref_dir = Dir("recovery_ref");
  std::string ref_report, ref_ingest;
  {
    TenantShard ref("acme", ref_dir, *machine_, LogDiverConfig{},
                    TenantLimits{});
    ASSERT_TRUE(ref.Start().ok());
    Feed(ref, 0, n);
    ASSERT_TRUE(ref.Drain().ok());
    ref_report = ref.QueryReport();
    ref_ingest = ref.QueryIngest();
    ref.Stop();
  }

  // Interrupted: snapshot mid-stream, accept the rest, then come back
  // WITHOUT a final snapshot — recovery must replay the journal suffix.
  const std::string dir = Dir("recovery_cut");
  TenantLimits limits;
  limits.snapshot_interval_lines = 0;  // only explicit snapshots
  limits.snapshot_interval_bytes = 0;
  {
    TenantShard shard("acme", dir, *machine_, LogDiverConfig{}, limits);
    ASSERT_TRUE(shard.Start().ok());
    Feed(shard, 0, n / 2);
    ASSERT_TRUE(shard.Drain().ok());  // snapshot at the halfway point
    Feed(shard, n / 2, n);
    shard.Stop();  // applies the queue but takes no snapshot
  }
  {
    TenantShard shard("acme", dir, *machine_, LogDiverConfig{}, limits);
    std::uint64_t recovered = 0;
    ASSERT_TRUE(shard.Start(&recovered).ok());
    EXPECT_GT(recovered, 0u);  // the suffix really was replayed
    EXPECT_EQ(shard.accepted(), n);
    ASSERT_TRUE(shard.Drain().ok());
    EXPECT_EQ(shard.QueryReport(), ref_report);
    EXPECT_EQ(shard.QueryIngest(), ref_ingest);
    shard.Stop();
  }
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, RecoveryCutsTornJournalTail) {
  const std::string dir = Dir("torn_tail");
  const std::uint64_t kAccepted = 200;
  {
    TenantShard shard("acme", dir, *machine_, LogDiverConfig{},
                      TenantLimits{});
    ASSERT_TRUE(shard.Start().ok());
    Feed(shard, 0, kAccepted);
    ASSERT_TRUE(shard.Drain().ok());
    shard.Stop();
  }
  {
    // kill -9 mid-append: an unterminated record after the acked data.
    std::ofstream torn(dir + "/journal.ldj", std::ios::app | std::ios::binary);
    torn << "t 1364775002 half a rec";
  }
  TenantShard shard("acme", dir, *machine_, LogDiverConfig{}, TenantLimits{});
  ASSERT_TRUE(shard.Start().ok());
  EXPECT_EQ(shard.accepted(), kAccepted);  // the torn line was never acked
  Feed(shard, kAccepted, kAccepted + 10);  // and appends still work after
  ASSERT_TRUE(shard.Drain().ok());
  EXPECT_EQ(shard.applied(), kAccepted + 10);
  shard.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, ForeignSnapshotIsRejectedAtStart) {
  // Another tenant's snapshot landing in this directory must not be
  // restored: the tenant fingerprint gates LoadLatest.
  const std::string dir = Dir("foreign");
  {
    TenantShard other("intruder", dir, *machine_, LogDiverConfig{},
                      TenantLimits{});
    ASSERT_TRUE(other.Start().ok());
    Feed(other, 0, 50);
    ASSERT_TRUE(other.Drain().ok());
    other.Stop();
  }
  std::filesystem::remove(dir + "/journal.ldj");
  TenantShard shard("acme", dir, *machine_, LogDiverConfig{}, TenantLimits{});
  std::uint64_t recovered = 0;
  ASSERT_TRUE(shard.Start(&recovered).ok());
  EXPECT_EQ(shard.accepted(), 0u);  // started fresh, not from the snapshot
  shard.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, OverBudgetTenantIsShedThenRecovers) {
  const std::string dir = Dir("shed");
  TenantLimits limits;
  limits.budget.policy = DegradationPolicy::kFailFast;
  limits.budget.window_lines = 32;
  limits.budget.min_malformed = 4;
  limits.budget.max_malformed_fraction = 0.1;
  limits.budget.cooloff_ms = 100;
  TenantShard shard("dirty", dir, *machine_, LogDiverConfig{}, limits);
  ASSERT_TRUE(shard.Start().ok());

  // Flood with garbage; once a full window evaluates over budget the
  // shard sheds with an explicit retry-after, never a silent drop.
  std::string reply;
  bool shed = false;
  for (int i = 0; i < 2000 && !shed; ++i) {
    reply = shard.Ingest(LogSource::kTorque, "not a torque line at all");
    const auto verdict = ReplyVerdict(reply);
    if (verdict == "SHED") {
      shed = true;
    } else if (verdict == "BUSY") {
      ::usleep(1000);
    } else {
      ASSERT_EQ(verdict, "OK") << reply;
    }
    // Budget windows read the quarantine totals the worker publishes,
    // so give the apply side a moment to keep up.
    if (i % 32 == 31) ::usleep(2000);
  }
  ASSERT_TRUE(shed) << "never shed; last reply: " << reply;
  EXPECT_EQ(shard.state(), TenantState::kShedding);
  EXPECT_NE(shard.QueryHealth().find("state=shedding"), std::string::npos);

  // After the cooloff the tenant probes again — clean traffic passes.
  ::usleep(150 * 1000);
  for (int attempt = 0; attempt < 100; ++attempt) {
    reply = shard.Ingest(LogSource::kSyslog, (*lines_)[0].line);
    if (ReplyVerdict(reply) == "OK") break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(ReplyVerdict(reply), "OK") << reply;
  shard.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, DegradePolicyKeepsInjestingButFlagsHealth) {
  const std::string dir = Dir("degrade");
  TenantLimits limits;
  limits.budget.policy = DegradationPolicy::kQuarantineAndContinue;
  limits.budget.window_lines = 32;
  limits.budget.min_malformed = 4;
  limits.budget.max_malformed_fraction = 0.1;
  TenantShard shard("grubby", dir, *machine_, LogDiverConfig{}, limits);
  ASSERT_TRUE(shard.Start().ok());
  for (int i = 0; i < 200; ++i) {
    const std::string reply =
        shard.Ingest(LogSource::kTorque, "still not a torque line");
    ASSERT_NE(ReplyVerdict(reply), "SHED") << reply;
    if (ReplyVerdict(reply) == "BUSY") ::usleep(1000);
    if (i % 32 == 31) ::usleep(2000);
  }
  ASSERT_TRUE(shard.Drain().ok());
  EXPECT_EQ(shard.state(), TenantState::kDegraded);
  EXPECT_NE(shard.QueryHealth().find("state=degraded"), std::string::npos);
  shard.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, StopOnAWedgedWorkerIsBounded) {
  const std::string dir = Dir("wedged_stop");
  TenantLimits limits;
  limits.stop_grace_ms = 200;
  TenantShard shard("wedged", dir, *machine_, LogDiverConfig{}, limits);
  ASSERT_TRUE(shard.Start().ok());
  shard.ArmFault(ShardFault::kHang, /*after=*/1, 0, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ReplyVerdict(shard.Ingest((*lines_)[i].source,
                                        (*lines_)[i].line)),
              "OK");
  }
  // The worker parks inside the injected hang before applying anything
  // (only Abandon releases it); Stop() must return anyway — within the
  // grace bound, not a forever join (the shutdown half of the
  // watchdog's abandon semantics).
  ::usleep(50 * 1000);
  const auto t0 = std::chrono::steady_clock::now();
  shard.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, FullQueueAnswersBusyNotSilence) {
  const std::string dir = Dir("busy");
  TenantLimits limits;
  limits.queue_capacity = 4;
  TenantShard shard("slowpoke", dir, *machine_, LogDiverConfig{}, limits);
  ASSERT_TRUE(shard.Start().ok());
  // A slow worker (seeded delay per applied line) backs the queue up.
  shard.ArmFault(ShardFault::kSlow, /*after=*/1, /*mean_ms=*/40, /*seed=*/7);
  bool saw_busy = false;
  for (std::size_t i = 0; i < 64 && !saw_busy; ++i) {
    const std::string reply =
        shard.Ingest((*lines_)[i].source, (*lines_)[i].line);
    saw_busy = ReplyVerdict(reply) == "BUSY";
  }
  EXPECT_TRUE(saw_busy);
  shard.ArmFault(ShardFault::kNone, 0, 0, 0);
  ASSERT_TRUE(shard.Drain().ok());  // and the backlog still applies fully
  shard.Stop();
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------------
// Daemon: admission, routing, restart re-adoption, watchdog
// --------------------------------------------------------------------

class DaemonTest : public ServiceTest {
 protected:
  ServiceOptions Options(const std::string& dir) const {
    ServiceOptions options;
    options.data_dir = dir;
    options.listen = "unix:" + dir + "/sock";
    options.watchdog_period_ms = 0;  // tests arm it explicitly
    return options;
  }

  static void IngestThrough(LogDiverDaemon& daemon, const std::string& tenant,
                            std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end && i < lines_->size(); ++i) {
      const TimedLine& item = (*lines_)[i];
      std::string reply;
      for (int attempt = 0; attempt < 1000; ++attempt) {
        reply = daemon.HandleCommand("INGEST " + tenant + " " +
                                     LogSourceName(item.source) + " " +
                                     item.line);
        if (ReplyVerdict(reply) != "BUSY") break;
        ::usleep(1000);
      }
      ASSERT_EQ(ReplyVerdict(reply), "OK") << reply;
    }
  }
};

TEST_F(DaemonTest, RoutesVerbsAndValidatesRequests) {
  const std::string dir = Dir("daemon_verbs");
  LogDiverDaemon daemon(*machine_, Options(dir));
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("PING")), "OK");
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("NONSENSE x")), "ERR");
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("QUERY ghost report")), "ERR");
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("INGEST ../up torque x")),
            "ERR");
  // FAULT is an admin surface the daemon must opt into.
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("FAULT t1 hang 1")), "ERR");

  IngestThrough(daemon, "t1", 0, 50);
  EXPECT_EQ(daemon.tenant_count(), 1u);
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("DRAIN")), "OK");
  const std::string report = daemon.HandleCommand("QUERY t1 report");
  EXPECT_EQ(ReplyVerdict(report), "OK");
  EXPECT_NE(report.find("applied=50"), std::string::npos) << report;
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("SNAPSHOT")), "OK");
  daemon.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(DaemonTest, AdmissionCapAnswersBusy) {
  const std::string dir = Dir("daemon_cap");
  ServiceOptions options = Options(dir);
  options.max_tenants = 1;
  LogDiverDaemon daemon(*machine_, options);
  ASSERT_TRUE(daemon.Start().ok());
  IngestThrough(daemon, "first", 0, 5);
  const std::string refused =
      daemon.HandleCommand("INGEST second torque " + (*lines_)[0].line);
  EXPECT_EQ(ReplyVerdict(refused), "BUSY") << refused;
  // The incumbent is unaffected by the refusal at the door.
  IngestThrough(daemon, "first", 5, 10);
  EXPECT_EQ(daemon.tenant_count(), 1u);
  daemon.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(DaemonTest, RestartReadoptsEveryTenantBitIdentically) {
  const std::string dir = Dir("daemon_restart");
  std::string report_a, report_b;
  {
    LogDiverDaemon daemon(*machine_, Options(dir));
    ASSERT_TRUE(daemon.Start().ok());
    IngestThrough(daemon, "alpha", 0, 300);
    IngestThrough(daemon, "beta", 300, 600);
    ASSERT_EQ(ReplyVerdict(daemon.HandleCommand("DRAIN")), "OK");
    report_a = daemon.HandleCommand("QUERY alpha report");
    report_b = daemon.HandleCommand("QUERY beta report");
    daemon.Stop();
  }
  LogDiverDaemon daemon(*machine_, Options(dir));
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(daemon.tenant_count(), 2u);
  EXPECT_EQ(daemon.tenants_recovered(), 2u);
  EXPECT_EQ(daemon.HandleCommand("QUERY alpha report"), report_a);
  EXPECT_EQ(daemon.HandleCommand("QUERY beta report"), report_b);
  daemon.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(DaemonTest, WatchdogRecyclesHungShardAndLosesNothing) {
  const std::string dir = Dir("daemon_watchdog");
  ServiceOptions options = Options(dir);
  options.watchdog_period_ms = 20;
  options.stall_timeout_ms = 100;
  options.enable_fault_commands = true;
  LogDiverDaemon daemon(*machine_, options);
  ASSERT_TRUE(daemon.Start().ok());

  // Reference bytes for the same traffic, computed on a healthy tenant.
  IngestThrough(daemon, "healthy", 0, 400);
  ASSERT_EQ(ReplyVerdict(daemon.HandleCommand("DRAIN")), "OK");
  const std::string want = daemon.HandleCommand("QUERY healthy report");

  // Hang the victim's worker mid-stream; keep ingesting so the queue
  // stays non-empty (an idle shard is not a stalled shard).
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("FAULT victim hang 200")), "OK");
  IngestThrough(daemon, "victim", 0, 400);
  // Generous deadline: an oversubscribed CI machine can starve the
  // watchdog thread and the replacement shard's journal replay.
  for (int i = 0; i < 6000 && daemon.watchdog_recycles() == 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_GE(daemon.watchdog_recycles(), 1u) << "watchdog never fired";

  // After the recycle the tenant answers again, has every acked line,
  // and its report bytes match the healthy reference exactly.
  std::string report;
  for (int i = 0; i < 3000; ++i) {
    report = daemon.HandleCommand("QUERY victim ingest");
    if (ReplyVerdict(report) == "OK") break;
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(ReplyVerdict(report), "OK") << report;
  ASSERT_EQ(ReplyVerdict(daemon.HandleCommand("DRAIN")), "OK");
  const std::string got = daemon.HandleCommand("QUERY victim report");
  // Same lines, same schedule — identical bytes modulo nothing.
  EXPECT_EQ(got, want);
  daemon.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(DaemonTest, SlowShardIsBackpressuredNotRecycled) {
  const std::string dir = Dir("daemon_slow");
  ServiceOptions options = Options(dir);
  options.watchdog_period_ms = 20;
  options.stall_timeout_ms = 150;
  options.enable_fault_commands = true;
  options.tenant.queue_capacity = 8;
  LogDiverDaemon daemon(*machine_, options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(ReplyVerdict(daemon.HandleCommand("FAULT sluggish slow 1 30 7")),
            "OK");
  IngestThrough(daemon, "sluggish", 0, 60);  // BUSY-retries absorb the lag
  ASSERT_EQ(ReplyVerdict(daemon.HandleCommand("DRAIN")), "OK");
  // Slowness is not a stall: progress kept happening, so the watchdog
  // must not have recycled the shard.
  EXPECT_EQ(daemon.watchdog_recycles(), 0u);
  const std::string health = daemon.HandleCommand("QUERY sluggish health");
  EXPECT_NE(health.find("applied=60"), std::string::npos) << health;
  daemon.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ld::service
