#include "logdiver/reconstruct.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

AlpsRecord Place(ApId apid, JobId jobid, std::vector<NodeIndex> nids,
                 std::int64_t t) {
  AlpsRecord rec;
  rec.kind = AlpsRecord::Kind::kPlace;
  rec.time = TimePoint(t);
  rec.apid = apid;
  rec.jobid = jobid;
  rec.nids = std::move(nids);
  rec.nodect = static_cast<std::uint32_t>(rec.nids.size());
  rec.user = Intern("u1");
  return rec;
}

AlpsRecord Exit(ApId apid, int code, int signal, std::int64_t t) {
  AlpsRecord rec;
  rec.kind = AlpsRecord::Kind::kExit;
  rec.time = TimePoint(t);
  rec.apid = apid;
  rec.exit_code = code;
  rec.exit_signal = signal;
  return rec;
}

AlpsRecord Kill(ApId apid, NodeIndex nid, std::int64_t t) {
  AlpsRecord rec;
  rec.kind = AlpsRecord::Kind::kKill;
  rec.time = TimePoint(t);
  rec.apid = apid;
  rec.kill_reason = "node_failure";
  rec.failed_nid = nid;
  return rec;
}

TorqueRecord JobEnd(JobId jobid, std::int64_t start, std::int64_t end,
                    int exit_status, std::int64_t walltime_limit) {
  TorqueRecord rec;
  rec.kind = TorqueRecord::Kind::kEnd;
  rec.jobid = jobid;
  rec.queue = Intern("normal");
  rec.user = Intern("u1");
  rec.submit = TimePoint(start - 10);
  rec.start = TimePoint(start);
  rec.end = TimePoint(end);
  rec.time = rec.end;
  rec.exit_status = exit_status;
  rec.walltime_limit = Duration(walltime_limit);
  return rec;
}

class ReconstructTest : public ::testing::Test {
 protected:
  ReconstructTest() : machine_(Machine::Testbed(96, 24)) {}
  Machine machine_;
};

TEST_F(ReconstructTest, JoinsPlacementExitAndJob) {
  const std::vector<AlpsRecord> alps = {Place(1, 10, {0, 1}, 1000),
                                        Exit(1, 0, 0, 2000)};
  const std::vector<TorqueRecord> torque = {JobEnd(10, 900, 2100, 0, 7200)};
  ReconstructStats stats;
  const auto runs = ReconstructRuns(machine_, alps, torque, &stats);
  ASSERT_EQ(runs.size(), 1u);
  const AppRun& run = runs[0];
  EXPECT_EQ(run.apid, 1u);
  EXPECT_EQ(run.jobid, 10u);
  EXPECT_EQ(run.start, TimePoint(1000));
  EXPECT_EQ(run.end, TimePoint(2000));
  EXPECT_TRUE(run.has_termination);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.queue, "normal");
  EXPECT_EQ(run.walltime_limit.seconds(), 7200);
  EXPECT_EQ(run.job_start, TimePoint(900));
  EXPECT_EQ(run.node_type, NodeType::kXE);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.missing_job, 0u);
}

TEST_F(ReconstructTest, NodeFailureKill) {
  const std::vector<AlpsRecord> alps = {Place(2, 11, {5}, 1000),
                                        Kill(2, 5, 1500)};
  const std::vector<TorqueRecord> torque = {JobEnd(11, 900, 1600, -11, 3600)};
  const auto runs = ReconstructRuns(machine_, alps, torque, nullptr);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].killed_node_failure);
  EXPECT_EQ(runs[0].failed_nid, 5u);
  EXPECT_EQ(runs[0].exit_signal, 9);
}

TEST_F(ReconstructTest, XkTypeInference) {
  // Testbed: XE nodes are 0..95, XK nodes 96..119.
  const std::vector<AlpsRecord> alps = {Place(3, 12, {96, 97}, 100),
                                        Exit(3, 0, 0, 200)};
  const auto runs = ReconstructRuns(machine_, alps, {}, nullptr);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].node_type, NodeType::kXK);
}

TEST_F(ReconstructTest, MissingTerminationCounted) {
  const std::vector<AlpsRecord> alps = {Place(4, 13, {0}, 100)};
  ReconstructStats stats;
  const auto runs = ReconstructRuns(machine_, alps, {}, &stats);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].has_termination);
  EXPECT_EQ(stats.missing_termination, 1u);
  EXPECT_EQ(stats.missing_job, 1u);
}

TEST_F(ReconstructTest, OrphanTerminationCounted) {
  const std::vector<AlpsRecord> alps = {Exit(99, 0, 0, 100)};
  ReconstructStats stats;
  const auto runs = ReconstructRuns(machine_, alps, {}, &stats);
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(stats.orphan_terminations, 1u);
}

TEST_F(ReconstructTest, MixedNodeTypesCounted) {
  const std::vector<AlpsRecord> alps = {Place(5, 14, {0, 96}, 100),
                                        Exit(5, 0, 0, 200)};
  ReconstructStats stats;
  const auto runs = ReconstructRuns(machine_, alps, {}, &stats);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(stats.mixed_node_types, 1u);
}

TEST_F(ReconstructTest, FallsBackToStartRecordForRunningJobs) {
  TorqueRecord start;
  start.kind = TorqueRecord::Kind::kStart;
  start.jobid = 15;
  start.queue = Intern("debug");
  start.start = TimePoint(50);
  start.time = start.start;
  start.walltime_limit = Duration(1800);
  const std::vector<AlpsRecord> alps = {Place(6, 15, {1}, 100),
                                        Exit(6, 1, 0, 200)};
  const auto runs = ReconstructRuns(machine_, alps, {start}, nullptr);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].queue, "debug");
  EXPECT_EQ(runs[0].walltime_limit.seconds(), 1800);
}

TEST_F(ReconstructTest, OutputSortedByStart) {
  const std::vector<AlpsRecord> alps = {
      Place(8, 16, {0}, 500), Exit(8, 0, 0, 600),
      Place(7, 16, {1}, 100), Exit(7, 0, 0, 200)};
  const auto runs = ReconstructRuns(machine_, alps, {}, nullptr);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].apid, 7u);
  EXPECT_EQ(runs[1].apid, 8u);
}

TEST_F(ReconstructTest, NodesOutsideMachineTolerated) {
  const std::vector<AlpsRecord> alps = {Place(9, 17, {999999}, 100),
                                        Exit(9, 0, 0, 200)};
  const auto runs = ReconstructRuns(machine_, alps, {}, nullptr);
  ASSERT_EQ(runs.size(), 1u);  // still a run; type defaults to XE
}

}  // namespace
}  // namespace ld
