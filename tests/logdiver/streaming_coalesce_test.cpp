#include <gtest/gtest.h>

#include "logdiver/coalesce.hpp"

namespace ld {
namespace {

ErrorRecord Rec(std::int64_t t, ErrorCategory cat, Severity sev,
                LocScope scope, std::string loc) {
  ErrorRecord rec;
  rec.time = TimePoint(t);
  rec.category = cat;
  rec.severity = sev;
  rec.scope = scope;
  rec.location = Intern(loc);
  rec.source = LogSource::kSyslog;
  return rec;
}

class StreamingCoalesceTest : public ::testing::Test {
 protected:
  StreamingCoalesceTest()
      : machine_(Machine::Testbed(96, 24)),
        coalescer_(machine_, CoalesceConfig{}),
        node0_(machine_.node(0).cname.ToString()) {}
  Machine machine_;
  StreamingCoalescer coalescer_;
  std::string node0_;
};

TEST_F(StreamingCoalesceTest, FlushOnlyClosesExpiredWindows) {
  coalescer_.Add(Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal,
                     LocScope::kNode, node0_));
  coalescer_.Add(Rec(5000, ErrorCategory::kMemoryUE, Severity::kFatal,
                     LocScope::kNode, node0_));
  // Watermark 2000: only the first tuple's window (1000 + 60s) closed.
  auto flushed = coalescer_.Flush(TimePoint(2000));
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].category, ErrorCategory::kMachineCheck);
  EXPECT_EQ(coalescer_.open_tuples(), 1u);
  // Everything closes at FlushAll.
  auto rest = coalescer_.FlushAll();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].category, ErrorCategory::kMemoryUE);
}

TEST_F(StreamingCoalesceTest, BurstMergesAcrossFlushBoundaryCorrectly) {
  coalescer_.Add(Rec(1000, ErrorCategory::kMachineCheck, Severity::kCorrected,
                     LocScope::kNode, node0_));
  coalescer_.Add(Rec(1030, ErrorCategory::kMachineCheck, Severity::kFatal,
                     LocScope::kNode, node0_));
  // Watermark before window close: nothing flushes.
  EXPECT_TRUE(coalescer_.Flush(TimePoint(1080)).empty());
  auto flushed = coalescer_.Flush(TimePoint(1200));
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].count, 2u);
  EXPECT_EQ(flushed[0].severity, Severity::kFatal);
}

TEST_F(StreamingCoalesceTest, DisplacedTupleSurfacesOnNextFlush) {
  // Two bursts on the same key separated by more than the window: the
  // second Add displaces the first tuple, which must still be returned.
  coalescer_.Add(Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal,
                     LocScope::kNode, node0_));
  coalescer_.Add(Rec(5000, ErrorCategory::kMachineCheck, Severity::kFatal,
                     LocScope::kNode, node0_));
  auto flushed = coalescer_.Flush(TimePoint(5001));
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].first, TimePoint(1000));
  EXPECT_EQ(coalescer_.open_tuples(), 1u);
}

TEST_F(StreamingCoalesceTest, OpenIncidentSurvivesLongGaps) {
  ErrorRecord incident = Rec(1000, ErrorCategory::kLustre, Severity::kFatal,
                             LocScope::kSystem, "");
  coalescer_.Add(incident);
  // Well past the tupling window but unrecovered: must stay open.
  EXPECT_TRUE(coalescer_.Flush(TimePoint(10000)).empty());
  ASSERT_TRUE(coalescer_.EarliestOpenIncident().has_value());
  EXPECT_EQ(*coalescer_.EarliestOpenIncident(), TimePoint(1000));

  // The recovery line merges despite the 2-hour gap and closes it.
  ErrorRecord recovery = Rec(8200, ErrorCategory::kLustre,
                             Severity::kCorrected, LocScope::kSystem, "");
  recovery.recovered = TimePoint(8200);
  coalescer_.Add(recovery);
  EXPECT_FALSE(coalescer_.EarliestOpenIncident().has_value());
  auto flushed = coalescer_.Flush(TimePoint(9000));
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].severity, Severity::kFatal);
  ASSERT_TRUE(flushed[0].recovered.has_value());
  EXPECT_EQ(*flushed[0].recovered, TimePoint(8200));
}

TEST_F(StreamingCoalesceTest, FlushAllAppliesDefaultIncidentWindow) {
  coalescer_.Add(Rec(1000, ErrorCategory::kLustre, Severity::kFatal,
                     LocScope::kSystem, ""));
  auto flushed = coalescer_.FlushAll();
  ASSERT_EQ(flushed.size(), 1u);
  ASSERT_TRUE(flushed[0].recovered.has_value());
  EXPECT_EQ((*flushed[0].recovered - flushed[0].first).seconds(), 1800);
}

TEST_F(StreamingCoalesceTest, StatsTrackEventsAndTuples) {
  coalescer_.Add(Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal,
                     LocScope::kNode, node0_));
  coalescer_.Add(Rec(1001, ErrorCategory::kMachineCheck, Severity::kFatal,
                     LocScope::kNode, node0_));
  coalescer_.Add(Rec(1002, ErrorCategory::kNodeHeartbeat, Severity::kFatal,
                     LocScope::kNode, "c99-9c9s9n9"));  // unresolved
  (void)coalescer_.FlushAll();
  EXPECT_EQ(coalescer_.stats().input_events, 3u);
  EXPECT_EQ(coalescer_.stats().tuples, 1u);
  EXPECT_EQ(coalescer_.stats().unresolved_locations, 1u);
}

}  // namespace
}  // namespace ld
