#include "logdiver/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/scoring.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

/// A (time, source, line) stream merged across all four logs, the way a
/// tailer would deliver them.
struct TimedLine {
  TimePoint time;
  int source;  // 0 torque, 1 alps, 2 syslog, 3 hwerr
  std::string line;
};

TimePoint SyslogLineTime(const std::string& line, int year) {
  auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15), year);
  return t.ok() ? *t : TimePoint(0);
}

std::vector<TimedLine> MergeStreams(const EmittedLogs& logs, int year) {
  std::vector<TimedLine> merged;
  TorqueParser torque;
  for (const std::string& line : logs.torque) {
    auto rec = torque.ParseLine(line);
    if (rec.ok() && rec->has_value()) {
      merged.push_back({(*rec)->time, 0, line});
    }
  }
  AlpsParser alps;
  for (const std::string& line : logs.alps) {
    auto rec = alps.ParseLine(line);
    if (rec.ok() && rec->has_value()) {
      merged.push_back({(*rec)->time, 1, line});
    }
  }
  for (const std::string& line : logs.syslog) {
    merged.push_back({SyslogLineTime(line, year), 2, line});
  }
  HwerrParser hwerr;
  for (const std::string& line : logs.hwerr) {
    auto rec = hwerr.ParseLine(line);
    if (rec.ok() && rec->has_value()) {
      merged.push_back({(*rec)->time, 3, line});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TimedLine& a, const TimedLine& b) {
                     return a.time < b.time;
                   });
  return merged;
}

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ScenarioConfig(SmallScenario(404));
    machine_ = new Machine(MakeMachine(*config_));
    auto campaign = RunCampaign(*machine_, *config_);
    ASSERT_TRUE(campaign.ok());
    campaign_ = new Campaign(std::move(*campaign));

    LogDiver diver(*machine_, LogDiverConfig{});
    auto batch = diver.Analyze(LogSet{campaign_->logs.torque,
                                      campaign_->logs.alps,
                                      campaign_->logs.syslog,
                                      campaign_->logs.hwerr});
    ASSERT_TRUE(batch.ok());
    batch_ = new AnalysisResult(std::move(*batch));
  }

  static void TearDownTestSuite() {
    delete batch_;
    delete campaign_;
    delete machine_;
    delete config_;
    batch_ = nullptr;
    campaign_ = nullptr;
    machine_ = nullptr;
    config_ = nullptr;
  }

  /// Streams the whole campaign chronologically, advancing the watermark
  /// every `advance_every` lines; returns the summary and the peak state.
  StreamingAnalyzer::Summary Stream(std::size_t advance_every,
                                    StreamingAnalyzer::StateSize* peak =
                                        nullptr) {
    StreamingAnalyzer analyzer(*machine_, LogDiverConfig{});
    const auto merged = MergeStreams(campaign_->logs, 2013);
    StreamingAnalyzer::StateSize max_size;
    std::size_t since_advance = 0;
    for (const TimedLine& item : merged) {
      switch (item.source) {
        case 0: analyzer.AddTorqueLine(item.line); break;
        case 1: analyzer.AddAlpsLine(item.line); break;
        case 2: analyzer.AddSyslogLine(item.line); break;
        case 3: analyzer.AddHwerrLine(item.line); break;
      }
      if (++since_advance >= advance_every) {
        since_advance = 0;
        analyzer.Advance(item.time - Duration::Minutes(5));  // reorder slack
        const auto size = analyzer.state_size();
        max_size.open_jobs = std::max(max_size.open_jobs, size.open_jobs);
        max_size.open_runs = std::max(max_size.open_runs, size.open_runs);
        max_size.pending_runs =
            std::max(max_size.pending_runs, size.pending_runs);
        max_size.buffered_tuples =
            std::max(max_size.buffered_tuples, size.buffered_tuples);
      }
    }
    if (peak != nullptr) *peak = max_size;
    return analyzer.Finalize();
  }

  static ScenarioConfig* config_;
  static Machine* machine_;
  static Campaign* campaign_;
  static AnalysisResult* batch_;
};

ScenarioConfig* StreamingTest::config_ = nullptr;
Machine* StreamingTest::machine_ = nullptr;
Campaign* StreamingTest::campaign_ = nullptr;
AnalysisResult* StreamingTest::batch_ = nullptr;

TEST_F(StreamingTest, MatchesBatchHeadlineMetrics) {
  const auto summary = Stream(500);
  EXPECT_EQ(summary.runs_finalized, batch_->runs.size());
  EXPECT_EQ(summary.metrics.total_runs, batch_->metrics.total_runs);
  EXPECT_DOUBLE_EQ(summary.metrics.system_failure_fraction,
                   batch_->metrics.system_failure_fraction);
  EXPECT_DOUBLE_EQ(summary.metrics.lost_node_hours_fraction,
                   batch_->metrics.lost_node_hours_fraction);
  EXPECT_NEAR(summary.metrics.total_node_hours,
              batch_->metrics.total_node_hours, 1e-6);
}

TEST_F(StreamingTest, MatchesBatchBreakdownTables) {
  const auto summary = Stream(1000);
  ASSERT_EQ(summary.metrics.outcomes.size(), batch_->metrics.outcomes.size());
  for (std::size_t i = 0; i < summary.metrics.outcomes.size(); ++i) {
    EXPECT_EQ(summary.metrics.outcomes[i].outcome,
              batch_->metrics.outcomes[i].outcome);
    EXPECT_EQ(summary.metrics.outcomes[i].runs,
              batch_->metrics.outcomes[i].runs);
  }
  ASSERT_EQ(summary.metrics.attribution.size(),
            batch_->metrics.attribution.size());
  for (std::size_t i = 0; i < summary.metrics.attribution.size(); ++i) {
    EXPECT_EQ(summary.metrics.attribution[i].cause,
              batch_->metrics.attribution[i].cause);
    EXPECT_EQ(summary.metrics.attribution[i].xe_failures +
                  summary.metrics.attribution[i].xk_failures,
              batch_->metrics.attribution[i].xe_failures +
                  batch_->metrics.attribution[i].xk_failures);
  }
}

TEST_F(StreamingTest, StateStaysBounded) {
  StreamingAnalyzer::StateSize peak;
  (void)Stream(200, &peak);
  // The campaign has thousands of runs; retained state must track the
  // *concurrency*, not the total volume.
  EXPECT_LT(peak.pending_runs, 600u);
  EXPECT_LT(peak.open_runs, 600u);
  EXPECT_LT(peak.buffered_tuples, 2500u);
}

TEST_F(StreamingTest, AdvanceFrequencyDoesNotChangeResults) {
  const auto coarse = Stream(5000);
  const auto fine = Stream(100);
  EXPECT_EQ(coarse.metrics.total_runs, fine.metrics.total_runs);
  EXPECT_DOUBLE_EQ(coarse.metrics.system_failure_fraction,
                   fine.metrics.system_failure_fraction);
}

TEST_F(StreamingTest, NoAdvanceStillFinalizesEverything) {
  // Never advancing the watermark degenerates to batch-at-Finalize.
  StreamingAnalyzer analyzer(*machine_, LogDiverConfig{});
  for (const std::string& line : campaign_->logs.torque) {
    analyzer.AddTorqueLine(line);
  }
  for (const std::string& line : campaign_->logs.alps) {
    analyzer.AddAlpsLine(line);
  }
  for (const std::string& line : campaign_->logs.syslog) {
    analyzer.AddSyslogLine(line);
  }
  for (const std::string& line : campaign_->logs.hwerr) {
    analyzer.AddHwerrLine(line);
  }
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.metrics.total_runs, batch_->metrics.total_runs);
  EXPECT_DOUBLE_EQ(summary.metrics.system_failure_fraction,
                   batch_->metrics.system_failure_fraction);
}

TEST_F(StreamingTest, ScoresWellAgainstGroundTruth) {
  // Classification quality through the streaming path must match the
  // batch floor set in the end-to-end test.
  StreamingAnalyzer analyzer(*machine_, LogDiverConfig{});
  const auto merged = MergeStreams(campaign_->logs, 2013);
  // Collect classifications via a parallel batch classify at the end by
  // re-running the streaming metrics only; quality is asserted via the
  // headline numbers against the batch result (scored separately).
  for (const TimedLine& item : merged) {
    switch (item.source) {
      case 0: analyzer.AddTorqueLine(item.line); break;
      case 1: analyzer.AddAlpsLine(item.line); break;
      case 2: analyzer.AddSyslogLine(item.line); break;
      case 3: analyzer.AddHwerrLine(item.line); break;
    }
  }
  const auto summary = analyzer.Finalize();
  const ScoreReport batch_score = ScoreClassification(
      batch_->runs, batch_->classified, campaign_->injection.truth);
  // System-failure counts agree with the (scored) batch pipeline.
  std::uint64_t stream_system = 0, batch_system = 0;
  for (const auto& row : summary.metrics.outcomes) {
    if (row.outcome == AppOutcome::kSystemFailure) stream_system = row.runs;
  }
  for (const auto& row : batch_->metrics.outcomes) {
    if (row.outcome == AppOutcome::kSystemFailure) batch_system = row.runs;
  }
  EXPECT_EQ(stream_system, batch_system);
  EXPECT_GT(batch_score.system_f1, 0.85);
}

TEST_F(StreamingTest, OrphanTerminationsCounted) {
  StreamingAnalyzer analyzer(*machine_, LogDiverConfig{});
  analyzer.AddAlpsLine(
      "2013-04-01T03:10:05 apsys[5]: apid=999999 exited, status=0 signal=0");
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.orphan_terminations, 1u);
  EXPECT_EQ(summary.metrics.total_runs, 0u);
}

TEST_F(StreamingTest, UnterminatedRunsSurfaceAsUnknown) {
  StreamingAnalyzer analyzer(*machine_, LogDiverConfig{});
  analyzer.AddAlpsLine(
      "2013-04-01T02:10:05 apsched[5]: placeApp apid=7 jobid=1 user=u "
      "cmd=c nodect=1 nids=0");
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.unterminated_runs, 1u);
  ASSERT_EQ(summary.metrics.outcomes.size(), 1u);
  EXPECT_EQ(summary.metrics.outcomes[0].outcome, AppOutcome::kUnknown);
}

}  // namespace
}  // namespace ld
