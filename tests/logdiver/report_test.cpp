#include "logdiver/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ld {
namespace {

TEST(RenderTable, AlignsColumnsWithHeaderRule) {
  const std::string out = RenderTable({{"name", "count"}, {"x", "12345"}});
  // Header, separator, one data row.
  std::istringstream lines(out);
  std::string header, rule, row;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row);
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(rule.find("----"), std::string::npos);
  EXPECT_NE(row.find("12345"), std::string::npos);
  // Columns align: "count" and "12345" start at the same offset.
  EXPECT_EQ(header.find("count"), row.find("12345"));
}

TEST(RenderTable, EmptyIsEmpty) { EXPECT_EQ(RenderTable({}), ""); }

TEST(Report, PrintersProduceExpectedAnchors) {
  MetricsReport report;
  report.total_runs = 1000;
  report.total_node_hours = 5000.0;
  report.system_failure_fraction = 0.0153;
  report.lost_node_hours_fraction = 0.09;
  OutcomeRow row;
  row.outcome = AppOutcome::kSystemFailure;
  row.runs = 15;
  row.runs_share = 0.015;
  row.node_hours = 450.0;
  row.node_hours_share = 0.09;
  report.outcomes.push_back(row);
  DetectionGapRow gap;
  gap.type = NodeType::kXK;
  gap.system_failures = 10;
  gap.unattributed = 4;
  gap.attributed = 6;
  gap.unattributed_share = 0.4;
  report.detection_gap.push_back(gap);

  std::ostringstream out;
  PrintHeadline(out, report);
  PrintOutcomeBreakdown(out, report);
  PrintDetectionGap(out, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("1.530%"), std::string::npos);
  EXPECT_NE(text.find("9.00%"), std::string::npos);
  EXPECT_NE(text.find("system_failure"), std::string::npos);
  EXPECT_NE(text.find("XK"), std::string::npos);
  EXPECT_NE(text.find("40.0"), std::string::npos);
}

TEST(Report, ScaleCurveRendersBandsAndCi) {
  std::vector<ScalePoint> points;
  ScalePoint p;
  p.lo = 16385;
  p.hi = 22640;
  p.runs = 320;
  p.system_failures = 52;
  p.failure_probability = WilsonInterval(52, 320);
  points.push_back(p);
  std::ostringstream out;
  PrintScaleCurve(out, points, "XE failure probability vs scale");
  const std::string text = out.str();
  EXPECT_NE(text.find("16385-22640"), std::string::npos);
  EXPECT_NE(text.find("0.16"), std::string::npos);
  EXPECT_NE(text.find("["), std::string::npos);
}

}  // namespace
}  // namespace ld
