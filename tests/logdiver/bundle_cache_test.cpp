// Equivalence and rejection tests for the parsed-bundle cache
// (src/logdiver/cache): a cache hit may only ever make an analysis
// faster, never change a byte of its report.  Every test here compares
// cached paths to the uncached text parse via FingerprintReport.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "logdiver/cache/bundle_cache.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/resume.hpp"
#include "logdiver/snapshot.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

namespace fs = std::filesystem;

struct CachedBundle {
  Machine machine = Machine::Testbed(4, 2);
  std::string bundle_dir;
  std::string cache_dir;
};

// Writes a small-but-dirty bundle (a few malformed lines appended to two
// sources so quarantine/ingest state is non-trivial) plus an empty cache
// directory, both under TempDir.
CachedBundle MakeCachedBundle(const std::string& tag, std::uint64_t seed) {
  CachedBundle cb;
  cb.bundle_dir = ::testing::TempDir() + "/ld_bc_" + tag + "_bundle";
  cb.cache_dir = ::testing::TempDir() + "/ld_bc_" + tag + "_cache";
  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
  ScenarioConfig config = SmallScenario(seed);
  config.workload.target_app_runs = 400;
  cb.machine = MakeMachine(config);
  auto bundle = WriteBundle(cb.machine, config, cb.bundle_dir);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  // Dirty the bundle: lines no parser accepts, so the cached QuarantineSink
  // state and ingest counters are exercised, not just clean-path columns.
  {
    std::ofstream syslog(cb.bundle_dir + "/syslog.log", std::ios::app);
    syslog << "not a syslog line at all\n<<<garbage>>>\n";
    std::ofstream torque(cb.bundle_dir + "/torque.log", std::ios::app);
    torque << "]]] broken accounting record\n";
  }
  fs::create_directories(cb.cache_dir);
  return cb;
}

LogDiverConfig CachedConfig(const CachedBundle& cb) {
  LogDiverConfig config;
  config.bundle_cache_dir = cb.cache_dir;
  return config;
}

// The single bundle-*.ldpbc entry in a cache directory.
std::string FindBundleEntry(const std::string& cache_dir) {
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("bundle-", 0) == 0) return entry.path().string();
  }
  return "";
}

void ExpectSameAnalysis(const AnalysisResult& a, const AnalysisResult& b) {
  EXPECT_EQ(FingerprintReport(a.metrics), FingerprintReport(b.metrics));
  EXPECT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.classified.size(), b.classified.size());
  EXPECT_EQ(a.tuples.size(), b.tuples.size());
  EXPECT_EQ(a.quarantine.size(), b.quarantine.size());
  EXPECT_EQ(a.syslog_stats.records, b.syslog_stats.records);
  EXPECT_EQ(a.syslog_stats.malformed, b.syslog_stats.malformed);
  EXPECT_EQ(a.coalesce_stats.tuples, b.coalesce_stats.tuples);
  EXPECT_EQ(a.reconstruct_stats.runs, b.reconstruct_stats.runs);
}

TEST(BundleCache, ColdWarmAndUncachedReportsAreByteIdentical) {
  const CachedBundle cb = MakeCachedBundle("coldwarm", 101);

  const LogDiver uncached(cb.machine, {});
  auto baseline = uncached.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->cache_outcome, CacheOutcome::kDisabled);
  EXPECT_GT(baseline->quarantine.size(), 0u);  // the bundle really is dirty

  const LogDiver diver(cb.machine, CachedConfig(cb));
  auto cold = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->cache_outcome, CacheOutcome::kMiss);
  EXPECT_NE(FindBundleEntry(cb.cache_dir), "");

  auto warm = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->cache_outcome, CacheOutcome::kHit);
  EXPECT_TRUE(warm->cache_note.empty()) << warm->cache_note;

  ExpectSameAnalysis(*baseline, *cold);
  ExpectSameAnalysis(*baseline, *warm);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, AnalysisConfigChangeIsARecordsHitWithFreshTail) {
  const CachedBundle cb = MakeCachedBundle("recordshit", 102);

  {
    const LogDiver diver(cb.machine, CachedConfig(cb));
    auto cold = diver.AnalyzeBundle(cb.bundle_dir);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->cache_outcome, CacheOutcome::kMiss);
  }

  // Same parse config, different analysis tail: the entry's records are
  // reusable but the memoized result is not.
  LogDiverConfig changed = CachedConfig(cb);
  changed.coalesce.tupling_window = Duration::Seconds(5);
  const LogDiver rediver(cb.machine, changed);
  auto records_hit = rediver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(records_hit.ok()) << records_hit.status().ToString();
  EXPECT_EQ(records_hit->cache_outcome, CacheOutcome::kRecordsHit);

  LogDiverConfig changed_uncached = changed;
  changed_uncached.bundle_cache_dir.clear();
  const LogDiver fresh(cb.machine, changed_uncached);
  auto baseline = fresh.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ExpectSameAnalysis(*baseline, *records_hit);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, TornEntryIsRejectedLoudlyAndRewritten) {
  const CachedBundle cb = MakeCachedBundle("torn", 103);
  const LogDiver diver(cb.machine, CachedConfig(cb));

  auto cold = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const std::string entry = FindBundleEntry(cb.cache_dir);
  ASSERT_NE(entry, "");

  // Tear the file: keep the header but only half the payload, as if a
  // writer died mid-write without the atomic rename discipline.
  const auto full_size = fs::file_size(entry);
  fs::resize_file(entry, full_size / 2);

  auto rejected = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->cache_outcome, CacheOutcome::kRejected);
  EXPECT_NE(rejected->cache_note.find("falling back"), std::string::npos)
      << rejected->cache_note;
  ExpectSameAnalysis(*cold, *rejected);

  // The rejected entry was rewritten by the fallback run.
  auto warm = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->cache_outcome, CacheOutcome::kHit);
  ExpectSameAnalysis(*cold, *warm);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, CorruptPayloadByteFailsTheChecksum) {
  const CachedBundle cb = MakeCachedBundle("crc", 104);
  const LogDiver diver(cb.machine, CachedConfig(cb));

  auto cold = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const std::string entry = FindBundleEntry(cb.cache_dir);
  ASSERT_NE(entry, "");

  // Flip one byte in the middle of the payload; size still matches, so
  // only the CRC can catch it.
  {
    std::fstream file(entry, std::ios::in | std::ios::out | std::ios::binary);
    const auto mid =
        static_cast<std::streamoff>(fs::file_size(entry) / 2);
    file.seekg(mid);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(mid);
    file.write(&byte, 1);
  }

  auto rejected = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->cache_outcome, CacheOutcome::kRejected);
  ExpectSameAnalysis(*cold, *rejected);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, ForeignEntryCopiedOverIsRejectedByFingerprint) {
  const CachedBundle cb = MakeCachedBundle("foreign_a", 105);
  const CachedBundle other = MakeCachedBundle("foreign_b", 999);

  const LogDiver diver(cb.machine, CachedConfig(cb));
  auto cold = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  const LogDiver other_diver(other.machine, CachedConfig(other));
  ASSERT_TRUE(other_diver.AnalyzeBundle(other.bundle_dir).ok());

  // Copy the other bundle's (internally valid) entry over this bundle's
  // path, as a confused operator syncing cache dirs might.  The embedded
  // fingerprint no longer matches the name-derived one.
  const std::string entry = FindBundleEntry(cb.cache_dir);
  const std::string foreign = FindBundleEntry(other.cache_dir);
  ASSERT_NE(entry, "");
  ASSERT_NE(foreign, "");
  fs::copy_file(foreign, entry, fs::copy_options::overwrite_existing);

  auto rejected = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->cache_outcome, CacheOutcome::kRejected);
  EXPECT_NE(rejected->cache_note.find("fingerprint"), std::string::npos)
      << rejected->cache_note;
  ExpectSameAnalysis(*cold, *rejected);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
  fs::remove_all(other.bundle_dir);
  fs::remove_all(other.cache_dir);
}

TEST(BundleCache, StaleFormatVersionIsRejected) {
  const CachedBundle cb = MakeCachedBundle("stale", 106);
  const LogDiver diver(cb.machine, CachedConfig(cb));

  auto cold = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const std::string entry = FindBundleEntry(cb.cache_dir);
  ASSERT_NE(entry, "");

  // The version u32 sits right after the 8-byte magic; bump it as a
  // future format would.
  {
    std::fstream file(entry, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(8);
    const std::uint8_t future = static_cast<std::uint8_t>(
        cache::kBundleCacheVersion + 1);
    file.write(reinterpret_cast<const char*>(&future), 1);
  }

  auto rejected = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->cache_outcome, CacheOutcome::kRejected);
  EXPECT_NE(rejected->cache_note.find("version"), std::string::npos)
      << rejected->cache_note;
  ExpectSameAnalysis(*cold, *rejected);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, LinesFingerprintMatchesBundlePartitionFingerprint) {
  const CachedBundle cb = MakeCachedBundle("fp", 107);

  // Read the bundle the simple way and fingerprint the in-memory lines.
  LogSet logs;
  std::vector<std::string>* dests[kNumLogSources] = {&logs.torque, &logs.alps,
                                                     &logs.syslog, &logs.hwerr};
  const char* names[kNumLogSources] = {"torque.log", "alps.log", "syslog.log",
                                       "hwerr.log"};
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    std::ifstream in(cb.bundle_dir + "/" + names[s]);
    std::string line;
    while (std::getline(in, line)) dests[s]->push_back(line);
  }
  const LogSetView views(logs);

  const StreamInputs inputs = StreamInputs::FromBundleDir(cb.bundle_dir);
  for (const std::uint32_t shards : {0u, 1u, 3u}) {
    auto from_files = BundlePartitionFingerprint(inputs, shards);
    ASSERT_TRUE(from_files.ok()) << from_files.status().ToString();
    EXPECT_EQ(cache::LinesFingerprint(views, shards), *from_files)
        << "shard_count=" << shards;
  }

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, ClaimsColumnsRoundTripAndValidate) {
  const std::string dir = ::testing::TempDir() + "/ld_bc_claims_cache";
  fs::remove_all(dir);
  const cache::BundleCache bundle_cache(dir);

  cache::ClaimedColumns claimed;
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    for (std::size_t i = 0; i < 5 + s; ++i) {
      claimed[s].push_back(
          TimePoint(1365000000 + static_cast<std::int64_t>(100 * s + i)));
    }
  }
  std::array<std::size_t, kNumLogSources> counts{};
  for (std::size_t s = 0; s < kNumLogSources; ++s) counts[s] = claimed[s].size();

  const std::uint64_t fp = 0xfeedfacecafebeefull;
  ASSERT_TRUE(bundle_cache.StoreClaims(fp, 2013, claimed).ok());

  auto loaded = bundle_cache.LoadClaims(fp, 2013, counts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    ASSERT_EQ((*loaded)[s].size(), claimed[s].size());
    for (std::size_t i = 0; i < claimed[s].size(); ++i) {
      EXPECT_EQ((*loaded)[s][i].unix_seconds(), claimed[s][i].unix_seconds());
    }
  }

  // Wrong fingerprint: plain miss, not a rejection.
  EXPECT_EQ(bundle_cache.LoadClaims(fp + 1, 2013, counts).status().code(),
            StatusCode::kNotFound);
  // Wrong base year: claimed times would differ, so the entry rejects.
  EXPECT_EQ(bundle_cache.LoadClaims(fp, 2014, counts).status().code(),
            StatusCode::kParseError);
  // Wrong line counts: the live bundle cannot be the one cached.
  counts[0] += 1;
  EXPECT_EQ(bundle_cache.LoadClaims(fp, 2013, counts).status().code(),
            StatusCode::kParseError);

  fs::remove_all(dir);
}

TEST(BundleCache, StreamingLoaderUsesClaimsCacheWithIdenticalReport) {
  const CachedBundle cb = MakeCachedBundle("stream", 108);
  const StreamInputs inputs = StreamInputs::FromBundleDir(cb.bundle_dir);
  ResumeOptions options;
  options.snapshot_interval = 0;
  options.resume = false;

  LogDiverConfig uncached;
  auto baseline =
      RunResumableAnalysis(cb.machine, uncached, inputs, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const LogDiverConfig cached = CachedConfig(cb);
  auto cold = RunResumableAnalysis(cb.machine, cached, inputs, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  bool claims_entry = false;
  for (const auto& entry : fs::directory_iterator(cb.cache_dir)) {
    if (entry.path().filename().string().rfind("claims-", 0) == 0) {
      claims_entry = true;
    }
  }
  EXPECT_TRUE(claims_entry);

  auto warm = RunResumableAnalysis(cb.machine, cached, inputs, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  const std::uint32_t want = FingerprintReport(baseline->summary.metrics);
  EXPECT_EQ(FingerprintReport(cold->summary.metrics), want);
  EXPECT_EQ(FingerprintReport(warm->summary.metrics), want);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

TEST(BundleCache, V1EntryIsRejectedAsStaleAndRewritten) {
  const CachedBundle cb = MakeCachedBundle("v1stale", 110);
  const LogDiver diver(cb.machine, CachedConfig(cb));

  auto cold = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const std::string entry = FindBundleEntry(cb.cache_dir);
  ASSERT_NE(entry, "");

  // Stamp the entry as format v1 (the pre-compaction layout).  The
  // version u32 sits after the 8-byte magic and outside the payload
  // CRC, so this is exactly what a leftover v1 entry looks like to a v2
  // build: the version gate must reject it before any column decoding.
  {
    std::fstream file(entry, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(8);
    const std::uint32_t v1 = 1;
    file.write(reinterpret_cast<const char*>(&v1), sizeof(v1));
  }

  auto rejected = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->cache_outcome, CacheOutcome::kRejected);
  EXPECT_NE(rejected->cache_note.find("version"), std::string::npos)
      << rejected->cache_note;
  ExpectSameAnalysis(*cold, *rejected);

  // The fallback text parse rewrote the entry in v2.
  auto warm = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->cache_outcome, CacheOutcome::kHit);
  ExpectSameAnalysis(*cold, *warm);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

// Small identical claims payloads so every entry has the same size and
// cap arithmetic is exact.
cache::ClaimedColumns SmallClaims() {
  cache::ClaimedColumns claimed;
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    for (std::size_t i = 0; i < 8; ++i) {
      claimed[s].push_back(
          TimePoint(1365000000 + static_cast<std::int64_t>(i)));
    }
  }
  return claimed;
}

std::array<std::size_t, kNumLogSources> ClaimCounts(
    const cache::ClaimedColumns& claimed) {
  std::array<std::size_t, kNumLogSources> counts{};
  for (std::size_t s = 0; s < kNumLogSources; ++s) {
    counts[s] = claimed[s].size();
  }
  return counts;
}

TEST(BundleCache, CapEvictsLeastRecentlyUsedNotLeastRecentlyWritten) {
  const std::string dir = ::testing::TempDir() + "/ld_bc_lru";
  fs::remove_all(dir);
  const cache::ClaimedColumns claimed = SmallClaims();
  const auto counts = ClaimCounts(claimed);

  // Three identical-size entries, written unbounded.
  const cache::BundleCache unbounded(dir);
  EXPECT_EQ(unbounded.max_bytes(), 0u);
  for (const std::uint64_t fp : {1ull, 2ull, 3ull}) {
    ASSERT_TRUE(unbounded.StoreClaims(fp, 2013, claimed).ok());
  }
  const std::uint64_t entry_size = fs::file_size(unbounded.ClaimsPath(1));
  ASSERT_GT(entry_size, 0u);

  // Stamp distinct write times (1 oldest), then *use* entry 1: a load
  // touches the mtime, so recency must follow use, not write order.
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(unbounded.ClaimsPath(1), now - std::chrono::hours(3));
  fs::last_write_time(unbounded.ClaimsPath(2), now - std::chrono::hours(2));
  fs::last_write_time(unbounded.ClaimsPath(3), now - std::chrono::hours(1));
  ASSERT_TRUE(unbounded.LoadClaims(1, 2013, counts).ok());

  // Startup trim at two entries' worth: entry 2 is now the LRU victim.
  const cache::BundleCache capped(dir, 2 * entry_size);
  EXPECT_EQ(capped.max_bytes(), 2 * entry_size);
  EXPECT_TRUE(fs::exists(capped.ClaimsPath(1)));
  EXPECT_FALSE(fs::exists(capped.ClaimsPath(2)));
  EXPECT_TRUE(fs::exists(capped.ClaimsPath(3)));

  // Survivors still load as clean hits; the evicted entry is a clean
  // miss — never a wrong or stale answer.
  EXPECT_TRUE(capped.LoadClaims(1, 2013, counts).ok());
  EXPECT_TRUE(capped.LoadClaims(3, 2013, counts).ok());
  EXPECT_EQ(capped.LoadClaims(2, 2013, counts).status().code(),
            StatusCode::kNotFound);

  // A store through the capped cache evicts again, LRU-first: entry 3
  // (stamped an hour old) loses to the just-used 1 and just-written 4.
  fs::last_write_time(capped.ClaimsPath(3), now - std::chrono::hours(1));
  ASSERT_TRUE(capped.StoreClaims(4, 2013, claimed).ok());
  EXPECT_TRUE(fs::exists(capped.ClaimsPath(1)));
  EXPECT_FALSE(fs::exists(capped.ClaimsPath(3)));
  EXPECT_TRUE(fs::exists(capped.ClaimsPath(4)));
  EXPECT_TRUE(capped.LoadClaims(4, 2013, counts).ok());

  fs::remove_all(dir);
}

TEST(BundleCache, ConcurrentCappedWritersEndUnderCapWithValidEntries) {
  const std::string dir = ::testing::TempDir() + "/ld_bc_cap_race";
  fs::remove_all(dir);
  const cache::ClaimedColumns claimed = SmallClaims();
  const auto counts = ClaimCounts(claimed);

  // Size one entry, then cap the directory at two entries' worth.
  std::uint64_t entry_size = 0;
  {
    const cache::BundleCache sizer(dir);
    ASSERT_TRUE(sizer.StoreClaims(999, 2013, claimed).ok());
    entry_size = fs::file_size(sizer.ClaimsPath(999));
    fs::remove(sizer.ClaimsPath(999));
  }
  const std::uint64_t cap = 2 * entry_size;

  // Two processes each publish four entries into the capped directory;
  // stores and evictions interleave freely.
  pid_t pids[2];
  for (int child = 0; child < 2; ++child) {
    pids[child] = fork();
    ASSERT_GE(pids[child], 0);
    if (pids[child] == 0) {
      const cache::BundleCache mine(dir, cap);
      for (std::uint64_t i = 0; i < 4; ++i) {
        const std::uint64_t fp =
            10 * static_cast<std::uint64_t>(child + 1) + i;
        if (!mine.StoreClaims(fp, 2013, claimed).ok()) _exit(1);
      }
      _exit(0);
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // The last store's eviction pass ran after the last publish, so the
  // directory ends at or under the cap, with no writer litter, and
  // every surviving entry loads clean.
  const cache::BundleCache reader(dir, cap);
  std::uint64_t total = 0;
  std::size_t survivors = 0;
  for (const auto& item : fs::directory_iterator(dir)) {
    const std::string name = item.path().filename().string();
    EXPECT_EQ(name.find(".tmp."), std::string::npos) << name;
    ASSERT_EQ(item.path().extension(), ".ldpbc") << name;
    total += fs::file_size(item.path());
    ++survivors;
    const std::uint64_t fp =
        std::stoull(name.substr(7, 16), nullptr, 16);
    auto loaded = reader.LoadClaims(fp, 2013, counts);
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
  }
  EXPECT_LE(total, cap);
  EXPECT_GE(survivors, 1u);

  fs::remove_all(dir);
}

TEST(BundleCache, TwoConcurrentColdWritersNeverTearTheEntry) {
  const CachedBundle cb = MakeCachedBundle("race", 109);

  // Two processes race the same cold analysis into one cache directory;
  // whichever rename lands last wins, and both produce valid entries.
  pid_t pids[2];
  for (pid_t& pid : pids) {
    pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const LogDiver diver(cb.machine, CachedConfig(cb));
      auto result = diver.AnalyzeBundle(cb.bundle_dir);
      _exit(result.ok() ? 0 : 1);
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // No tmp files left behind, and the surviving entry is a clean hit.
  for (const auto& entry : fs::directory_iterator(cb.cache_dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << entry.path();
  }
  const LogDiver diver(cb.machine, CachedConfig(cb));
  auto warm = diver.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->cache_outcome, CacheOutcome::kHit);

  const LogDiver uncached(cb.machine, {});
  auto baseline = uncached.AnalyzeBundle(cb.bundle_dir);
  ASSERT_TRUE(baseline.ok());
  ExpectSameAnalysis(*baseline, *warm);

  fs::remove_all(cb.bundle_dir);
  fs::remove_all(cb.cache_dir);
}

}  // namespace
}  // namespace ld
