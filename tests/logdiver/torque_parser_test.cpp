#include "logdiver/torque_parser.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

constexpr const char* kEndRecord =
    "04/01/2013 04:10:02;E;2273504.bw;user=u1234 group=users queue=normal "
    "jobname=run_e1 ctime=1364783402 qtime=1364783402 start=1364783500 "
    "end=1364790602 Exit_status=0 Resource_List.nodect=16 "
    "Resource_List.walltime=02:00:00 resources_used.walltime=01:58:22";

constexpr const char* kStartRecord =
    "04/01/2013 02:10:02;S;2273504.bw;user=u1234 group=users queue=high "
    "jobname=run_e1 ctime=1364783402 qtime=1364783402 etime=1364783402 "
    "start=1364783500 owner=u1234@bw Resource_List.nodect=16 "
    "Resource_List.walltime=02:00:00";

TEST(TorqueParser, ParsesEndRecord) {
  TorqueParser parser;
  auto rec = parser.ParseLine(kEndRecord);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  const TorqueRecord& r = **rec;
  EXPECT_EQ(r.kind, TorqueRecord::Kind::kEnd);
  EXPECT_EQ(r.jobid, 2273504u);
  EXPECT_EQ(r.user, "u1234");
  EXPECT_EQ(r.queue, "normal");
  EXPECT_EQ(r.job_name, "run_e1");
  EXPECT_EQ(r.submit.unix_seconds(), 1364783402);
  EXPECT_EQ(r.start.unix_seconds(), 1364783500);
  EXPECT_EQ(r.end.unix_seconds(), 1364790602);
  EXPECT_EQ(r.exit_status, 0);
  EXPECT_EQ(r.nodect, 16u);
  EXPECT_EQ(r.walltime_limit.seconds(), 7200);
  EXPECT_EQ(r.walltime_used.seconds(), 7102);
}

TEST(TorqueParser, ParsesStartRecord) {
  TorqueParser parser;
  auto rec = parser.ParseLine(kStartRecord);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->kind, TorqueRecord::Kind::kStart);
  EXPECT_EQ((*rec)->queue, "high");
  EXPECT_EQ((*rec)->time.unix_seconds(), 1364783500);
}

TEST(TorqueParser, NegativeExitStatus) {
  TorqueParser parser;
  const std::string line =
      "04/01/2013 04:10:02;E;7.bw;user=u1 queue=normal ctime=100 start=200 "
      "end=300 Exit_status=-11 Resource_List.nodect=4";
  auto rec = parser.ParseLine(line);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->exit_status, -11);
}

TEST(TorqueParser, SkipsOtherRecordTypes) {
  TorqueParser parser;
  auto rec = parser.ParseLine("04/01/2013 02:10:02;Q;1.bw;queue=normal");
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->has_value());
  EXPECT_EQ(parser.stats().skipped, 1u);
}

TEST(TorqueParser, CountsMalformed) {
  TorqueParser parser;
  EXPECT_FALSE(parser.ParseLine("garbage").ok());
  EXPECT_FALSE(parser.ParseLine("04/01/2013;E;x.bw;user=u").ok());  // bad jobid
  EXPECT_FALSE(
      parser.ParseLine("04/01/2013 00:00:00;E;5.bw;user=u").ok());  // no times
  EXPECT_EQ(parser.stats().malformed, 3u);
  EXPECT_EQ(parser.stats().lines, 3u);
}

TEST(TorqueParser, ParseLinesSkipsBadKeepsGood) {
  TorqueParser parser;
  const std::vector<std::string> lines = {kEndRecord, "corrupted line",
                                          kStartRecord};
  const auto records = parser.ParseLines(lines);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(parser.stats().records, 2u);
  EXPECT_EQ(parser.stats().malformed, 1u);
}

TEST(TorqueParser, JobidWithoutSuffix) {
  TorqueParser parser;
  const std::string line =
      "04/01/2013 04:10:02;E;42;user=u1 queue=q ctime=1 start=2 end=3 "
      "Exit_status=1";
  auto rec = parser.ParseLine(line);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->jobid, 42u);
}

}  // namespace
}  // namespace ld
