#include "logdiver/block_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "logdiver/logdiver.hpp"

namespace ld {
namespace {

std::vector<std::string_view> Lines(std::string_view data) {
  std::vector<std::string_view> out;
  AppendLines(data, &out);
  return out;
}

TEST(BlockReader, AppendLinesMatchesGetlineSemantics) {
  EXPECT_TRUE(Lines("").empty());
  EXPECT_EQ(Lines("a\nb\n"), (std::vector<std::string_view>{"a", "b"}));
  // Final unterminated line is kept; trailing newline adds no empty line.
  EXPECT_EQ(Lines("a\nb"), (std::vector<std::string_view>{"a", "b"}));
  // CRLF: the '\r' is stripped.
  EXPECT_EQ(Lines("a\r\nb\r\n"), (std::vector<std::string_view>{"a", "b"}));
  EXPECT_EQ(Lines("a\r\nb\r"), (std::vector<std::string_view>{"a", "b"}));
  // Empty lines survive.
  EXPECT_EQ(Lines("\n"), (std::vector<std::string_view>{""}));
  EXPECT_EQ(Lines("a\n\nb\n"), (std::vector<std::string_view>{"a", "", "b"}));
}

TEST(BlockReader, SplitBlocksConcatenationIsIdentity) {
  std::string data;
  for (int i = 0; i < 200; ++i) {
    data += "line number " + std::to_string(i) + " with some payload\n";
  }
  data += "final line without newline";
  for (std::size_t target : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                             std::size_t{1 << 20}}) {
    const auto blocks = SplitBlocks(data, target);
    std::string glued;
    for (const auto b : blocks) glued.append(b);
    EXPECT_EQ(glued, data) << "target=" << target;
    // Every block but the last ends at a line boundary, so no line can
    // span two blocks.
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
      ASSERT_FALSE(blocks[i].empty());
      EXPECT_EQ(blocks[i].back(), '\n') << "target=" << target;
    }
  }
}

TEST(BlockReader, SplitLinesParallelMatchesSequentialAtAnyBlockSize) {
  std::string data;
  for (int i = 0; i < 500; ++i) {
    data += "entry " + std::to_string(i);
    if (i % 7 == 0) data += '\r';
    data += '\n';
  }
  data += "trailing unterminated";
  const auto expected = Lines(data);
  ThreadPool pool(4);
  for (std::size_t target : {std::size_t{1}, std::size_t{13},
                             std::size_t{100}, std::size_t{1 << 20}}) {
    EXPECT_EQ(SplitLinesParallel(data, nullptr, target), expected)
        << "inline target=" << target;
    EXPECT_EQ(SplitLinesParallel(data, &pool, target), expected)
        << "pooled target=" << target;
  }
}

TEST(BlockReader, BlockBoundaryExactlyOnNewlineSplitsCleanly) {
  // "ab\n" repeated: a 3-byte block target puts every block boundary
  // exactly on a '\n'; the splitter must not emit empty blocks or merge
  // lines across the cut.
  std::string data;
  for (int i = 0; i < 50; ++i) data += "ab\n";
  const auto blocks = SplitBlocks(data, 3);
  std::string glued;
  for (const auto b : blocks) {
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(b.back(), '\n');
    glued.append(b);
  }
  EXPECT_EQ(glued, data);
  EXPECT_EQ(Lines(data).size(), 50u);
}

TEST(BlockReader, CrlfStraddlingABlockBoundaryStaysOneLine) {
  // With "abc\r\n" payloads and small block targets, some cut lands
  // between the '\r' and the '\n'.  However the blocks fall, the parallel
  // split must agree with the sequential one byte for byte.
  std::string data;
  for (int i = 0; i < 100; ++i) data += "abc\r\n";
  const auto expected = Lines(data);
  ASSERT_EQ(expected.size(), 100u);
  for (std::size_t target = 1; target <= 12; ++target) {
    EXPECT_EQ(SplitLinesParallel(data, nullptr, target), expected)
        << "target=" << target;
  }
}

TEST(BlockReader, NewlineAtEveryVectorLaneOffsetIsFound) {
  // Lines sized 1..64 place the '\n' at every offset within and beyond a
  // 16-byte SIMD lane; the split must match getline semantics for all.
  std::string data;
  for (std::size_t len = 1; len <= 64; ++len) {
    data += std::string(len, 'x');
    data += '\n';
  }
  const auto lines = Lines(data);
  ASSERT_EQ(lines.size(), 64u);
  for (std::size_t len = 1; len <= 64; ++len) {
    EXPECT_EQ(lines[len - 1].size(), len) << len;
  }
}

TEST(BlockReader, MappedFileReadsWholeFile) {
  const std::string path =
      ::testing::TempDir() + "/ld_block_reader_mapped.txt";
  const std::string content = "alpha\nbeta\r\ngamma";
  {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->data(), content);
  std::vector<std::string_view> lines;
  AppendLines(file->data(), &lines);
  EXPECT_EQ(lines,
            (std::vector<std::string_view>{"alpha", "beta", "gamma"}));
  std::filesystem::remove(path);
}

TEST(BlockReader, MappedFileEmptyAndMissing) {
  const std::string path = ::testing::TempDir() + "/ld_block_reader_empty.txt";
  { std::ofstream out(path); }
  auto empty = MappedFile::Open(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->data().empty());
  std::filesystem::remove(path);

  auto missing = MappedFile::Open("/nonexistent/ld_block_reader.txt");
  EXPECT_FALSE(missing.ok());
}

TEST(BlockReader, MappedFileSurvivesMove) {
  const std::string path = ::testing::TempDir() + "/ld_block_reader_move.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "payload\n";
  }
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok());
  const std::string_view before = file->data();
  MappedFile moved = std::move(*file);
  // The mapping address does not change across a move, so views taken
  // before the move stay valid.
  EXPECT_EQ(moved.data(), before);
  EXPECT_EQ(moved.data().data(), before.data());
  std::filesystem::remove(path);
}

TEST(BlockReader, ReadLinesMatchesLegacySemantics) {
  const std::string path = ::testing::TempDir() + "/ld_block_reader_legacy.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "one\r\ntwo\n\nfour";
  }
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, (std::vector<std::string>{"one", "two", "", "four"}));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ld
