// The analysis stage's parallel invariant: Classify and the bootstrap
// CIs must be bit-identical at any thread count, and the CSR tuple
// index must agree with a straightforward map-of-vectors reference on
// randomized tuple sets (out-of-range nodes, system incidents with
// out-of-order recovery windows, time ties included).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "analysis/bootstrap.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "faults/corruptor.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/snapshot.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

void ExpectSameClassification(const std::vector<ClassifiedRun>& a,
                              const std::vector<ClassifiedRun>& b,
                              const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].run_index, b[i].run_index) << label << " run " << i;
    EXPECT_EQ(a[i].outcome, b[i].outcome) << label << " run " << i;
    EXPECT_EQ(a[i].cause, b[i].cause) << label << " run " << i;
    EXPECT_EQ(a[i].tuple_id, b[i].tuple_id) << label << " run " << i;
  }
}

TEST(ParallelAnalysis, ClassifyBitIdenticalAcrossThreadCounts) {
  // Dirty bundle: corruption perturbs the run/tuple population, so this
  // is not a hand-picked easy case.
  ScenarioConfig config = SmallScenario(21);
  config.workload.target_app_runs = 500;
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  ASSERT_TRUE(campaign.ok());
  EmittedLogs logs = campaign->logs;
  CorruptorConfig cc;
  cc.rate = 0.05;
  cc.ops = LogCorruptor::AllOps();
  LogCorruptor(cc).CorruptBundle(logs, Rng(21).Fork("corruptor"));

  LogDiverConfig serial_config;
  serial_config.threads = 1;
  const LogDiver diver(machine, serial_config);
  auto result = diver.Analyze(LogSet{logs.torque, logs.alps, logs.syslog,
                                     logs.hwerr});
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->runs.size(), 100u);

  const Correlator correlator(machine, LogDiverConfig().correlator);
  const auto serial = correlator.Classify(result->runs, result->tuples);
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    const auto parallel =
        correlator.Classify(result->runs, result->tuples, &pool);
    ExpectSameClassification(serial, parallel,
                             threads == 2 ? "2 threads" : "4 threads");
  }
}

// Reference correlator: the pre-CSR data structure (a map of per-node
// tuple lists) driving the same decision tree.  Classify must agree
// with it on every randomized input.
std::vector<ClassifiedRun> ReferenceClassify(
    const std::vector<AppRun>& runs, const std::vector<ErrorTuple>& tuples,
    const CorrelatorConfig& config) {
  std::vector<std::uint32_t> fatal;
  for (std::uint32_t i = 0; i < tuples.size(); ++i) {
    if (tuples[i].severity == Severity::kFatal) fatal.push_back(i);
  }
  std::sort(fatal.begin(), fatal.end(),
            [&tuples](std::uint32_t a, std::uint32_t b) {
              if (tuples[a].first != tuples[b].first) {
                return tuples[a].first < tuples[b].first;
              }
              return a < b;
            });
  std::unordered_map<NodeIndex, std::vector<std::uint32_t>> per_node;
  std::vector<std::uint32_t> system;
  for (std::uint32_t idx : fatal) {
    const ErrorTuple& t = tuples[idx];
    if (t.scope == LocScope::kSystem) {
      system.push_back(idx);
    } else {
      for (NodeIndex n : t.nodes) per_node[n].push_back(idx);
    }
  }

  Duration max_before = config.attribution_before;
  for (const auto& [cat, window] : config.category_before) {
    max_before = std::max(max_before, window);
  }

  auto find_node_cause = [&](const std::vector<NodeIndex>& nodes,
                             TimePoint death) -> const ErrorTuple* {
    const ErrorTuple* best = nullptr;
    std::int64_t best_gap = 0;
    for (NodeIndex n : nodes) {
      const auto it = per_node.find(n);
      if (it == per_node.end()) continue;
      for (std::uint32_t idx : it->second) {
        const ErrorTuple& t = tuples[idx];
        if (t.first < death - max_before) continue;
        if (t.first > death + config.attribution_after) continue;
        if (t.first < death - config.BeforeWindow(t.category)) continue;
        const std::int64_t gap = std::llabs((t.first - death).seconds());
        if (best == nullptr || gap < best_gap) {
          best = &t;
          best_gap = gap;
        }
      }
    }
    return best;
  };

  auto find_system_cause = [&](TimePoint death) -> const ErrorTuple* {
    for (std::uint32_t idx : system) {
      const ErrorTuple& t = tuples[idx];
      if (t.ImpactWindow().Inflate(config.incident_slack).Contains(death)) {
        return &t;
      }
    }
    return nullptr;
  };

  std::vector<ClassifiedRun> out;
  out.reserve(runs.size());
  for (std::uint32_t i = 0; i < runs.size(); ++i) {
    const AppRun& run = runs[i];
    ClassifiedRun cls;
    cls.run_index = i;
    if (!run.has_termination) {
      cls.outcome = AppOutcome::kUnknown;
    } else if (run.exit_code == 0 && run.exit_signal == 0) {
      cls.outcome = AppOutcome::kSuccess;
    } else if (run.killed_node_failure) {
      cls.outcome = AppOutcome::kSystemFailure;
      const ErrorTuple* cause =
          run.failed_nid != kInvalidNode
              ? find_node_cause({run.failed_nid}, run.end)
              : nullptr;
      if (cause == nullptr) cause = find_node_cause(run.nodes, run.end);
      if (cause == nullptr) cause = find_system_cause(run.end);
      if (cause != nullptr) {
        cls.cause = cause->category;
        cls.tuple_id = cause->id;
      }
    } else if (run.walltime_limit.seconds() > 0 && run.exit_signal == 15 &&
               run.end - run.job_start + config.walltime_tolerance >=
                   run.walltime_limit) {
      cls.outcome = AppOutcome::kWalltime;
    } else {
      const ErrorTuple* cause = find_node_cause(run.nodes, run.end);
      if (cause == nullptr) cause = find_system_cause(run.end);
      if (cause != nullptr) {
        cls.outcome = AppOutcome::kSystemFailure;
        cls.cause = cause->category;
        cls.tuple_id = cause->id;
      } else {
        cls.outcome = AppOutcome::kUserFailure;
      }
    }
    out.push_back(cls);
  }
  return out;
}

TEST(ParallelAnalysis, ClassifyMatchesReferenceOnRandomizedTuples) {
  const Machine machine = Machine::Testbed(96, 24);
  const std::uint32_t node_count = machine.node_count();
  for (std::uint64_t seed : {101u, 102u, 103u, 104u}) {
    Rng rng(seed);
    std::vector<ErrorTuple> tuples;
    for (int i = 0; i < 400; ++i) {
      ErrorTuple t;
      t.id = static_cast<std::uint64_t>(i) + 1;
      t.category = static_cast<ErrorCategory>(rng.UniformInt(0, 8));
      t.severity = static_cast<Severity>(rng.UniformInt(0, 2));
      // Coarse time grid so first-event ties are common.
      t.first = TimePoint(rng.UniformInt(0, 200) * 50);
      t.last = t.first + Duration(rng.UniformInt(0, 120));
      if (rng.Bernoulli(0.1)) {
        t.scope = LocScope::kSystem;
        if (rng.Bernoulli(0.7)) {
          // Recovery windows deliberately NOT ordered like start times:
          // an early incident can outlast a later one.
          t.recovered = t.first + Duration(rng.UniformInt(60, 4000));
        }
      } else {
        t.scope = LocScope::kNode;
        const int fanout = static_cast<int>(rng.UniformInt(1, 3));
        for (int n = 0; n < fanout; ++n) {
          // ~5% out-of-range nodes: the index must drop them, never
          // crash or misfile them.
          t.nodes.push_back(static_cast<NodeIndex>(
              rng.Bernoulli(0.05) ? node_count + rng.UniformInt(1, 50)
                                  : rng.UniformInt(0, node_count - 1)));
        }
      }
      tuples.push_back(std::move(t));
    }
    std::vector<AppRun> runs;
    for (int i = 0; i < 600; ++i) {
      AppRun run;
      run.apid = static_cast<ApId>(i) + 1;
      const int width = static_cast<int>(rng.UniformInt(1, 4));
      for (int n = 0; n < width; ++n) {
        run.nodes.push_back(
            static_cast<NodeIndex>(rng.UniformInt(0, node_count - 1)));
      }
      run.nodect = static_cast<std::uint32_t>(run.nodes.size());
      run.start = TimePoint(rng.UniformInt(0, 5000));
      run.end = run.start + Duration(rng.UniformInt(1, 5000));
      run.job_start = run.start;
      run.has_termination = rng.Bernoulli(0.95);
      run.exit_code = static_cast<int>(rng.UniformInt(0, 2));
      run.exit_signal =
          rng.Bernoulli(0.2) ? 15 : static_cast<int>(rng.UniformInt(0, 11));
      run.walltime_limit = Duration(rng.UniformInt(0, 4000));
      if (rng.Bernoulli(0.1)) {
        run.killed_node_failure = true;
        run.failed_nid = rng.Bernoulli(0.5)
                             ? run.nodes[0]
                             : kInvalidNode;
      }
      runs.push_back(std::move(run));
    }

    const CorrelatorConfig config;
    const Correlator correlator(machine, config);
    const auto expected = ReferenceClassify(runs, tuples, config);
    const auto serial = correlator.Classify(runs, tuples);
    ExpectSameClassification(expected, serial, "vs reference (serial)");
    ThreadPool pool(4);
    const auto parallel = correlator.Classify(runs, tuples, &pool);
    ExpectSameClassification(expected, parallel, "vs reference (4 threads)");
  }
}

TEST(ParallelAnalysis, BootstrapBitIdenticalAcrossThreadCounts) {
  Rng data_rng(7);
  std::vector<double> num, den;
  for (int i = 0; i < 500; ++i) {
    den.push_back(data_rng.UniformDouble(0.1, 100.0));
    num.push_back(data_rng.Bernoulli(0.1) ? den.back() : 0.0);
  }

  Rng serial_rng(42);
  const auto serial = BootstrapRatioCi(num, den, 300, serial_rng);
  ASSERT_TRUE(serial.ok());
  const std::uint64_t next_after_serial = serial_rng.NextU64();
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    Rng parallel_rng(42);
    const auto parallel = BootstrapRatioCi(num, den, 300, parallel_rng, &pool);
    ASSERT_TRUE(parallel.ok()) << threads;
    // Bit-exact, not approximately equal.
    EXPECT_EQ(serial->point, parallel->point) << threads;
    EXPECT_EQ(serial->lo, parallel->lo) << threads;
    EXPECT_EQ(serial->hi, parallel->hi) << threads;
    // The caller-visible rng advanced identically (exactly one draw).
    EXPECT_EQ(next_after_serial, parallel_rng.NextU64()) << threads;
  }
}

TEST(ParallelAnalysis, BootstrapDegenerateDataGivesExactCi) {
  // Every pair is (1, 2), so every resample's ratio is exactly 0.5 no
  // matter which indices each replicate draws — the CI must collapse to
  // the point estimate, serial or pooled.
  const std::vector<double> num(50, 1.0), den(50, 2.0);
  Rng rng(9);
  ThreadPool pool(3);
  const auto ci = BootstrapRatioCi(num, den, 101, rng, &pool);
  ASSERT_TRUE(ci.ok());
  EXPECT_EQ(ci->point, 0.5);
  EXPECT_EQ(ci->lo, 0.5);
  EXPECT_EQ(ci->hi, 0.5);
}

TEST(ParallelAnalysis, InternedFieldsRoundTripThroughSnapshot) {
  // Snapshots store resolved strings, not symbol ids; a loaded record's
  // symbols must compare equal to freshly interned ones.
  AppRun run;
  run.apid = 5;
  run.jobid = 6;
  run.user = Intern("snapshot-user");
  run.queue = Intern("snapshot-queue");
  run.nodes = {1, 2};
  run.nodect = 2;
  ErrorTuple tuple;
  tuple.id = 11;
  tuple.category = ErrorCategory::kMemoryUE;
  tuple.location = Intern("c0-0c0s1n2");
  TorqueRecord rec;
  rec.jobid = 6;
  rec.user = Intern("snapshot-user");
  rec.queue = Intern("snapshot-queue");
  rec.job_name = Intern("snapshot-job");

  SnapshotWriter w;
  SaveAppRun(w, run);
  SaveErrorTuple(w, tuple);
  SaveTorqueRecord(w, rec);

  SnapshotReader r(w.bytes());
  AppRun run2;
  ErrorTuple tuple2;
  TorqueRecord rec2;
  LoadAppRun(r, run2);
  LoadErrorTuple(r, tuple2);
  LoadTorqueRecord(r, rec2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(run2.user, run.user);
  EXPECT_EQ(run2.queue, "snapshot-queue");
  EXPECT_EQ(tuple2.location, tuple.location);
  EXPECT_EQ(rec2.user, rec.user);
  EXPECT_EQ(rec2.job_name, "snapshot-job");
}

}  // namespace
}  // namespace ld
