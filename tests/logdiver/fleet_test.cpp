// Fleet subsystem tests: shard ownership, partial-snapshot records and
// the supervisor's happy path + validation edges.  The full worker-fault
// sweep lives in bench/fleet_campaign (ctest label `fleet`).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>

#include "logdiver/fleet/supervisor.hpp"
#include "logdiver/snapshot.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

TEST(ShardSpec, EveryIdIsOwnedByExactlyOneShard) {
  for (std::uint32_t count : {1u, 2u, 3u, 8u}) {
    for (std::uint64_t id = 0; id < 1000; ++id) {
      int owners = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        const ShardSpec spec{i, count};
        if (spec.OwnsRun(id)) ++owners;
      }
      EXPECT_EQ(owners, 1) << "id " << id << " count " << count;
    }
  }
}

TEST(ShardSpec, InactiveSpecOwnsEverything) {
  const ShardSpec spec;  // count <= 1: the serial analyzer
  EXPECT_FALSE(spec.active());
  EXPECT_TRUE(spec.OwnsRun(0));
  EXPECT_TRUE(spec.OwnsRun(12345));
  EXPECT_TRUE(spec.OwnsTuple(999));
}

class PartialFileTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) const {
    return testing::TempDir() + "partial_test_" + name;
  }
  fleet::PartialAggregates Make() const {
    fleet::PartialAggregates p;
    p.header.shard_index = 2;
    p.header.shard_count = 4;
    p.header.fingerprint = 0xABCDEF0123456789ull;
    p.runs_finalized = 77;
    p.unterminated_runs = 3;
    p.torque_stats.lines = 123;
    p.coalesce_stats.tuples = 9;
    p.ingest.quarantined = 5;
    return p;
  }
};

TEST_F(PartialFileTest, RoundTripsThroughDisk) {
  const std::string path = Path("roundtrip.ldsnap");
  const fleet::PartialAggregates p = Make();
  ASSERT_TRUE(fleet::WritePartialFile(path, p).ok());
  auto read = fleet::ReadPartialFile(path, {});
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->header.shard_index, 2u);
  EXPECT_EQ(read->header.shard_count, 4u);
  EXPECT_EQ(read->header.fingerprint, 0xABCDEF0123456789ull);
  EXPECT_EQ(read->runs_finalized, 77u);
  EXPECT_EQ(read->unterminated_runs, 3u);
  EXPECT_EQ(read->torque_stats.lines, 123u);
  EXPECT_EQ(read->coalesce_stats.tuples, 9u);
  EXPECT_EQ(read->ingest.quarantined, 5u);
  std::filesystem::remove(path);
}

TEST_F(PartialFileTest, TornPartialIsRejected) {
  const std::string path = Path("torn.ldsnap");
  ASSERT_TRUE(fleet::WritePartialFile(path, Make()).ok());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(fleet::ReadPartialFile(path, {}).ok());
  std::filesystem::remove(path);
}

TEST_F(PartialFileTest, HeaderPayloadFingerprintDisagreementIsRejected) {
  // The fingerprint lives both in the file header (checked before
  // payload parsing) and the payload header; a file whose two stamps
  // disagree was assembled from mismatched pieces.
  const std::string path = Path("mixed.ldsnap");
  fleet::PartialAggregates p = Make();
  SnapshotWriter w;
  fleet::SavePartialAggregates(w, p);
  ASSERT_TRUE(WriteSnapshotFile(path, w.bytes(), /*fingerprint=*/42).ok());
  auto read = fleet::ReadPartialFile(path, {});
  EXPECT_FALSE(read.ok());
  std::filesystem::remove(path);
}

class FleetEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config = SmallScenario(606);
    config.workload.target_app_runs = 400;
    machine_ = new Machine(MakeMachine(config));
    bundle_dir_ = new std::string(testing::TempDir() + "fleet_test_bundle_" +
                                  std::to_string(::getpid()));
    std::filesystem::remove_all(*bundle_dir_);
    auto bundle = WriteBundle(*machine_, config, *bundle_dir_);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*bundle_dir_);
    delete bundle_dir_;
    delete machine_;
    bundle_dir_ = nullptr;
    machine_ = nullptr;
  }

  std::string TempFleetDir(const std::string& name) const {
    return *bundle_dir_ + "_" + name;
  }

  static Machine* machine_;
  static std::string* bundle_dir_;
};

Machine* FleetEndToEndTest::machine_ = nullptr;
std::string* FleetEndToEndTest::bundle_dir_ = nullptr;

TEST_F(FleetEndToEndTest, TwoShardsReproduceTheSerialReport) {
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);
  const LogDiverConfig config;
  StreamingAnalyzer serial(*machine_, config);
  auto total = ReplayBundle(config, inputs, {}, serial);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  StreamingAnalyzer::Summary summary = serial.Finalize();
  summary.metrics.ingest = summary.ingest;

  fleet::FleetOptions options;
  options.shard_count = 2;
  options.partial_dir = TempFleetDir("partials");
  const fleet::ShardSupervisor supervisor(*machine_, config);
  auto result = supervisor.Run(inputs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(FingerprintReport(result->report),
            FingerprintReport(summary.metrics));
  EXPECT_EQ(result->runs_finalized, summary.runs_finalized);
  EXPECT_EQ(result->coverage.shards_merged, 2u);
  EXPECT_FALSE(result->coverage.degraded());
  ASSERT_EQ(result->shards.size(), 2u);
  EXPECT_TRUE(result->shards[0].completed);
  EXPECT_TRUE(result->shards[1].completed);
  EXPECT_EQ(result->shards[0].attempts, 1);
  std::filesystem::remove_all(options.partial_dir);
}

TEST_F(FleetEndToEndTest, CrashedShardIsRetriedAndAbsorbed) {
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);
  const LogDiverConfig config;

  fleet::FleetOptions options;
  options.shard_count = 2;
  options.partial_dir = TempFleetDir("crash_partials");
  fleet::FaultPlan plan;
  plan.fault = fleet::WorkerFault::kCrash;
  plan.after_lines = 100;
  options.faults[1] = plan;

  const fleet::ShardSupervisor supervisor(*machine_, config);
  auto result = supervisor.Run(inputs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->coverage.degraded());
  EXPECT_EQ(result->shards[1].crashes, 1);
  EXPECT_EQ(result->shards[1].attempts, 2);
  ASSERT_EQ(result->shards[1].backoff_ms.size(), 1u);
  std::filesystem::remove_all(options.partial_dir);
}

TEST_F(FleetEndToEndTest, FailFastAbortLeavesNoZombies) {
  // Shard 1 crashes on every attempt and exhausts its retries, tripping
  // the fail-fast abort while shard 0 is still parked in a hang.  The
  // abort path must SIGKILL *and reap* every running worker before Run
  // returns — an early return that skips the reap leaks zombies that
  // outlive the supervisor.
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);

  fleet::FleetOptions options;
  options.shard_count = 2;
  options.partial_dir = TempFleetDir("zombie_partials");
  options.max_attempts = 2;
  options.policy = DegradationPolicy::kFailFast;
  options.shard_timeout_ms = 60000;  // the hang outlives the whole test
  fleet::FaultPlan hang;
  hang.fault = fleet::WorkerFault::kHang;
  hang.after_lines = 50;
  hang.persistent = true;
  options.faults[0] = hang;
  fleet::FaultPlan crash;
  crash.fault = fleet::WorkerFault::kCrash;
  crash.after_lines = 50;
  crash.persistent = true;
  options.faults[1] = crash;

  const fleet::ShardSupervisor supervisor(*machine_, LogDiverConfig{});
  auto result = supervisor.Run(inputs, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  // No child of this process may remain, running or zombie.
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  std::filesystem::remove_all(options.partial_dir);
}

TEST_F(FleetEndToEndTest, InvalidOptionsAreRejectedUpFront) {
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);
  const fleet::ShardSupervisor supervisor(*machine_, LogDiverConfig{});

  fleet::FleetOptions no_dir;
  no_dir.partial_dir.clear();
  EXPECT_EQ(supervisor.Run(inputs, no_dir).status().code(),
            StatusCode::kInvalidArgument);

  fleet::FleetOptions zero_shards;
  zero_shards.shard_count = 0;
  zero_shards.partial_dir = TempFleetDir("zero");
  EXPECT_EQ(supervisor.Run(inputs, zero_shards).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ld
