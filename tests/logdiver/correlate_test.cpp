#include "logdiver/correlate.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

class CorrelateTest : public ::testing::Test {
 protected:
  CorrelateTest() : machine_(Machine::Testbed(96, 24)) {}

  AppRun Run(ApId apid, std::vector<NodeIndex> nodes, std::int64_t start,
             std::int64_t end, int code, int signal) {
    AppRun run;
    run.apid = apid;
    run.jobid = apid;  // 1:1 for these tests
    run.nodes = std::move(nodes);
    run.nodect = static_cast<std::uint32_t>(run.nodes.size());
    run.start = TimePoint(start);
    run.end = TimePoint(end);
    run.has_termination = true;
    run.exit_code = code;
    run.exit_signal = signal;
    run.job_start = TimePoint(start);
    run.walltime_limit = Duration::Hours(10);
    return run;
  }

  ErrorTuple Tuple(std::uint64_t id, ErrorCategory cat, Severity sev,
                   std::vector<NodeIndex> nodes, std::int64_t t) {
    ErrorTuple tuple;
    tuple.id = id;
    tuple.category = cat;
    tuple.severity = sev;
    tuple.scope = LocScope::kNode;
    tuple.nodes = std::move(nodes);
    tuple.first = TimePoint(t);
    tuple.last = TimePoint(t);
    tuple.count = 1;
    return tuple;
  }

  std::vector<ClassifiedRun> Classify(const std::vector<AppRun>& runs,
                                      const std::vector<ErrorTuple>& tuples) {
    Correlator correlator(machine_, CorrelatorConfig{});
    return correlator.Classify(runs, tuples);
  }

  Machine machine_;
};

TEST_F(CorrelateTest, CleanExitIsSuccess) {
  const auto out = Classify({Run(1, {0}, 0, 100, 0, 0)}, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].outcome, AppOutcome::kSuccess);
}

TEST_F(CorrelateTest, NoTerminationIsUnknown) {
  AppRun run = Run(1, {0}, 0, 100, 0, 0);
  run.has_termination = false;
  const auto out = Classify({run}, {});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUnknown);
}

TEST_F(CorrelateTest, AbnormalExitWithoutEvidenceIsUserFailure) {
  const auto out = Classify({Run(1, {0}, 0, 100, 139, 11)}, {});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, FatalTupleOnNodeAtDeathAttributes) {
  const auto out = Classify(
      {Run(1, {0, 1}, 0, 1000, 1, 0)},
      {Tuple(7, ErrorCategory::kMemoryUE, Severity::kFatal, {1}, 990)});
  EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(out[0].cause, ErrorCategory::kMemoryUE);
  EXPECT_EQ(out[0].tuple_id, 7u);
}

TEST_F(CorrelateTest, FatalTupleOnOtherNodeDoesNotAttribute) {
  const auto out = Classify(
      {Run(1, {0, 1}, 0, 1000, 1, 0)},
      {Tuple(7, ErrorCategory::kMemoryUE, Severity::kFatal, {50}, 990)});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, CorrectedTupleNeverAttributes) {
  const auto out = Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {Tuple(7, ErrorCategory::kMachineCheck, Severity::kCorrected, {0}, 995)});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, TupleOutsideTimeWindowDoesNotAttribute) {
  // Death at t=1000; error 10 minutes earlier is outside the 300s window.
  const auto out = Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {Tuple(7, ErrorCategory::kMemoryUE, Severity::kFatal, {0}, 400)});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, ClosestTupleWins) {
  const auto out = Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {Tuple(1, ErrorCategory::kMemoryUE, Severity::kFatal, {0}, 800),
       Tuple(2, ErrorCategory::kKernelSoftware, Severity::kFatal, {0}, 995)});
  EXPECT_EQ(out[0].cause, ErrorCategory::kKernelSoftware);
  EXPECT_EQ(out[0].tuple_id, 2u);
}

TEST_F(CorrelateTest, PerCategoryWindowOverridesDefault) {
  // Memory errors get a 30-minute window; a UE 10 minutes before death
  // attributes, while a kernel panic the same distance away does not.
  CorrelatorConfig config;
  config.category_before = {{ErrorCategory::kMemoryUE, Duration::Minutes(30)}};
  Correlator correlator(machine_, config);

  const auto ue = correlator.Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {Tuple(1, ErrorCategory::kMemoryUE, Severity::kFatal, {0}, 400)});
  EXPECT_EQ(ue[0].outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(ue[0].cause, ErrorCategory::kMemoryUE);

  const auto panic = correlator.Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {Tuple(1, ErrorCategory::kKernelSoftware, Severity::kFatal, {0}, 400)});
  EXPECT_EQ(panic[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, NarrowedCategoryWindowExcludes) {
  // Heartbeat faults kill within seconds; an old heartbeat tuple inside
  // the default window must not be blamed when narrowed.
  CorrelatorConfig config;
  config.category_before = {
      {ErrorCategory::kNodeHeartbeat, Duration::Seconds(30)}};
  Correlator correlator(machine_, config);
  const auto out = correlator.Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {Tuple(1, ErrorCategory::kNodeHeartbeat, Severity::kFatal, {0}, 800)});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, NodeFailureKillIsSystemEvenWithoutEvidence) {
  AppRun run = Run(1, {0}, 0, 1000, 137, 9);
  run.killed_node_failure = true;
  run.failed_nid = 0;
  const auto out = Classify({run}, {});
  EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(out[0].cause, ErrorCategory::kUnknown);  // the detection gap
  EXPECT_EQ(out[0].tuple_id, 0u);
}

TEST_F(CorrelateTest, NodeFailureKillPrefersFailedNid) {
  AppRun run = Run(1, {0, 1}, 0, 1000, 137, 9);
  run.killed_node_failure = true;
  run.failed_nid = 1;
  const auto out = Classify(
      {run},
      {Tuple(1, ErrorCategory::kMachineCheck, Severity::kFatal, {0}, 999),
       Tuple(2, ErrorCategory::kNodeHeartbeat, Severity::kFatal, {1}, 985)});
  EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(out[0].cause, ErrorCategory::kNodeHeartbeat);
}

TEST_F(CorrelateTest, WalltimeKillDetected) {
  AppRun run = Run(1, {0}, 0, 36000, 143, 15);
  run.walltime_limit = Duration(36000);
  const auto out = Classify({run}, {});
  EXPECT_EQ(out[0].outcome, AppOutcome::kWalltime);
}

TEST_F(CorrelateTest, SigtermWellBeforeLimitIsNotWalltime) {
  AppRun run = Run(1, {0}, 0, 5000, 143, 15);
  run.walltime_limit = Duration(36000);
  const auto out = Classify({run}, {});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, SystemIncidentCoversDeath) {
  ErrorTuple lustre;
  lustre.id = 3;
  lustre.category = ErrorCategory::kLustre;
  lustre.severity = Severity::kFatal;
  lustre.scope = LocScope::kSystem;
  lustre.first = TimePoint(900);
  lustre.last = TimePoint(900);
  lustre.recovered = TimePoint(1800);
  const auto out = Classify({Run(1, {0}, 0, 1000, 5, 0)}, {lustre});
  EXPECT_EQ(out[0].outcome, AppOutcome::kSystemFailure);
  EXPECT_EQ(out[0].cause, ErrorCategory::kLustre);
}

TEST_F(CorrelateTest, SystemIncidentBeforeRunDoesNotAttribute) {
  ErrorTuple lustre;
  lustre.id = 3;
  lustre.category = ErrorCategory::kLustre;
  lustre.severity = Severity::kFatal;
  lustre.scope = LocScope::kSystem;
  lustre.first = TimePoint(100);
  lustre.last = TimePoint(100);
  lustre.recovered = TimePoint(200);
  // Run dies at 5000, far outside the incident + slack.
  const auto out = Classify({Run(1, {0}, 4000, 5000, 5, 0)}, {lustre});
  EXPECT_EQ(out[0].outcome, AppOutcome::kUserFailure);
}

TEST_F(CorrelateTest, NodeScopeBeatsSystemScope) {
  ErrorTuple lustre;
  lustre.id = 3;
  lustre.category = ErrorCategory::kLustre;
  lustre.severity = Severity::kFatal;
  lustre.scope = LocScope::kSystem;
  lustre.first = TimePoint(900);
  lustre.last = TimePoint(900);
  lustre.recovered = TimePoint(1800);
  const auto out = Classify(
      {Run(1, {0}, 0, 1000, 1, 0)},
      {lustre,
       Tuple(9, ErrorCategory::kMemoryUE, Severity::kFatal, {0}, 995)});
  EXPECT_EQ(out[0].cause, ErrorCategory::kMemoryUE);
}

TEST_F(CorrelateTest, ManyRunsClassifiedIndependently) {
  std::vector<AppRun> runs;
  for (int i = 0; i < 50; ++i) {
    runs.push_back(Run(static_cast<ApId>(i + 1),
                       {static_cast<NodeIndex>(i % 96)}, i * 100,
                       i * 100 + 90, i % 2 == 0 ? 0 : 1, 0));
  }
  const auto out = Classify(runs, {});
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i].outcome, i % 2 == 0 ? AppOutcome::kSuccess
                                         : AppOutcome::kUserFailure);
    EXPECT_EQ(out[i].run_index, static_cast<std::uint32_t>(i));
  }
}

}  // namespace
}  // namespace ld
