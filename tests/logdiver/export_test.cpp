#include "logdiver/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/csv.hpp"

namespace ld {
namespace {

MetricsReport SampleReport() {
  MetricsReport report;
  report.total_runs = 100;
  report.total_node_hours = 5000.0;
  report.system_failure_fraction = 0.0153;
  report.lost_node_hours_fraction = 0.09;
  OutcomeRow outcome;
  outcome.outcome = AppOutcome::kSystemFailure;
  outcome.runs = 2;
  outcome.runs_share = 0.02;
  report.outcomes.push_back(outcome);
  ScalePoint p;
  p.lo = 16385;
  p.hi = 22640;
  p.runs = 300;
  p.system_failures = 49;
  p.failure_probability = WilsonInterval(49, 300);
  report.xe_scale.push_back(p);
  MonthlyPoint m;
  m.year = 2013;
  m.month = 4;
  m.runs = 50;
  report.monthly.push_back(m);
  QueueWaitRow w;
  w.lo = 1;
  w.hi = 1;
  w.jobs = 10;
  w.mean_wait_hours = 0.5;
  report.queue_waits.push_back(w);
  report.ingest.quarantined = 3;
  report.ingest.duplicate_placements = 2;
  return report;
}

TEST(ExportCsv, WritesAllSeries) {
  const std::string dir = ::testing::TempDir() + "/ld_export_test";
  std::filesystem::remove_all(dir);
  auto files = ExportMetricsCsv(SampleReport(), dir);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(*files, 10);
  for (const char* name :
       {"headline.csv", "outcomes.csv", "categories.csv", "attribution.csv",
        "xe_scale.csv", "xk_scale.csv", "monthly.csv", "detection_gap.csv",
        "queue_waits.csv", "ingest.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(ExportCsv, FilesParseBackWithExpectedValues) {
  const std::string dir = ::testing::TempDir() + "/ld_export_test2";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(ExportMetricsCsv(SampleReport(), dir).ok());

  auto headline = CsvReader::ReadFile(dir + "/headline.csv", true);
  ASSERT_TRUE(headline.ok());
  bool found = false;
  for (const auto& row : headline->rows) {
    if (row[0] == "system_failure_fraction") {
      EXPECT_EQ(row[1].substr(0, 6), "0.0153");
      found = true;
    }
  }
  EXPECT_TRUE(found);

  auto scale = CsvReader::ReadFile(dir + "/xe_scale.csv", true);
  ASSERT_TRUE(scale.ok());
  ASSERT_EQ(scale->rows.size(), 1u);
  EXPECT_EQ(scale->rows[0][0], "16385");
  EXPECT_EQ(scale->rows[0][3], "49");

  auto waits = CsvReader::ReadFile(dir + "/queue_waits.csv", true);
  ASSERT_TRUE(waits.ok());
  ASSERT_EQ(waits->rows.size(), 1u);
  EXPECT_EQ(waits->rows[0][2], "10");

  auto ingest = CsvReader::ReadFile(dir + "/ingest.csv", true);
  ASSERT_TRUE(ingest.ok());
  bool saw_quarantined = false;
  for (const auto& row : ingest->rows) {
    if (row[0] == "quarantined") {
      EXPECT_EQ(row[1], "3");
      saw_quarantined = true;
    }
    if (row[0] == "duplicate_placements") EXPECT_EQ(row[1], "2");
  }
  EXPECT_TRUE(saw_quarantined);
  std::filesystem::remove_all(dir);
}

TEST(ExportCsv, FailsOnUnwritableDir) {
  EXPECT_FALSE(ExportMetricsCsv(SampleReport(), "/proc/definitely/not").ok());
}

}  // namespace
}  // namespace ld
