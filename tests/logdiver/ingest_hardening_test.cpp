// Hardened-ingestion behavior: quarantine capture, error budgets with
// both degradation policies, record dedup, watermark-regression
// clamping, and the bounded-growth caps on streaming state.
#include <gtest/gtest.h>

#include <string>

#include "common/time.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/streaming.hpp"
#include "topology/machine.hpp"

namespace ld {
namespace {

std::string PlaceLine(ApId apid, std::int64_t t) {
  return TimePoint(t).ToIso() + " apsched[5]: placeApp apid=" +
         std::to_string(apid) + " jobid=1 user=u cmd=c nodect=1 nids=0";
}

std::string ExitLine(ApId apid, std::int64_t t) {
  return TimePoint(t).ToIso() + " apsys[5]: apid=" + std::to_string(apid) +
         " exited, status=0 signal=0";
}

std::string TorqueLine(char type, std::int64_t end) {
  std::string line = "04/03/2013 12:00:00;";
  line += type;
  line += ";100.bw;user=u queue=q ctime=1000 qtime=1000 start=2000";
  if (type == 'E') {
    line += " end=" + std::to_string(end) + " Exit_status=0";
  }
  return line;
}

class IngestHardeningTest : public ::testing::Test {
 protected:
  IngestHardeningTest() : machine_(Machine::Testbed(96, 24)) {}
  Machine machine_;
};

TEST_F(IngestHardeningTest, WatermarkRegressionClampedAndCounted) {
  StreamingAnalyzer analyzer(machine_, LogDiverConfig{});
  analyzer.Advance(TimePoint(10000));
  analyzer.Advance(TimePoint(5000));  // broken promise: clamped, counted
  analyzer.Advance(TimePoint(20000));
  analyzer.Advance(TimePoint(19999));
  EXPECT_EQ(analyzer.ingest_stats().watermark_regressions, 2u);
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.ingest.watermark_regressions, 2u);
  EXPECT_TRUE(summary.ingest_status.ok());
}

TEST_F(IngestHardeningTest, ReplayedPlacementsAndTerminationsDeduped) {
  StreamingAnalyzer analyzer(machine_, LogDiverConfig{});
  analyzer.AddAlpsLine(PlaceLine(7, 1364800000));
  analyzer.AddAlpsLine(PlaceLine(7, 1364800000));  // replayed placement
  analyzer.AddAlpsLine(ExitLine(7, 1364801000));
  analyzer.AddAlpsLine(ExitLine(7, 1364801000));   // replayed termination
  analyzer.AddAlpsLine(PlaceLine(7, 1364800000));  // replay after the end
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.ingest.duplicate_placements, 2u);
  EXPECT_EQ(summary.ingest.duplicate_terminations, 1u);
  EXPECT_EQ(summary.orphan_terminations, 0u);
  EXPECT_EQ(summary.metrics.total_runs, 1u);
}

TEST_F(IngestHardeningTest, ReplayedTorqueRecordsDisclosedNotApplied) {
  StreamingAnalyzer analyzer(machine_, LogDiverConfig{});
  analyzer.AddTorqueLine(TorqueLine('S', 0));
  EXPECT_EQ(analyzer.ingest_stats().duplicate_job_records, 0u);
  analyzer.AddTorqueLine(TorqueLine('E', 3000));  // E over S: authoritative
  EXPECT_EQ(analyzer.ingest_stats().duplicate_job_records, 0u);
  analyzer.AddTorqueLine(TorqueLine('E', 3000));  // replayed E
  analyzer.AddTorqueLine(TorqueLine('S', 0));     // replayed S
  EXPECT_EQ(analyzer.ingest_stats().duplicate_job_records, 2u);
}

TEST_F(IngestHardeningTest, QuarantineCapturesRejectsWithReasons) {
  LogDiverConfig config;
  config.ingest.quarantine.max_line_bytes = 16;
  StreamingAnalyzer analyzer(machine_, config);
  analyzer.AddTorqueLine("garbage");
  analyzer.AddAlpsLine("garbage");
  analyzer.AddSyslogLine("definitely not a syslog line at all");
  analyzer.AddHwerrLine("garbage with quite a long tail to truncate");
  const auto& sink = analyzer.quarantine();
  EXPECT_EQ(sink.total(), 4u);
  ASSERT_EQ(sink.entries().size(), 4u);
  EXPECT_EQ(sink.entries()[0].source, LogSource::kTorque);
  EXPECT_EQ(sink.entries()[0].line_number, 1u);
  EXPECT_FALSE(sink.entries()[0].reason.empty());
  EXPECT_LE(sink.entries()[3].line.size(), 16u);  // capped capture
  EXPECT_EQ(sink.count(LogSource::kSyslog), 1u);
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.ingest.quarantined, 4u);
  EXPECT_FALSE(summary.ingest.clean());
}

TEST_F(IngestHardeningTest, QuarantineOverflowCountedNotStored) {
  LogDiverConfig config;
  config.ingest.quarantine.max_entries = 2;
  StreamingAnalyzer analyzer(machine_, config);
  for (int i = 0; i < 5; ++i) analyzer.AddTorqueLine("garbage");
  EXPECT_EQ(analyzer.quarantine().entries().size(), 2u);
  EXPECT_EQ(analyzer.quarantine().total(), 5u);
  EXPECT_EQ(analyzer.quarantine().overflow(), 3u);
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.ingest.quarantined, 5u);
  EXPECT_EQ(summary.ingest.quarantine_overflow, 3u);
}

TEST_F(IngestHardeningTest, FailFastClosesDirtySource) {
  LogDiverConfig config;
  config.ingest.policy = DegradationPolicy::kFailFast;
  config.ingest.budget.min_malformed = 2;
  config.ingest.budget.max_malformed_fraction = 0.0;
  StreamingAnalyzer analyzer(machine_, config);
  for (int i = 0; i < 3; ++i) {
    analyzer.AddSyslogLine("definitely not a syslog line at all");
  }
  EXPECT_FALSE(analyzer.ingest_status().ok());
  // The source is closed: even a well-formed line is discarded (counted).
  analyzer.AddSyslogLine(
      "Apr  3 12:00:00 c0-0c0s1n1 Machine check events logged, corrected");
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.ingest.budget_exhausted_sources, 1u);
  EXPECT_EQ(summary.ingest.lines_dropped_after_budget, 1u);
  EXPECT_FALSE(summary.ingest_status.ok());
  EXPECT_NE(summary.ingest_status.ToString().find("error budget"),
            std::string::npos);
  // Other sources keep flowing.
  StreamingAnalyzer fresh(machine_, config);
  for (int i = 0; i < 3; ++i) fresh.AddSyslogLine("garbage line here x");
  fresh.AddAlpsLine(PlaceLine(9, 1364800000));
  fresh.AddAlpsLine(ExitLine(9, 1364801000));
  EXPECT_EQ(fresh.Finalize().metrics.total_runs, 1u);
}

TEST_F(IngestHardeningTest, QuarantineAndContinueKeepsAnalyzing) {
  LogDiverConfig config;
  config.ingest.policy = DegradationPolicy::kQuarantineAndContinue;
  config.ingest.budget.min_malformed = 2;
  config.ingest.budget.max_malformed_fraction = 0.0;
  StreamingAnalyzer analyzer(machine_, config);
  for (int i = 0; i < 3; ++i) {
    analyzer.AddAlpsLine("definitely not an alps line");
  }
  analyzer.AddAlpsLine(PlaceLine(9, 1364800000));
  analyzer.AddAlpsLine(ExitLine(9, 1364801000));
  const auto summary = analyzer.Finalize();
  EXPECT_TRUE(summary.ingest_status.ok());
  EXPECT_EQ(summary.ingest.budget_exhausted_sources, 1u);
  EXPECT_EQ(summary.ingest.lines_dropped_after_budget, 0u);
  EXPECT_EQ(summary.metrics.total_runs, 1u);  // the clean tail still counts
}

TEST_F(IngestHardeningTest, PendingRunsEvictedAtCap) {
  LogDiverConfig config;
  config.ingest.max_pending_runs = 4;
  StreamingAnalyzer analyzer(machine_, config);
  for (int i = 0; i < 10; ++i) {
    const std::int64_t t = 1364800000 + i * 60;
    analyzer.AddAlpsLine(PlaceLine(100 + i, t));
    analyzer.AddAlpsLine(ExitLine(100 + i, t + 30));
  }
  const auto summary = analyzer.Finalize();
  // Force-classified early, but never lost: all ten runs are reported.
  EXPECT_EQ(summary.ingest.evicted_pending_runs, 6u);
  EXPECT_EQ(summary.metrics.total_runs, 10u);
}

TEST_F(IngestHardeningTest, TupleBufferEvictedAtCap) {
  LogDiverConfig config;
  config.ingest.max_buffered_tuples = 4;
  StreamingAnalyzer analyzer(machine_, config);
  const std::string cname =
      machine_.node(machine_.nodes_of_type(NodeType::kXE).front())
          .cname.ToString();
  for (int i = 0; i < 10; ++i) {
    const std::int64_t t = 1364800000 + i * 3600;  // 1 h apart: 10 tuples
    analyzer.AddHwerrLine(std::to_string(t) + "|machine_check|" + cname +
                          "|fatal|bank=4");
  }
  analyzer.Advance(TimePoint(1364800000 + 20 * 3600));
  const auto summary = analyzer.Finalize();
  EXPECT_EQ(summary.ingest.evicted_tuples, 6u);
  // The evicted tuples were already folded into the aggregates.
  EXPECT_EQ(summary.coalesce_stats.tuples, 10u);
}

TEST_F(IngestHardeningTest, BatchFailFastAborts) {
  LogDiverConfig config;
  config.ingest.policy = DegradationPolicy::kFailFast;
  config.ingest.budget.min_malformed = 2;
  config.ingest.budget.max_malformed_fraction = 0.0;
  const LogDiver diver(machine_, config);
  LogSet logs;
  for (int i = 0; i < 4; ++i) logs.syslog.push_back("garbage line here x");
  const auto result = diver.Analyze(logs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("error budget"),
            std::string::npos);
}

TEST_F(IngestHardeningTest, BatchQuarantineContinues) {
  LogDiverConfig config;
  config.ingest.budget.min_malformed = 2;
  config.ingest.budget.max_malformed_fraction = 0.0;
  const LogDiver diver(machine_, config);
  LogSet logs;
  for (int i = 0; i < 4; ++i) logs.syslog.push_back("garbage line here x");
  logs.alps.push_back(PlaceLine(9, 1364800000));
  logs.alps.push_back(ExitLine(9, 1364801000));
  const auto result = diver.Analyze(logs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ingest.quarantined, 4u);
  EXPECT_EQ(result->ingest.budget_exhausted_sources, 1u);
  ASSERT_EQ(result->quarantine.size(), 4u);
  EXPECT_EQ(result->quarantine[0].source, LogSource::kSyslog);
  EXPECT_EQ(result->metrics.total_runs, 1u);
  EXPECT_EQ(result->metrics.ingest.quarantined, 4u);
}

TEST_F(IngestHardeningTest, CleanStreamLeavesCountersZero) {
  StreamingAnalyzer analyzer(machine_, LogDiverConfig{});
  analyzer.AddTorqueLine(TorqueLine('S', 0));
  analyzer.AddAlpsLine(PlaceLine(9, 1364800000));
  analyzer.AddAlpsLine(ExitLine(9, 1364801000));
  analyzer.Advance(TimePoint(1364802000));
  const auto summary = analyzer.Finalize();
  EXPECT_TRUE(summary.ingest.clean());
  EXPECT_TRUE(summary.ingest_status.ok());
  EXPECT_EQ(summary.metrics.total_runs, 1u);
}

}  // namespace
}  // namespace ld
