#include "logdiver/alps_parser.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(ParseNidRanges, SinglesAndRanges) {
  auto nids = ParseNidRanges("3-5,9,12-13");
  ASSERT_TRUE(nids.ok());
  EXPECT_EQ(*nids, (std::vector<NodeIndex>{3, 4, 5, 9, 12, 13}));
}

TEST(ParseNidRanges, SingleValue) {
  auto nids = ParseNidRanges("7");
  ASSERT_TRUE(nids.ok());
  EXPECT_EQ(nids->size(), 1u);
}

TEST(ParseNidRanges, Rejections) {
  EXPECT_FALSE(ParseNidRanges("").ok());
  EXPECT_FALSE(ParseNidRanges("5-3").ok());        // inverted
  EXPECT_FALSE(ParseNidRanges("a-b").ok());
  EXPECT_FALSE(ParseNidRanges("1,,3").ok());
  EXPECT_FALSE(ParseNidRanges("0-9999999999").ok());  // absurd span
}

TEST(AlpsParser, ParsesPlacement) {
  AlpsParser parser;
  auto rec = parser.ParseLine(
      "2013-04-01T02:10:05 apsched[5]: placeApp apid=100001 jobid=2273504 "
      "user=u1234 cmd=run_e1.exe nodect=4 nids=100-103");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  const AlpsRecord& r = **rec;
  EXPECT_EQ(r.kind, AlpsRecord::Kind::kPlace);
  EXPECT_EQ(r.apid, 100001u);
  EXPECT_EQ(r.jobid, 2273504u);
  EXPECT_EQ(r.user, "u1234");
  EXPECT_EQ(r.command, "run_e1.exe");
  EXPECT_EQ(r.nodect, 4u);
  EXPECT_EQ(r.nids, (std::vector<NodeIndex>{100, 101, 102, 103}));
  EXPECT_EQ(r.time.ToIso(), "2013-04-01T02:10:05");
}

TEST(AlpsParser, ParsesExit) {
  AlpsParser parser;
  auto rec = parser.ParseLine(
      "2013-04-01T03:10:05 apsys[5]: apid=100001 exited, status=139 signal=11");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->kind, AlpsRecord::Kind::kExit);
  EXPECT_EQ((*rec)->exit_code, 139);
  EXPECT_EQ((*rec)->exit_signal, 11);
}

TEST(AlpsParser, ParsesNodeFailureKill) {
  AlpsParser parser;
  auto rec = parser.ParseLine(
      "2013-04-01T03:10:05 apsys[5]: apid=100001 killed, "
      "reason=node_failure nid=105");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->kind, AlpsRecord::Kind::kKill);
  EXPECT_EQ((*rec)->kill_reason, "node_failure");
  EXPECT_EQ((*rec)->failed_nid, 105u);
}

TEST(AlpsParser, SkipsUnknownDaemonChatter) {
  AlpsParser parser;
  auto rec = parser.ParseLine(
      "2013-04-01T03:10:05 apinit[9]: heartbeat ok nid=12");
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->has_value());
  EXPECT_EQ(parser.stats().skipped, 1u);
}

TEST(AlpsParser, MalformedLines) {
  AlpsParser parser;
  EXPECT_FALSE(parser.ParseLine("").ok());
  EXPECT_FALSE(parser.ParseLine("not a timestamp apsys[5]: apid=1").ok());
  EXPECT_FALSE(
      parser.ParseLine("2013-04-01T03:10:05 apsys[5] no separator").ok());
  EXPECT_FALSE(parser
                   .ParseLine("2013-04-01T03:10:05 apsched[5]: placeApp "
                              "jobid=1 nids=1-2")
                   .ok());  // missing apid
  EXPECT_EQ(parser.stats().malformed, 4u);
}

TEST(AlpsParser, ParseLinesRoundtrip) {
  AlpsParser parser;
  const std::vector<std::string> lines = {
      "2013-04-01T02:10:05 apsched[5]: placeApp apid=1 jobid=2 user=u "
      "cmd=c nodect=1 nids=0",
      "junk",
      "2013-04-01T02:20:05 apsys[5]: apid=1 exited, status=0 signal=0",
  };
  const auto records = parser.ParseLines(lines);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(parser.stats().malformed, 1u);
}

}  // namespace
}  // namespace ld
