#include "logdiver/syslog_parser.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

TEST(SyslogTime, ParsesClassicStamp) {
  auto t = SyslogParser::ParseSyslogTime("Apr  1 02:10:02", 2013);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToIso(), "2013-04-01T02:10:02");
}

TEST(SyslogTime, RejectsBadStamp) {
  EXPECT_FALSE(SyslogParser::ParseSyslogTime("Foo  1 02:10:02", 2013).ok());
  EXPECT_FALSE(SyslogParser::ParseSyslogTime("Apr", 2013).ok());
}

TEST(SyslogParser, MachineCheckFatalOnNode) {
  SyslogParser parser(2013);
  auto rec = parser.ParseLine(
      "Apr  1 02:10:02 c1-2c0s3n1 kernel: [Hardware Error]: Machine check: "
      "Processor context corrupt");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->category, ErrorCategory::kMachineCheck);
  EXPECT_EQ((*rec)->severity, Severity::kFatal);
  EXPECT_EQ((*rec)->scope, LocScope::kNode);
  EXPECT_EQ((*rec)->location, "c1-2c0s3n1");
}

TEST(SyslogParser, CorrectedMachineCheck) {
  SyslogParser parser(2013);
  auto rec = parser.ParseLine(
      "Apr  1 02:10:02 c1-2c0s3n1 kernel: [Hardware Error]: Machine check "
      "events logged (corrected)");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->severity, Severity::kCorrected);
}

TEST(SyslogParser, GpuCategories) {
  SyslogParser parser(2013);
  auto dbe = parser.ParseLine(
      "Apr  1 02:10:02 c20-0c1s4n2 kernel: NVRM: Xid (0000:02:00): 48, "
      "Double Bit ECC Error");
  ASSERT_TRUE(dbe.ok() && dbe->has_value());
  EXPECT_EQ((*dbe)->category, ErrorCategory::kGpuDbe);
  EXPECT_EQ((*dbe)->severity, Severity::kFatal);

  auto xid = parser.ParseLine(
      "Apr  1 02:11:02 c20-0c1s4n2 kernel: NVRM: Xid (0000:02:00): 13, "
      "Graphics SM exception");
  ASSERT_TRUE(xid.ok() && xid->has_value());
  EXPECT_EQ((*xid)->category, ErrorCategory::kGpuXid);
  EXPECT_EQ((*xid)->severity, Severity::kFatal);

  auto retire = parser.ParseLine(
      "Apr  1 02:12:02 c20-0c1s4n2 kernel: NVRM: Xid (0000:02:00): 63, "
      "ECC page retirement");
  ASSERT_TRUE(retire.ok() && retire->has_value());
  EXPECT_EQ((*retire)->severity, Severity::kCorrected);
}

TEST(SyslogParser, SmwHeartbeatAndBlade) {
  SyslogParser parser(2013);
  auto hb = parser.ParseLine(
      "Apr  1 02:10:02 smw node_health: node c1-0c2s3n2 heartbeat fault, "
      "marking node down");
  ASSERT_TRUE(hb.ok() && hb->has_value());
  EXPECT_EQ((*hb)->category, ErrorCategory::kNodeHeartbeat);
  EXPECT_EQ((*hb)->scope, LocScope::kNode);
  EXPECT_EQ((*hb)->location, "c1-0c2s3n2");

  auto blade = parser.ParseLine(
      "Apr  1 02:10:03 smw hwerrd: blade c3-4c1s2 voltage fault, powering "
      "down blade");
  ASSERT_TRUE(blade.ok() && blade->has_value());
  EXPECT_EQ((*blade)->category, ErrorCategory::kBladeFault);
  EXPECT_EQ((*blade)->scope, LocScope::kBlade);
  EXPECT_EQ((*blade)->location, "c3-4c1s2");
}

TEST(SyslogParser, GeminiLinkSeverities) {
  SyslogParser parser(2013);
  auto fatal = parser.ParseLine(
      "Apr  1 02:10:02 smw netwatch: Gemini LCB c3-4c1s2g0l33 failed, "
      "failover unsuccessful");
  ASSERT_TRUE(fatal.ok() && fatal->has_value());
  EXPECT_EQ((*fatal)->category, ErrorCategory::kGeminiLink);
  EXPECT_EQ((*fatal)->severity, Severity::kFatal);
  EXPECT_EQ((*fatal)->scope, LocScope::kGemini);
  EXPECT_EQ((*fatal)->location, "c3-4c1s2g0");  // lane suffix stripped

  auto degraded = parser.ParseLine(
      "Apr  1 02:10:02 smw netwatch: Gemini LCB c3-4c1s2g1l12 failed, "
      "failover initiated");
  ASSERT_TRUE(degraded.ok() && degraded->has_value());
  EXPECT_EQ((*degraded)->severity, Severity::kDegraded);

  auto lane = parser.ParseLine(
      "Apr  1 02:10:02 smw netwatch: lane degrade on c3-4c1s2g0l12, "
      "recovered");
  ASSERT_TRUE(lane.ok() && lane->has_value());
  EXPECT_EQ((*lane)->severity, Severity::kCorrected);
}

TEST(SyslogParser, KernelPanic) {
  SyslogParser parser(2013);
  auto rec = parser.ParseLine(
      "Apr  1 02:10:02 c0-0c0s0n0 kernel: Kernel panic - not syncing: "
      "Fatal exception");
  ASSERT_TRUE(rec.ok() && rec->has_value());
  EXPECT_EQ((*rec)->category, ErrorCategory::kKernelSoftware);
}

TEST(SyslogParser, SkipsUnknownMessages) {
  SyslogParser parser(2013);
  auto rec = parser.ParseLine(
      "Apr  1 02:10:02 c0-0c0s0n0 sshd: Accepted publickey for root");
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->has_value());
  EXPECT_EQ(parser.stats().skipped, 1u);
}

TEST(SyslogParser, YearRollover) {
  SyslogParser parser(2013);
  auto before = parser.ParseLine(
      "Dec 31 23:59:58 c0-0c0s0n0 kernel: Kernel panic - not syncing: x");
  auto after = parser.ParseLine(
      "Jan  1 00:00:03 c0-0c0s0n1 kernel: Kernel panic - not syncing: x");
  ASSERT_TRUE(before.ok() && before->has_value());
  ASSERT_TRUE(after.ok() && after->has_value());
  EXPECT_EQ(ToCalendar((*before)->time).year, 2013);
  EXPECT_EQ(ToCalendar((*after)->time).year, 2014);
  EXPECT_GT((*after)->time, (*before)->time);
}

TEST(SyslogParser, SkewedLineAfterRolloverKeepsOldYearOnce) {
  // A node with a lagging clock stamps a December line *after* the
  // stream already crossed into January.  The skewed line must render in
  // the old year, and — the regression — the next January line must not
  // re-trigger the rollover and advance the year a second time.
  SyslogParser parser(2013);
  const std::vector<std::string> lines = {
      "Dec 31 23:59:30 c0-0c0s0n0 kernel: Kernel panic - not syncing: a",
      "Jan  1 00:00:10 c0-0c0s0n1 kernel: Kernel panic - not syncing: b",
      "Dec 31 23:59:50 c0-0c0s0n2 kernel: Kernel panic - not syncing: c",
      "Jan  1 00:00:40 c0-0c0s0n3 kernel: Kernel panic - not syncing: d",
  };
  const auto records = parser.ParseLines(lines);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(ToCalendar(records[0].time).year, 2013);
  EXPECT_EQ(ToCalendar(records[1].time).year, 2014);
  EXPECT_EQ(ToCalendar(records[2].time).year, 2013);
  EXPECT_EQ(ToCalendar(records[3].time).year, 2014);
}

TEST(SyslogParser, NoSpuriousRolloverWithinYear) {
  SyslogParser parser(2013);
  (void)parser.ParseLine(
      "Apr  1 00:00:00 c0-0c0s0n0 kernel: Kernel panic - not syncing: x");
  auto later = parser.ParseLine(
      "Mar 30 00:00:00 c0-0c0s0n0 kernel: Kernel panic - not syncing: x");
  // A small backwards month step (log shuffling) must not bump the year.
  ASSERT_TRUE(later.ok() && later->has_value());
  EXPECT_EQ(ToCalendar((*later)->time).year, 2013);
}

TEST(SyslogParser, LustreIncidentPairing) {
  SyslogParser parser(2013);
  const std::vector<std::string> lines = {
      "Apr  1 02:00:00 sonexion LustreError: 11-0: snx11003-OST0042: "
      "operation ost_write failed: service unavailable",
      "Apr  1 02:15:00 sonexion Lustre: snx11003-OST0042: service recovered",
      "Apr  2 05:00:00 sonexion LustreError: 11-0: snx11003-OST0042: "
      "operation ost_write failed: service unavailable",
  };
  const auto records = parser.ParseLines(lines);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].category, ErrorCategory::kLustre);
  EXPECT_EQ(records[0].scope, LocScope::kSystem);
  ASSERT_TRUE(records[0].recovered.has_value());
  EXPECT_EQ((*records[0].recovered - records[0].time).seconds(), 900);
  // Open incident at end-of-stream gets the default window.
  ASSERT_TRUE(records[1].recovered.has_value());
  EXPECT_EQ((*records[1].recovered - records[1].time).seconds(), 1800);
}

TEST(SyslogParser, OverlappingLustreReportsMerge) {
  SyslogParser parser(2013);
  const std::vector<std::string> lines = {
      "Apr  1 02:00:00 sonexion LustreError: service unavailable",
      "Apr  1 02:01:00 sonexion LustreError: service unavailable",
      "Apr  1 02:10:00 sonexion Lustre: service recovered",
  };
  const auto records = parser.ParseLines(lines);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].recovered.has_value());
}

TEST(SyslogParser, MalformedCounted) {
  SyslogParser parser(2013);
  EXPECT_FALSE(parser.ParseLine("too short").ok());
  EXPECT_FALSE(parser.ParseLine(
      "Xyz  1 02:10:02 c0-0c0s0n0 kernel: Kernel panic - not syncing").ok());
  EXPECT_EQ(parser.stats().malformed, 2u);
}

}  // namespace
}  // namespace ld
