#include "logdiver/metrics.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

AppRun MakeRun(ApId apid, std::uint32_t nodect, NodeType type, std::int64_t start,
           std::int64_t end) {
  AppRun run;
  run.apid = apid;
  run.nodect = nodect;
  run.node_type = type;
  run.start = TimePoint(start);
  run.end = TimePoint(end);
  run.has_termination = true;
  return run;
}

ClassifiedRun Cls(std::uint32_t idx, AppOutcome outcome,
                  ErrorCategory cause = ErrorCategory::kUnknown) {
  ClassifiedRun cls;
  cls.run_index = idx;
  cls.outcome = outcome;
  cls.cause = cause;
  return cls;
}

// Epoch anchor: 2013-04-01 = 1364774400.
constexpr std::int64_t kT0 = 1364774400;

TEST(Metrics, OutcomeBreakdownSharesAndNodeHours) {
  std::vector<AppRun> runs = {
      MakeRun(1, 10, NodeType::kXE, kT0, kT0 + 3600),       // 10 nh, success
      MakeRun(2, 10, NodeType::kXE, kT0, kT0 + 3600),       // 10 nh, user
      MakeRun(3, 20, NodeType::kXE, kT0, kT0 + 2 * 3600),   // 40 nh, system
      MakeRun(4, 4, NodeType::kXK, kT0, kT0 + 1800),        // 2 nh, walltime
  };
  std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSuccess),
      Cls(1, AppOutcome::kUserFailure),
      Cls(2, AppOutcome::kSystemFailure, ErrorCategory::kMemoryUE),
      Cls(3, AppOutcome::kWalltime),
  };
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  EXPECT_EQ(report.total_runs, 4u);
  EXPECT_DOUBLE_EQ(report.total_node_hours, 62.0);
  EXPECT_DOUBLE_EQ(report.system_failure_fraction, 0.25);
  EXPECT_NEAR(report.lost_node_hours_fraction, 40.0 / 62.0, 1e-12);
  ASSERT_EQ(report.outcomes.size(), 4u);
  EXPECT_EQ(report.outcomes[0].outcome, AppOutcome::kSuccess);
  EXPECT_DOUBLE_EQ(report.outcomes[0].runs_share, 0.25);
  EXPECT_EQ(report.outcomes[2].outcome, AppOutcome::kSystemFailure);
  EXPECT_DOUBLE_EQ(report.outcomes[2].node_hours, 40.0);
}

TEST(Metrics, CategoryTableCountsTuplesAndSeverities) {
  ErrorTuple corrected;
  corrected.category = ErrorCategory::kMachineCheck;
  corrected.severity = Severity::kCorrected;
  corrected.count = 12;
  corrected.first = corrected.last = TimePoint(kT0);
  ErrorTuple fatal = corrected;
  fatal.severity = Severity::kFatal;
  fatal.count = 1;

  std::vector<AppRun> runs = {MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 7200)};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess)};
  const MetricsReport report =
      ComputeMetrics(runs, classified, {corrected, fatal});
  ASSERT_EQ(report.categories.size(), 1u);
  EXPECT_EQ(report.categories[0].tuples, 2u);
  EXPECT_EQ(report.categories[0].fatal_tuples, 1u);
  EXPECT_EQ(report.categories[0].raw_events, 13u);
  EXPECT_DOUBLE_EQ(report.categories[0].fatal_mtbe_hours, 2.0);
}

TEST(Metrics, AttributionSplitsByPartition) {
  std::vector<AppRun> runs = {
      MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 100),
      MakeRun(2, 1, NodeType::kXK, kT0, kT0 + 100),
      MakeRun(3, 1, NodeType::kXK, kT0, kT0 + 100),
  };
  std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSystemFailure, ErrorCategory::kLustre),
      Cls(1, AppOutcome::kSystemFailure, ErrorCategory::kGpuDbe),
      Cls(2, AppOutcome::kSystemFailure, ErrorCategory::kGpuDbe),
  };
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  ASSERT_EQ(report.attribution.size(), 2u);
  // Sorted by total, descending: gpu_dbe (2) then lustre (1).
  EXPECT_EQ(report.attribution[0].cause, ErrorCategory::kGpuDbe);
  EXPECT_EQ(report.attribution[0].xk_failures, 2u);
  EXPECT_EQ(report.attribution[0].xe_failures, 0u);
  EXPECT_EQ(report.attribution[1].cause, ErrorCategory::kLustre);
  EXPECT_EQ(report.attribution[1].xe_failures, 1u);
}

TEST(Metrics, ScaleCurveBucketsRunsAndFailures) {
  std::vector<AppRun> runs;
  std::vector<ClassifiedRun> classified;
  // 100 single-node runs with 5 failures; 10 full-scale with 4 failures.
  for (int i = 0; i < 100; ++i) {
    runs.push_back(MakeRun(static_cast<ApId>(i), 1, NodeType::kXE, kT0, kT0 + 60));
    classified.push_back(Cls(static_cast<std::uint32_t>(i),
                             i < 5 ? AppOutcome::kSystemFailure
                                   : AppOutcome::kSuccess,
                             i < 5 ? ErrorCategory::kLustre
                                   : ErrorCategory::kUnknown));
  }
  for (int i = 0; i < 10; ++i) {
    runs.push_back(
        MakeRun(static_cast<ApId>(1000 + i), 20000, NodeType::kXE, kT0, kT0 + 60));
    classified.push_back(Cls(static_cast<std::uint32_t>(100 + i),
                             i < 4 ? AppOutcome::kSystemFailure
                                   : AppOutcome::kSuccess,
                             i < 4 ? ErrorCategory::kLustre
                                   : ErrorCategory::kUnknown));
  }
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  ASSERT_FALSE(report.xe_scale.empty());
  EXPECT_EQ(report.xe_scale.front().runs, 100u);
  EXPECT_EQ(report.xe_scale.front().system_failures, 5u);
  EXPECT_NEAR(report.xe_scale.front().failure_probability.point, 0.05, 1e-9);
  EXPECT_EQ(report.xe_scale.back().runs, 10u);
  EXPECT_EQ(report.xe_scale.back().system_failures, 4u);
}

TEST(Metrics, UnknownOutcomesExcludedFromScaleCurve) {
  std::vector<AppRun> runs = {MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 60)};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kUnknown)};
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  EXPECT_EQ(report.xe_scale.front().runs, 0u);
}

TEST(Metrics, MonthlySeriesGroupsByEndMonth) {
  std::vector<AppRun> runs = {
      MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 3600),  // April 2013
      MakeRun(2, 1, NodeType::kXE, kT0 + 35 * 86400, kT0 + 35 * 86400 + 3600),
  };
  std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSystemFailure, ErrorCategory::kLustre),
      Cls(1, AppOutcome::kSuccess),
  };
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  ASSERT_EQ(report.monthly.size(), 2u);
  EXPECT_EQ(report.monthly[0].month, 4);
  EXPECT_EQ(report.monthly[0].system_failures, 1u);
  EXPECT_GT(report.monthly[0].mtti_hours, 0.0);
  EXPECT_EQ(report.monthly[1].month, 5);
  EXPECT_EQ(report.monthly[1].system_failures, 0u);
  EXPECT_EQ(report.monthly[1].mtti_hours, 0.0);
}

TEST(Metrics, DetectionGapSplitsAttribution) {
  std::vector<AppRun> runs = {
      MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 60),
      MakeRun(2, 1, NodeType::kXK, kT0, kT0 + 60),
      MakeRun(3, 1, NodeType::kXK, kT0, kT0 + 60),
  };
  std::vector<ClassifiedRun> classified = {
      Cls(0, AppOutcome::kSystemFailure, ErrorCategory::kMemoryUE),
      Cls(1, AppOutcome::kSystemFailure, ErrorCategory::kUnknown),
      Cls(2, AppOutcome::kSystemFailure, ErrorCategory::kGpuDbe),
  };
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  ASSERT_EQ(report.detection_gap.size(), 2u);
  const DetectionGapRow& xe = report.detection_gap[0];
  const DetectionGapRow& xk = report.detection_gap[1];
  EXPECT_EQ(xe.type, NodeType::kXE);
  EXPECT_EQ(xe.unattributed, 0u);
  EXPECT_EQ(xk.system_failures, 2u);
  EXPECT_EQ(xk.unattributed, 1u);
  EXPECT_DOUBLE_EQ(xk.unattributed_share, 0.5);
}

TEST(Metrics, AvailabilityFromIncidentWindows) {
  // Two overlapping incidents (1h window merged) + one disjoint (30min)
  // over a 10-hour observed span.
  ErrorTuple a;
  a.category = ErrorCategory::kLustre;
  a.severity = Severity::kFatal;
  a.scope = LocScope::kSystem;
  a.first = a.last = TimePoint(kT0);
  a.recovered = TimePoint(kT0 + 3600);
  ErrorTuple b = a;
  b.first = b.last = TimePoint(kT0 + 1800);
  b.recovered = TimePoint(kT0 + 3600);  // inside a's window
  ErrorTuple c = a;
  c.first = c.last = TimePoint(kT0 + 7200);
  c.recovered = TimePoint(kT0 + 9000);

  std::vector<AppRun> runs = {MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 36000)};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess)};
  const MetricsReport report = ComputeMetrics(runs, classified, {a, b, c});
  EXPECT_EQ(report.availability.incidents, 3u);
  // Merged downtime: 3600s + 1800s = 1.5h (+2s of ImpactWindow padding).
  EXPECT_NEAR(report.availability.downtime_hours, 1.5, 0.01);
  EXPECT_NEAR(report.availability.availability, 1.0 - 1.5 / 10.0, 0.001);
}

TEST(Metrics, AvailabilityIgnoresNodeScopeAndNonFatal) {
  ErrorTuple node_fatal;
  node_fatal.category = ErrorCategory::kMemoryUE;
  node_fatal.severity = Severity::kFatal;
  node_fatal.scope = LocScope::kNode;
  node_fatal.first = node_fatal.last = TimePoint(kT0);
  std::vector<AppRun> runs = {MakeRun(1, 1, NodeType::kXE, kT0, kT0 + 3600)};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess)};
  const MetricsReport report = ComputeMetrics(runs, classified, {node_fatal});
  EXPECT_EQ(report.availability.incidents, 0u);
  EXPECT_DOUBLE_EQ(report.availability.availability, 1.0);
}

TEST(Metrics, QueueWaitsDeduplicatePerJob) {
  // Two runs of the same job must count its wait once.
  AppRun a = MakeRun(1, 4, NodeType::kXE, kT0 + 3600, kT0 + 7200);
  a.jobid = 7;
  a.job_submit = TimePoint(kT0);
  a.job_start = TimePoint(kT0 + 3600);  // 1h wait
  AppRun b = a;
  b.apid = 2;
  AppRun c = MakeRun(3, 600, NodeType::kXE, kT0 + 1800, kT0 + 3600);
  c.jobid = 8;
  c.job_submit = TimePoint(kT0);
  c.job_start = TimePoint(kT0 + 1800);  // 0.5h wait
  std::vector<AppRun> runs = {a, b, c};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess),
                                           Cls(1, AppOutcome::kSuccess),
                                           Cls(2, AppOutcome::kSuccess)};
  const MetricsReport report = ComputeMetrics(runs, classified, {});
  ASSERT_EQ(report.queue_waits.size(), 2u);
  // Band 2-8 holds job 7 exactly once.
  EXPECT_EQ(report.queue_waits[0].lo, 2u);
  EXPECT_EQ(report.queue_waits[0].jobs, 1u);
  EXPECT_DOUBLE_EQ(report.queue_waits[0].mean_wait_hours, 1.0);
  // Band 513-4096 holds job 8.
  EXPECT_EQ(report.queue_waits[1].lo, 513u);
  EXPECT_DOUBLE_EQ(report.queue_waits[1].mean_wait_hours, 0.5);
}

TEST(Metrics, EmptyInputsAreSafe) {
  const MetricsReport report = ComputeMetrics({}, {}, {});
  EXPECT_EQ(report.total_runs, 0u);
  EXPECT_EQ(report.system_failure_fraction, 0.0);
  EXPECT_TRUE(report.outcomes.empty());
  EXPECT_TRUE(report.monthly.empty());
}

TEST(Metrics, CustomScaleBuckets) {
  MetricsConfig config;
  config.xe_scale_buckets = {{1, 10}, {11, 100}};
  std::vector<AppRun> runs = {MakeRun(1, 50, NodeType::kXE, kT0, kT0 + 60)};
  std::vector<ClassifiedRun> classified = {Cls(0, AppOutcome::kSuccess)};
  const MetricsReport report = ComputeMetrics(runs, classified, {}, config);
  ASSERT_EQ(report.xe_scale.size(), 2u);
  EXPECT_EQ(report.xe_scale[1].runs, 1u);
}

}  // namespace
}  // namespace ld
