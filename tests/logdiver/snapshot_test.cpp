#include "logdiver/snapshot.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

TEST(Crc32Test, KnownVector) {
  // The CRC-32/IEEE check value: crc("123456789") == 0xCBF43926.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(SnapshotIoTest, WriterReaderRoundTrip) {
  SnapshotWriter w;
  w.U8(0xAB);
  w.Bool(true);
  w.Bool(false);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  w.F64(3.14159265358979);
  w.F64(-0.0);
  w.Time(TimePoint(1364775002));
  w.Dur(Duration::Minutes(5));
  w.Str("hello snapshot");
  w.Str("");

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1234567890123ll);
  EXPECT_EQ(r.F64(), 3.14159265358979);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, survives
  EXPECT_EQ(r.Time(), TimePoint(1364775002));
  EXPECT_EQ(r.Dur(), Duration::Minutes(5));
  EXPECT_EQ(r.Str(), "hello snapshot");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotIoTest, TruncatedReadLatchesError) {
  SnapshotWriter w;
  w.U64(7);
  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.U64(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: zero value, latched error
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // stays failed
  EXPECT_FALSE(r.ok());
}

TEST(SnapshotIoTest, OversizedStringPrefixFails) {
  SnapshotWriter w;
  w.U32(1000);  // length prefix pointing far past the end
  w.U8('x');
  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

class SnapshotFileTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) const {
    return testing::TempDir() + "snapshot_file_test_" + name;
  }
};

TEST_F(SnapshotFileTest, WriteReadRoundTrip) {
  const std::string path = Path("roundtrip.ldsnap");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 250, 251, 252};
  ASSERT_TRUE(WriteSnapshotFile(path, payload).ok());
  auto read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, TornFileIsRejected) {
  const std::string path = Path("torn.ldsnap");
  const std::vector<std::uint8_t> payload(100, 0x5A);
  ASSERT_TRUE(WriteSnapshotFile(path, payload).ok());
  std::filesystem::resize_file(path, 40);  // cut into the payload
  auto read = ReadSnapshotFile(path);
  EXPECT_FALSE(read.ok());
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, BitFlipIsRejected) {
  const std::string path = Path("bitflip.ldsnap");
  const std::vector<std::uint8_t> payload(100, 0x5A);
  ASSERT_TRUE(WriteSnapshotFile(path, payload).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(50);
    f.put(static_cast<char>(0xA5));
  }
  auto read = ReadSnapshotFile(path);
  EXPECT_FALSE(read.ok());
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, GarbageIsRejectedNotCrashed) {
  const std::string path = Path("garbage.ldsnap");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a snapshot at all";
  }
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
  std::filesystem::remove(path);
}

TEST(SnapshotStoreTest, FallsBackPastCorruptNewest) {
  const std::string dir = testing::TempDir() + "snapshot_store_fallback";
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  const std::vector<std::uint8_t> old_payload = {1, 1, 1};
  const std::vector<std::uint8_t> new_payload = {2, 2, 2};
  ASSERT_TRUE(store.Write(old_payload).ok());
  auto gen2 = store.Write(new_payload);
  ASSERT_TRUE(gen2.ok());

  std::filesystem::resize_file(store.PathFor(*gen2), 10);  // tear it
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, old_payload);
  EXPECT_EQ(loaded->generation, *gen2 - 1);
  EXPECT_EQ(loaded->rejected, 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(SnapshotFileTest, FingerprintRoundTripsThroughTheHeader) {
  const std::string path = Path("fingerprint.ldsnap");
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  ASSERT_TRUE(WriteSnapshotFile(path, payload, 0xFEEDFACE12345678ull).ok());
  std::uint64_t fingerprint = 0;
  auto read = ReadSnapshotFile(path, &fingerprint);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
  EXPECT_EQ(fingerprint, 0xFEEDFACE12345678ull);
  std::filesystem::remove(path);
}

TEST(SnapshotStoreTest, MismatchedFingerprintIsRejectedLikeATornFile) {
  // An intact snapshot computed from different input must not load when
  // the caller states what it expects; the store falls back to an older
  // matching generation, exactly as it does past a torn newest.
  const std::string dir = testing::TempDir() + "snapshot_store_fp";
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  const std::vector<std::uint8_t> matching = {1, 1, 1};
  const std::vector<std::uint8_t> foreign = {2, 2, 2};
  ASSERT_TRUE(store.Write(matching, /*fingerprint=*/111).ok());
  auto gen2 = store.Write(foreign, /*fingerprint=*/222);
  ASSERT_TRUE(gen2.ok());

  auto loaded = store.LoadLatest(/*expected_fingerprint=*/111);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->payload, matching);
  EXPECT_EQ(loaded->generation, *gen2 - 1);
  EXPECT_EQ(loaded->fingerprint, 111u);
  EXPECT_EQ(loaded->rejected, 1u);

  // No expectation (0) loads the newest regardless of its stamp.
  auto any = store.LoadLatest();
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(any->payload, foreign);
  EXPECT_EQ(any->fingerprint, 222u);

  // Nothing matches: NotFound, with both generations rejected.
  auto none = store.LoadLatest(/*expected_fingerprint=*/333);
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStoreTest, PrunesOldGenerations) {
  const std::string dir = testing::TempDir() + "snapshot_store_prune";
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir, /*keep_generations=*/2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Write({static_cast<std::uint8_t>(i)}).ok());
  }
  EXPECT_EQ(store.Generations(), (std::vector<std::uint64_t>{4, 5}));
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStoreTest, TwoConcurrentWriterProcessesNeverTearTheStore) {
  // Two processes sharing one store directory (a recycled shard racing
  // its abandoned predecessor, or two daemons pointed at the same
  // data_dir by mistake).  Each writes its own fingerprint; whatever
  // interleaving happens, LoadLatest must always see a *valid* newest
  // generation and pruning must never drop below keep_generations.
  const std::string dir = testing::TempDir() + "snapshot_store_racing_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  constexpr int kWritersCount = 2;
  constexpr int kWritesPerWriter = 25;
  pid_t pids[kWritersCount];
  for (int w = 0; w < kWritersCount; ++w) {
    pids[w] = ::fork();
    ASSERT_GE(pids[w], 0);
    if (pids[w] == 0) {
      SnapshotStore store(dir, /*keep_generations=*/2);
      for (int i = 0; i < kWritesPerWriter; ++i) {
        std::vector<std::uint8_t> payload(64, static_cast<std::uint8_t>(w));
        payload[0] = static_cast<std::uint8_t>(i);
        if (!store.Write(payload, /*fingerprint=*/100 + w).ok()) {
          std::_Exit(1);
        }
      }
      std::_Exit(0);
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  SnapshotStore store(dir, /*keep_generations=*/2);
  const auto generations = store.Generations();
  EXPECT_GE(generations.size(), 2u);
  auto latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->payload.size(), 64u);
  // The payload must be wholly one writer's bytes — a generation
  // mixing both writers' data would mean the tmp files collided.
  const std::uint8_t writer = latest->payload[1];
  EXPECT_TRUE(writer == 0 || writer == 1);
  for (std::size_t i = 2; i < latest->payload.size(); ++i) {
    EXPECT_EQ(latest->payload[i], writer) << "torn payload at byte " << i;
  }
  EXPECT_EQ(latest->fingerprint, 100u + writer);

  // Fingerprint rejection still works in the shared dir: asking for one
  // writer's snapshots skips the other's (or reports NotFound if every
  // surviving generation is the other writer's).
  auto mine = store.LoadLatest(/*expected_fingerprint=*/100);
  if (mine.ok()) {
    EXPECT_EQ(mine->fingerprint, 100u);
  } else {
    EXPECT_EQ(mine.status().code(), StatusCode::kNotFound);
  }
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStoreTest, EmptyDirIsNotFound) {
  const std::string dir = testing::TempDir() + "snapshot_store_empty";
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  auto loaded = store.LoadLatest();
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- analyzer state round trips -------------------------------------

class AnalyzerSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new ScenarioConfig(SmallScenario(404));
    config_->workload.target_app_runs = 600;
    machine_ = new Machine(MakeMachine(*config_));
    auto campaign = RunCampaign(*machine_, *config_);
    ASSERT_TRUE(campaign.ok());
    campaign_ = new Campaign(std::move(*campaign));
  }

  static void TearDownTestSuite() {
    delete campaign_;
    delete machine_;
    delete config_;
    campaign_ = nullptr;
    machine_ = nullptr;
    config_ = nullptr;
  }

  static std::vector<std::uint8_t> TakeSnapshot(
      const StreamingAnalyzer& analyzer) {
    SnapshotWriter w;
    analyzer.Snapshot(w);
    return w.TakeBytes();
  }

  static ScenarioConfig* config_;
  static Machine* machine_;
  static Campaign* campaign_;
};

ScenarioConfig* AnalyzerSnapshotTest::config_ = nullptr;
Machine* AnalyzerSnapshotTest::machine_ = nullptr;
Campaign* AnalyzerSnapshotTest::campaign_ = nullptr;

TEST_F(AnalyzerSnapshotTest, EmptyAnalyzerSnapshotIsByteStable) {
  StreamingAnalyzer a(*machine_, LogDiverConfig{});
  const std::vector<std::uint8_t> first = TakeSnapshot(a);
  const std::vector<std::uint8_t> second = TakeSnapshot(a);
  EXPECT_EQ(first, second);  // snapshotting must not mutate state

  StreamingAnalyzer b(*machine_, LogDiverConfig{});
  SnapshotReader r(first);
  ASSERT_TRUE(b.Restore(r).ok());
  EXPECT_EQ(TakeSnapshot(b), first);  // restore -> snapshot is identity
}

TEST_F(AnalyzerSnapshotTest, MidStreamRoundTripContinuesIdentically) {
  const EmittedLogs& logs = campaign_->logs;
  StreamingAnalyzer uninterrupted(*machine_, LogDiverConfig{});
  StreamingAnalyzer before_crash(*machine_, LogDiverConfig{});

  // Feed the first half of each stream into both analyzers.
  const auto feed_half = [&](StreamingAnalyzer& a, bool second_half) {
    const auto half_of = [&](const std::vector<std::string>& lines,
                             auto add) {
      const std::size_t mid = lines.size() / 2;
      const std::size_t from = second_half ? mid : 0;
      const std::size_t to = second_half ? lines.size() : mid;
      for (std::size_t i = from; i < to; ++i) add(lines[i]);
    };
    half_of(logs.torque,
            [&](const std::string& l) { a.AddTorqueLine(l); });
    half_of(logs.alps, [&](const std::string& l) { a.AddAlpsLine(l); });
    half_of(logs.syslog, [&](const std::string& l) { a.AddSyslogLine(l); });
    half_of(logs.hwerr, [&](const std::string& l) { a.AddHwerrLine(l); });
  };
  feed_half(uninterrupted, false);
  feed_half(before_crash, false);

  // Snapshot mid-stream and restore into a fresh analyzer ("the
  // restarted process").
  const std::vector<std::uint8_t> snapshot = TakeSnapshot(before_crash);
  StreamingAnalyzer resumed(*machine_, LogDiverConfig{});
  SnapshotReader r(snapshot);
  ASSERT_TRUE(resumed.Restore(r).ok());

  // Both continue with the identical second half and must agree bit
  // for bit.
  feed_half(uninterrupted, true);
  feed_half(resumed, true);
  const auto base = uninterrupted.Finalize();
  const auto cont = resumed.Finalize();
  EXPECT_EQ(FingerprintReport(cont.metrics), FingerprintReport(base.metrics));
  EXPECT_EQ(FingerprintIngest(cont.ingest), FingerprintIngest(base.ingest));
  EXPECT_EQ(cont.runs_finalized, base.runs_finalized);
  EXPECT_EQ(cont.orphan_terminations, base.orphan_terminations);
}

TEST_F(AnalyzerSnapshotTest, RestoreRejectsWrongGeometry) {
  StreamingAnalyzer a(*machine_, LogDiverConfig{});
  const std::vector<std::uint8_t> snapshot = TakeSnapshot(a);

  ScenarioConfig other = SmallScenario(7);
  other.testbed_xe = config_->testbed_xe / 2;  // different machine
  const Machine small = MakeMachine(other);
  StreamingAnalyzer b(small, LogDiverConfig{});
  SnapshotReader r(snapshot);
  EXPECT_FALSE(b.Restore(r).ok());
}

TEST_F(AnalyzerSnapshotTest, QuarantineOverflowSurvivesRoundTrip) {
  LogDiverConfig config;
  config.ingest.quarantine.max_entries = 3;  // force overflow fast
  StreamingAnalyzer a(*machine_, config);
  for (int i = 0; i < 10; ++i) {
    a.AddAlpsLine("complete garbage line " + std::to_string(i));
  }
  ASSERT_EQ(a.quarantine().total(), 10u);
  ASSERT_EQ(a.quarantine().overflow(), 7u);
  ASSERT_EQ(a.quarantine().entries().size(), 3u);

  StreamingAnalyzer b(*machine_, config);
  const std::vector<std::uint8_t> snapshot = TakeSnapshot(a);
  SnapshotReader r(snapshot);
  ASSERT_TRUE(b.Restore(r).ok());
  // The overflow counters — not just the stored entries — must survive,
  // or a restored run under-reports how dirty the stream was.
  EXPECT_EQ(b.quarantine().total(), 10u);
  EXPECT_EQ(b.quarantine().overflow(), 7u);
  EXPECT_EQ(b.quarantine().entries().size(), 3u);
  EXPECT_EQ(b.quarantine().count(LogSource::kAlps), 10u);
  EXPECT_EQ(b.ingest_stats().quarantined, 10u);
}

TEST_F(AnalyzerSnapshotTest, RepeatedWatermarkFinalizesNothingNew) {
  const EmittedLogs& logs = campaign_->logs;
  StreamingAnalyzer a(*machine_, LogDiverConfig{});
  for (const std::string& line : logs.torque) a.AddTorqueLine(line);
  for (const std::string& line : logs.alps) a.AddAlpsLine(line);

  // Find a watermark late enough to finalize something.
  TimePoint last;
  {
    AlpsParser alps;
    for (const std::string& line : logs.alps) {
      auto rec = alps.ParseLine(line);
      if (rec.ok() && rec->has_value()) last = (*rec)->time;
    }
  }
  const std::size_t first = a.Advance(last + Duration::Days(1));
  EXPECT_GT(first, 0u);
  const std::uint64_t finalized = a.runs_finalized();
  // Advancing to the identical watermark again is a no-op: every run it
  // could finalize is already finalized.
  EXPECT_EQ(a.Advance(last + Duration::Days(1)), 0u);
  EXPECT_EQ(a.Advance(last + Duration::Days(1)), 0u);
  EXPECT_EQ(a.runs_finalized(), finalized);
  EXPECT_EQ(a.ingest_stats().watermark_regressions, 0u);
}

TEST_F(AnalyzerSnapshotTest, FinalizeIsSpentAfterUse) {
  StreamingAnalyzer a(*machine_, LogDiverConfig{});
  a.Finalize();
  EXPECT_THROW(a.Finalize(), std::logic_error);
  EXPECT_THROW(a.AddTorqueLine("x"), std::logic_error);
  EXPECT_THROW(a.AddAlpsLine("x"), std::logic_error);
  EXPECT_THROW(a.AddSyslogLine("x"), std::logic_error);
  EXPECT_THROW(a.AddHwerrLine("x"), std::logic_error);
  EXPECT_THROW(a.Advance(TimePoint(0)), std::logic_error);
  SnapshotWriter w;
  EXPECT_THROW(a.Snapshot(w), std::logic_error);
}

}  // namespace
}  // namespace ld
