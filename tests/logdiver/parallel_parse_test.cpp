// Chunk-parallel parsing must be bit-identical to sequential parsing —
// same records, same stats, same quarantine entries in the same order —
// at any thread count and chunk size, on clean and corrupted input.
#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "faults/corruptor.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/snapshot.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

// Small enough to keep the test fast, big enough that chunk_lines=17
// produces dozens of chunks per source.
EmittedLogs TestLogs(std::uint64_t seed, double corruption_rate) {
  ScenarioConfig config = SmallScenario(seed);
  config.workload.target_app_runs = 400;
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  EXPECT_TRUE(campaign.ok());
  EmittedLogs logs = campaign->logs;
  if (corruption_rate > 0.0) {
    CorruptorConfig cc;
    cc.rate = corruption_rate;
    cc.ops = LogCorruptor::AllOps();
    const LogCorruptor corruptor(cc);
    corruptor.CorruptBundle(logs, Rng(seed).Fork("corruptor"));
  }
  return logs;
}

std::vector<std::string_view> Views(const std::vector<std::string>& lines) {
  std::vector<std::string_view> views;
  views.reserve(lines.size());
  for (const std::string& line : lines) views.emplace_back(line);
  return views;
}

void ExpectSameStats(const ParseStats& a, const ParseStats& b) {
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.malformed, b.malformed);
}

void ExpectSameQuarantine(const std::vector<QuarantineEntry>& a,
                          const std::vector<QuarantineEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source) << "entry " << i;
    EXPECT_EQ(a[i].line_number, b[i].line_number) << "entry " << i;
    EXPECT_EQ(a[i].reason, b[i].reason) << "entry " << i;
    EXPECT_EQ(a[i].line, b[i].line) << "entry " << i;
  }
}

void ExpectSameRecord(const TorqueRecord& a, const TorqueRecord& b,
                      std::size_t i) {
  EXPECT_EQ(a.kind, b.kind) << i;
  EXPECT_EQ(a.time, b.time) << i;
  EXPECT_EQ(a.jobid, b.jobid) << i;
  EXPECT_EQ(a.user, b.user) << i;
  EXPECT_EQ(a.queue, b.queue) << i;
  EXPECT_EQ(a.job_name, b.job_name) << i;
  EXPECT_EQ(a.submit, b.submit) << i;
  EXPECT_EQ(a.start, b.start) << i;
  EXPECT_EQ(a.end, b.end) << i;
  EXPECT_EQ(a.exit_status, b.exit_status) << i;
  EXPECT_EQ(a.nodect, b.nodect) << i;
  EXPECT_EQ(a.walltime_limit, b.walltime_limit) << i;
  EXPECT_EQ(a.walltime_used, b.walltime_used) << i;
}

void ExpectSameRecord(const AlpsRecord& a, const AlpsRecord& b,
                      std::size_t i) {
  EXPECT_EQ(a.kind, b.kind) << i;
  EXPECT_EQ(a.time, b.time) << i;
  EXPECT_EQ(a.apid, b.apid) << i;
  EXPECT_EQ(a.jobid, b.jobid) << i;
  EXPECT_EQ(a.user, b.user) << i;
  EXPECT_EQ(a.command, b.command) << i;
  EXPECT_EQ(a.nodect, b.nodect) << i;
  EXPECT_EQ(a.nids, b.nids) << i;
  EXPECT_EQ(a.exit_code, b.exit_code) << i;
  EXPECT_EQ(a.exit_signal, b.exit_signal) << i;
  EXPECT_EQ(a.kill_reason, b.kill_reason) << i;
  EXPECT_EQ(a.failed_nid, b.failed_nid) << i;
}

void ExpectSameRecord(const ErrorRecord& a, const ErrorRecord& b,
                      std::size_t i) {
  EXPECT_EQ(a.time, b.time) << i;
  EXPECT_EQ(a.category, b.category) << i;
  EXPECT_EQ(a.severity, b.severity) << i;
  EXPECT_EQ(a.scope, b.scope) << i;
  EXPECT_EQ(a.location, b.location) << i;
  EXPECT_EQ(a.source, b.source) << i;
  EXPECT_EQ(a.recovered, b.recovered) << i;
}

/// Runs `parser_factory() -> parser` sequentially (one chunk, no pool)
/// and chunked (chunk_lines=17, 4 threads) over `lines` and asserts the
/// outputs are indistinguishable.
template <typename ParserFactory>
void ExpectChunkedMatchesSequential(ParserFactory&& parser_factory,
                                    const std::vector<std::string>& lines) {
  const std::vector<std::string_view> views = Views(lines);
  ThreadPool pool(4);

  auto sequential_parser = parser_factory();
  QuarantineSink sequential_sink((QuarantineConfig()));
  const auto sequential = sequential_parser.ParseLines(
      std::span<const std::string_view>(views), &sequential_sink, nullptr,
      lines.size() + 1);  // one chunk

  auto chunked_parser = parser_factory();
  QuarantineSink chunked_sink((QuarantineConfig()));
  const auto chunked = chunked_parser.ParseLines(
      std::span<const std::string_view>(views), &chunked_sink, &pool, 17);

  ASSERT_EQ(sequential.size(), chunked.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ExpectSameRecord(sequential[i], chunked[i], i);
  }
  ExpectSameStats(sequential_parser.stats(), chunked_parser.stats());
  EXPECT_EQ(sequential_sink.total(), chunked_sink.total());
  ExpectSameQuarantine(sequential_sink.entries(), chunked_sink.entries());
}

TEST(ParallelParse, TorqueChunkedMatchesSequentialOnDirtyInput) {
  const EmittedLogs logs = TestLogs(11, 0.08);
  ExpectChunkedMatchesSequential([] { return TorqueParser(); }, logs.torque);
}

TEST(ParallelParse, AlpsChunkedMatchesSequentialOnDirtyInput) {
  const EmittedLogs logs = TestLogs(12, 0.08);
  ExpectChunkedMatchesSequential([] { return AlpsParser(); }, logs.alps);
}

TEST(ParallelParse, HwerrChunkedMatchesSequentialOnDirtyInput) {
  const EmittedLogs logs = TestLogs(13, 0.08);
  ExpectChunkedMatchesSequential([] { return HwerrParser(); }, logs.hwerr);
}

TEST(ParallelParse, SyslogChunkedMatchesSequentialOnDirtyInput) {
  const EmittedLogs logs = TestLogs(14, 0.08);
  ExpectChunkedMatchesSequential([] { return SyslogParser(2013); },
                                 logs.syslog);
}

TEST(ParallelParse, SyslogChunkedMatchesSequentialOnCleanInput) {
  const EmittedLogs logs = TestLogs(15, 0.0);
  ExpectChunkedMatchesSequential([] { return SyslogParser(2013); },
                                 logs.syslog);
}

int YearOf(TimePoint t) { return ToCalendar(t).year; }

TEST(ParallelParse, SyslogYearRolloverStitchesAcrossChunkBoundaries) {
  // Two December rollovers; with chunk_lines=1 every boundary is a chunk
  // boundary, so the stitch must carry the month state between chunks.
  const std::vector<std::string> lines = {
      "Nov 20 10:00:00 c0-0c0s0n0 kernel: Kernel panic - not syncing",
      "Dec 31 23:59:58 c0-0c0s0n1 kernel: Kernel panic - not syncing",
      "Jan  1 00:00:02 c0-0c0s0n2 kernel: Kernel panic - not syncing",
      "Jun 15 12:00:00 c0-0c0s0n3 kernel: Kernel panic - not syncing",
      "Dec 30 01:00:00 c0-0c0s0n0 kernel: Kernel panic - not syncing",
      "Jan  2 03:00:00 c0-0c0s0n1 kernel: Kernel panic - not syncing",
  };
  const std::vector<std::string_view> views = Views(lines);
  ThreadPool pool(4);
  for (std::size_t chunk_lines : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{100}}) {
    SyslogParser parser(2013);
    const auto records = parser.ParseLines(
        std::span<const std::string_view>(views), nullptr, &pool, chunk_lines);
    ASSERT_EQ(records.size(), 6u) << "chunk_lines=" << chunk_lines;
    const int expected_years[] = {2013, 2013, 2014, 2014, 2014, 2015};
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(YearOf(records[i].time), expected_years[i])
          << "chunk_lines=" << chunk_lines << " record " << i;
    }
  }
}

TEST(ParallelParse, SyslogRolloverCountsLinesThatFailAfterMonthValidation) {
  // The smw line fails ("smw event without component name") *after* its
  // month token validated, so the sequential parser still advances its
  // rollover state on it.  The December evidence lives only in that
  // failing line; the January line after it must land in the next year.
  const std::vector<std::string> lines = {
      "Nov 20 10:00:00 c0-0c0s0n0 kernel: Kernel panic - not syncing",
      "Dec 31 23:59:00 smw critical voltage fault somewhere",
      "Jan  1 00:10:00 c0-0c0s0n2 kernel: Kernel panic - not syncing",
  };
  const std::vector<std::string_view> views = Views(lines);
  ThreadPool pool(4);
  for (std::size_t chunk_lines : {std::size_t{1}, std::size_t{100}}) {
    SyslogParser parser(2013);
    QuarantineSink sink((QuarantineConfig()));
    const auto records = parser.ParseLines(
        std::span<const std::string_view>(views), &sink, &pool, chunk_lines);
    ASSERT_EQ(records.size(), 2u) << "chunk_lines=" << chunk_lines;
    EXPECT_EQ(YearOf(records[0].time), 2013) << "chunk_lines=" << chunk_lines;
    EXPECT_EQ(YearOf(records[1].time), 2014) << "chunk_lines=" << chunk_lines;
    ASSERT_EQ(sink.entries().size(), 1u);
    EXPECT_EQ(sink.entries()[0].line_number, 2u);
  }
}

TEST(ParallelParse, SyslogLustrePairingSpansChunkBoundaries) {
  const std::vector<std::string> lines = {
      "Apr  1 10:00:00 sonexion LustreError: ost12 failing over",
      "Apr  1 10:05:00 sonexion LustreError: ost12 still degraded",
      "Apr  1 10:30:00 sonexion Lustre: ost12 recovered after failover",
      "Apr  2 08:00:00 sonexion LustreError: mdt0 unresponsive",
  };
  const std::vector<std::string_view> views = Views(lines);
  ThreadPool pool(4);
  for (std::size_t chunk_lines : {std::size_t{1}, std::size_t{2},
                                  std::size_t{100}}) {
    SyslogParser parser(2013);
    const auto records = parser.ParseLines(
        std::span<const std::string_view>(views), nullptr, &pool, chunk_lines);
    // Incident 1 (two overlapping error lines merged) closed by the
    // recovery; incident 2 left open and default-closed at end of input.
    ASSERT_EQ(records.size(), 2u) << "chunk_lines=" << chunk_lines;
    ASSERT_TRUE(records[0].recovered.has_value());
    EXPECT_EQ(*records[0].recovered - records[0].time, Duration::Minutes(30))
        << "chunk_lines=" << chunk_lines;
    ASSERT_TRUE(records[1].recovered.has_value());
    EXPECT_EQ(*records[1].recovered - records[1].time, Duration::Minutes(30))
        << "chunk_lines=" << chunk_lines;  // kDefaultOpenIncidentSeconds
  }
}

TEST(ParallelParse, AnalyzeBitIdenticalAcrossThreadCounts) {
  const EmittedLogs logs = TestLogs(16, 0.10);
  const ScenarioConfig config = [] {
    ScenarioConfig c = SmallScenario(16);
    c.workload.target_app_runs = 400;
    return c;
  }();
  const Machine machine = MakeMachine(config);
  const LogSet logset{logs.torque, logs.alps, logs.syslog, logs.hwerr};

  LogDiverConfig serial_config;
  serial_config.threads = 1;
  const LogDiver serial(machine, serial_config);
  auto serial_result = serial.Analyze(logset);
  ASSERT_TRUE(serial_result.ok());

  LogDiverConfig parallel_config;
  parallel_config.threads = 4;
  parallel_config.parse_chunk_lines = 64;  // force many chunks
  const LogDiver parallel(machine, parallel_config);
  auto parallel_result = parallel.Analyze(logset);
  ASSERT_TRUE(parallel_result.ok());

  EXPECT_EQ(FingerprintReport(serial_result->metrics),
            FingerprintReport(parallel_result->metrics));
  EXPECT_EQ(FingerprintIngest(serial_result->ingest),
            FingerprintIngest(parallel_result->ingest));
  EXPECT_EQ(serial_result->classified.size(),
            parallel_result->classified.size());
  ExpectSameQuarantine(serial_result->quarantine, parallel_result->quarantine);
  ExpectSameStats(serial_result->torque_stats, parallel_result->torque_stats);
  ExpectSameStats(serial_result->alps_stats, parallel_result->alps_stats);
  ExpectSameStats(serial_result->syslog_stats, parallel_result->syslog_stats);
  ExpectSameStats(serial_result->hwerr_stats, parallel_result->hwerr_stats);
}

TEST(ParallelParse, AnalyzeBundleBitIdenticalAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir() + "/ld_parallel_bundle";
  std::filesystem::remove_all(dir);
  ScenarioConfig config = SmallScenario(17);
  config.workload.target_app_runs = 400;
  const Machine machine = MakeMachine(config);
  auto bundle = WriteBundle(machine, config, dir);
  ASSERT_TRUE(bundle.ok());

  LogDiverConfig serial_config;
  serial_config.threads = 1;
  const LogDiver serial(machine, serial_config);
  auto serial_result = serial.AnalyzeBundle(dir);
  ASSERT_TRUE(serial_result.ok());

  LogDiverConfig parallel_config;
  parallel_config.threads = 4;
  parallel_config.parse_chunk_lines = 64;
  const LogDiver parallel(machine, parallel_config);
  auto parallel_result = parallel.AnalyzeBundle(dir);
  ASSERT_TRUE(parallel_result.ok());

  EXPECT_EQ(FingerprintReport(serial_result->metrics),
            FingerprintReport(parallel_result->metrics));
  EXPECT_EQ(FingerprintIngest(serial_result->ingest),
            FingerprintIngest(parallel_result->ingest));
  ExpectSameQuarantine(serial_result->quarantine, parallel_result->quarantine);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ld
