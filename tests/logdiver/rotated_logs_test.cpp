#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logdiver/logdiver.hpp"
#include "logdiver/syslog_parser.hpp"
#include "simlog/catalog.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

void WriteFile(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const std::string& line : lines) out << line << '\n';
}

TEST(RotatedLogs, ReadsOldestFirst) {
  const std::string dir = ::testing::TempDir() + "/ld_rotated_basic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/syslog.log";
  WriteFile(base + ".2", {"oldest"});
  WriteFile(base + ".1", {"middle"});
  WriteFile(base, {"newest"});
  auto lines = ReadRotatedLines(base);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 3u);
  EXPECT_EQ((*lines)[0], "oldest");
  EXPECT_EQ((*lines)[1], "middle");
  EXPECT_EQ((*lines)[2], "newest");
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, LoneFileReadsAsIs) {
  const std::string dir = ::testing::TempDir() + "/ld_rotated_lone";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  WriteFile(dir + "/alps.log", {"a", "b"});
  auto lines = ReadRotatedLines(dir + "/alps.log");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, MissingBaseFails) {
  EXPECT_FALSE(ReadRotatedLines("/nonexistent/foo.log").ok());
}

TEST(RotatedLogs, MissingMiddleSegmentFailsInsteadOfTruncating) {
  // base, base.1 and base.3 exist but base.2 is gone: reading must fail
  // loudly rather than silently dropping base.3 (the old scan stopped at
  // the first missing index and returned a truncated stream).
  const std::string dir = ::testing::TempDir() + "/ld_rotated_gap";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/syslog.log";
  WriteFile(base + ".3", {"oldest"});
  WriteFile(base + ".1", {"middle"});
  WriteFile(base, {"newest"});
  auto lines = ReadRotatedLines(base);
  ASSERT_FALSE(lines.ok());
  EXPECT_NE(lines.status().ToString().find("rotation gap"), std::string::npos)
      << lines.status().ToString();
  EXPECT_NE(lines.status().ToString().find(".2"), std::string::npos)
      << lines.status().ToString();
  std::filesystem::remove_all(dir);
}

// A New Year's stream with a lagging node clock: SkewSyslogMidnights
// re-stamps lines whose time of day is under the skew back across the
// midnight, so December stamps reappear *after* January ones.
std::vector<std::string> SkewedNewYearLines() {
  const std::vector<std::string> lines = {
      "Dec 30 12:00:00 c0-0c0s0n0 kernel: Kernel panic - not syncing: a",
      "Dec 31 23:59:30 c0-0c0s0n1 kernel: Kernel panic - not syncing: b",
      "Jan  1 00:00:30 c0-0c0s0n2 kernel: Kernel panic - not syncing: c",
      "Jan  1 00:02:00 c0-0c0s0n3 kernel: Kernel panic - not syncing: d",
      "Jan  1 12:00:00 c0-0c0s0n4 kernel: Kernel panic - not syncing: e",
  };
  const TimePoint epoch = TimePoint::FromCalendar(2013, 12, 30, 0, 0, 0);
  return SkewSyslogMidnights(lines, /*skew_seconds=*/90, epoch);
}

TEST(RotatedLogs, SkewedMidnightSegmentsReadLikeWholeStream) {
  // Rotating daily across a clock-skewed New Year midnight must hand the
  // parser the exact same stream as the unrotated file — and parsing it
  // must put the skewed December stamp back in the old year without
  // advancing into the new year twice.
  const auto skewed = SkewedNewYearLines();
  ASSERT_EQ(skewed.size(), 5u);
  // The 00:00:30 line was re-stamped 90 s back, across the midnight.
  EXPECT_EQ(skewed[2].substr(0, 15), "Dec 31 23:59:00");

  const TimePoint epoch = TimePoint::FromCalendar(2013, 12, 30, 0, 0, 0);
  const auto segments = SplitSyslogByDays(skewed, epoch, /*rotate_days=*/1);
  ASSERT_GE(segments.size(), 2u);

  const std::string dir = ::testing::TempDir() + "/ld_rotated_skew";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/syslog.log";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::size_t suffix = segments.size() - 1 - i;
    WriteFile(suffix == 0 ? base : base + "." + std::to_string(suffix),
              segments[i]);
  }
  auto joined = ReadRotatedLines(base);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, skewed);

  SyslogParser parser(2013);
  const auto records = parser.ParseLines(*joined);
  ASSERT_EQ(records.size(), 5u);
  const int years[] = {2013, 2013, 2013, 2014, 2014};
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(ToCalendar(records[i].time).year, years[i]) << "record " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, GapSpanningSkewedMidnightFailsLoudly) {
  // Lose the middle segment of a rotation that straddles the skewed
  // midnight: the reader must refuse the truncated stream rather than
  // silently dropping the December side.
  const auto skewed = SkewedNewYearLines();
  const TimePoint epoch = TimePoint::FromCalendar(2013, 12, 30, 0, 0, 0);
  const auto segments = SplitSyslogByDays(skewed, epoch, /*rotate_days=*/1);
  ASSERT_GE(segments.size(), 3u);

  const std::string dir = ::testing::TempDir() + "/ld_rotated_skew_gap";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/syslog.log";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::size_t suffix = segments.size() - 1 - i;
    if (suffix == 1) continue;  // the segment holding the midnight
    WriteFile(suffix == 0 ? base : base + "." + std::to_string(suffix),
              segments[i]);
  }
  auto joined = ReadRotatedLines(base);
  ASSERT_FALSE(joined.ok());
  EXPECT_NE(joined.status().ToString().find("rotation gap"), std::string::npos)
      << joined.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, AnalyzeBundleHandlesRotatedBundle) {
  // Write a normal bundle, then split each source into two rotated
  // segments; analysis must give identical results.
  const std::string dir = ::testing::TempDir() + "/ld_rotated_bundle";
  std::filesystem::remove_all(dir);
  ScenarioConfig config = SmallScenario(77);
  config.workload.target_app_runs = 800;
  const Machine machine = MakeMachine(config);
  auto bundle = WriteBundle(machine, config, dir);
  ASSERT_TRUE(bundle.ok());

  LogDiver diver(machine, {});
  auto whole = diver.AnalyzeBundle(dir);
  ASSERT_TRUE(whole.ok());

  // Rotate: first half of each file becomes <name>.log.1.
  for (const char* name : {"torque.log", "alps.log", "syslog.log",
                           "hwerr.log"}) {
    const std::string path = dir + "/" + name;
    auto lines = ReadLines(path);
    ASSERT_TRUE(lines.ok());
    const std::size_t half = lines->size() / 2;
    WriteFile(path + ".1", {lines->begin(), lines->begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    half)});
    WriteFile(path, {lines->begin() + static_cast<std::ptrdiff_t>(half),
                     lines->end()});
  }

  auto rotated = diver.AnalyzeBundle(dir);
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(rotated->runs.size(), whole->runs.size());
  EXPECT_EQ(rotated->tuples.size(), whole->tuples.size());
  EXPECT_DOUBLE_EQ(rotated->metrics.system_failure_fraction,
                   whole->metrics.system_failure_fraction);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ld
