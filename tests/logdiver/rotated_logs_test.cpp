#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "logdiver/logdiver.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

void WriteFile(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const std::string& line : lines) out << line << '\n';
}

TEST(RotatedLogs, ReadsOldestFirst) {
  const std::string dir = ::testing::TempDir() + "/ld_rotated_basic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/syslog.log";
  WriteFile(base + ".2", {"oldest"});
  WriteFile(base + ".1", {"middle"});
  WriteFile(base, {"newest"});
  auto lines = ReadRotatedLines(base);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 3u);
  EXPECT_EQ((*lines)[0], "oldest");
  EXPECT_EQ((*lines)[1], "middle");
  EXPECT_EQ((*lines)[2], "newest");
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, LoneFileReadsAsIs) {
  const std::string dir = ::testing::TempDir() + "/ld_rotated_lone";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  WriteFile(dir + "/alps.log", {"a", "b"});
  auto lines = ReadRotatedLines(dir + "/alps.log");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, MissingBaseFails) {
  EXPECT_FALSE(ReadRotatedLines("/nonexistent/foo.log").ok());
}

TEST(RotatedLogs, MissingMiddleSegmentFailsInsteadOfTruncating) {
  // base, base.1 and base.3 exist but base.2 is gone: reading must fail
  // loudly rather than silently dropping base.3 (the old scan stopped at
  // the first missing index and returned a truncated stream).
  const std::string dir = ::testing::TempDir() + "/ld_rotated_gap";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/syslog.log";
  WriteFile(base + ".3", {"oldest"});
  WriteFile(base + ".1", {"middle"});
  WriteFile(base, {"newest"});
  auto lines = ReadRotatedLines(base);
  ASSERT_FALSE(lines.ok());
  EXPECT_NE(lines.status().ToString().find("rotation gap"), std::string::npos)
      << lines.status().ToString();
  EXPECT_NE(lines.status().ToString().find(".2"), std::string::npos)
      << lines.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(RotatedLogs, AnalyzeBundleHandlesRotatedBundle) {
  // Write a normal bundle, then split each source into two rotated
  // segments; analysis must give identical results.
  const std::string dir = ::testing::TempDir() + "/ld_rotated_bundle";
  std::filesystem::remove_all(dir);
  ScenarioConfig config = SmallScenario(77);
  config.workload.target_app_runs = 800;
  const Machine machine = MakeMachine(config);
  auto bundle = WriteBundle(machine, config, dir);
  ASSERT_TRUE(bundle.ok());

  LogDiver diver(machine, {});
  auto whole = diver.AnalyzeBundle(dir);
  ASSERT_TRUE(whole.ok());

  // Rotate: first half of each file becomes <name>.log.1.
  for (const char* name : {"torque.log", "alps.log", "syslog.log",
                           "hwerr.log"}) {
    const std::string path = dir + "/" + name;
    auto lines = ReadLines(path);
    ASSERT_TRUE(lines.ok());
    const std::size_t half = lines->size() / 2;
    WriteFile(path + ".1", {lines->begin(), lines->begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    half)});
    WriteFile(path, {lines->begin() + static_cast<std::ptrdiff_t>(half),
                     lines->end()});
  }

  auto rotated = diver.AnalyzeBundle(dir);
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(rotated->runs.size(), whole->runs.size());
  EXPECT_EQ(rotated->tuples.size(), whole->tuples.size());
  EXPECT_DOUBLE_EQ(rotated->metrics.system_failure_fraction,
                   whole->metrics.system_failure_fraction);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ld
