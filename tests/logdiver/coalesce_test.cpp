#include "logdiver/coalesce.hpp"

#include <gtest/gtest.h>

namespace ld {
namespace {

ErrorRecord Rec(std::int64_t t, ErrorCategory cat, Severity sev,
                LocScope scope, std::string loc,
                LogSource src = LogSource::kSyslog) {
  ErrorRecord rec;
  rec.time = TimePoint(t);
  rec.category = cat;
  rec.severity = sev;
  rec.scope = scope;
  rec.location = Intern(loc);
  rec.source = src;
  return rec;
}

class CoalesceTest : public ::testing::Test {
 protected:
  CoalesceTest() : machine_(Machine::Testbed(96, 24)) {
    node0_ = machine_.node(0).cname.ToString();
    node1_ = machine_.node(1).cname.ToString();
  }
  Machine machine_;
  CoalesceConfig config_;
  std::string node0_;
  std::string node1_;
};

TEST_F(CoalesceTest, MergesBurstOnSameNode) {
  std::vector<ErrorRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(Rec(1000 + i * 10, ErrorCategory::kMachineCheck,
                          Severity::kCorrected, LocScope::kNode, node0_));
  }
  CoalesceStats stats;
  const auto tuples = CoalesceEvents(machine_, records, config_, &stats);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].count, 5u);
  EXPECT_EQ(tuples[0].first, TimePoint(1000));
  EXPECT_EQ(tuples[0].last, TimePoint(1040));
  EXPECT_EQ(stats.input_events, 5u);
  EXPECT_EQ(stats.tuples, 1u);
}

TEST_F(CoalesceTest, WindowGapSplitsTuples) {
  std::vector<ErrorRecord> records = {
      Rec(1000, ErrorCategory::kMachineCheck, Severity::kCorrected,
          LocScope::kNode, node0_),
      Rec(1000 + 61, ErrorCategory::kMachineCheck, Severity::kCorrected,
          LocScope::kNode, node0_),  // beyond the 60s window
  };
  const auto tuples = CoalesceEvents(machine_, records, config_, nullptr);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST_F(CoalesceTest, DifferentNodesStaySeparate) {
  std::vector<ErrorRecord> records = {
      Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal,
          LocScope::kNode, node0_),
      Rec(1001, ErrorCategory::kMachineCheck, Severity::kFatal,
          LocScope::kNode, node1_),
  };
  const auto tuples = CoalesceEvents(machine_, records, config_, nullptr);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST_F(CoalesceTest, DifferentCategoriesStaySeparate) {
  std::vector<ErrorRecord> records = {
      Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal,
          LocScope::kNode, node0_),
      Rec(1001, ErrorCategory::kMemoryUE, Severity::kFatal, LocScope::kNode,
          node0_),
  };
  const auto tuples = CoalesceEvents(machine_, records, config_, nullptr);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST_F(CoalesceTest, CrossSourceDedupAndSeverityMax) {
  std::vector<ErrorRecord> records = {
      Rec(1000, ErrorCategory::kMachineCheck, Severity::kCorrected,
          LocScope::kNode, node0_, LogSource::kSyslog),
      Rec(1002, ErrorCategory::kMachineCheck, Severity::kFatal,
          LocScope::kNode, node0_, LogSource::kHwerr),
  };
  const auto tuples = CoalesceEvents(machine_, records, config_, nullptr);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].severity, Severity::kFatal);
  EXPECT_TRUE(tuples[0].from_syslog);
  EXPECT_TRUE(tuples[0].from_hwerr);
}

TEST_F(CoalesceTest, UnsortedInputHandled) {
  std::vector<ErrorRecord> records = {
      Rec(1040, ErrorCategory::kMachineCheck, Severity::kCorrected,
          LocScope::kNode, node0_),
      Rec(1000, ErrorCategory::kMachineCheck, Severity::kCorrected,
          LocScope::kNode, node0_),
  };
  const auto tuples = CoalesceEvents(machine_, records, config_, nullptr);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].count, 2u);
}

TEST_F(CoalesceTest, ResolvesNodeLocation) {
  const auto tuples = CoalesceEvents(
      machine_,
      {Rec(1, ErrorCategory::kNodeHeartbeat, Severity::kFatal,
           LocScope::kNode, node0_)},
      config_, nullptr);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].nodes, std::vector<NodeIndex>{0});
}

TEST_F(CoalesceTest, ResolvesBladeLocation) {
  const std::string blade = machine_.node(0).cname.BladePrefix();
  const auto tuples = CoalesceEvents(
      machine_,
      {Rec(1, ErrorCategory::kBladeFault, Severity::kFatal, LocScope::kBlade,
           blade)},
      config_, nullptr);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].nodes.size(), 4u);
}

TEST_F(CoalesceTest, ResolvesGeminiLocation) {
  const std::string gemini = machine_.node(2).cname.BladePrefix() + "g1";
  const auto tuples = CoalesceEvents(
      machine_,
      {Rec(1, ErrorCategory::kGeminiLink, Severity::kFatal, LocScope::kGemini,
           gemini)},
      config_, nullptr);
  ASSERT_EQ(tuples.size(), 1u);
  // g1 serves nodes 2 and 3 of the blade.
  EXPECT_EQ(tuples[0].nodes, (std::vector<NodeIndex>{2, 3}));
}

TEST_F(CoalesceTest, SystemScopeHasNoNodes) {
  ErrorRecord lustre = Rec(1000, ErrorCategory::kLustre, Severity::kFatal,
                           LocScope::kSystem, "");
  lustre.recovered = TimePoint(1900);
  const auto tuples = CoalesceEvents(machine_, {lustre}, config_, nullptr);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].nodes.empty());
  ASSERT_TRUE(tuples[0].recovered.has_value());
  const Interval window = tuples[0].ImpactWindow();
  EXPECT_TRUE(window.Contains(TimePoint(1500)));
  EXPECT_FALSE(window.Contains(TimePoint(2000)));
}

TEST_F(CoalesceTest, DropsUnknownComponents) {
  CoalesceStats stats;
  const auto tuples = CoalesceEvents(
      machine_,
      {Rec(1, ErrorCategory::kNodeHeartbeat, Severity::kFatal,
           LocScope::kNode, "c99-9c0s0n0")},
      config_, &stats);
  EXPECT_TRUE(tuples.empty());
  EXPECT_EQ(stats.unresolved_locations, 1u);
}

TEST_F(CoalesceTest, OutputSortedByFirstTime) {
  std::vector<ErrorRecord> records = {
      Rec(5000, ErrorCategory::kMemoryUE, Severity::kFatal, LocScope::kNode,
          node1_),
      Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal,
          LocScope::kNode, node0_),
  };
  const auto tuples = CoalesceEvents(machine_, records, config_, nullptr);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_LT(tuples[0].first, tuples[1].first);
}

}  // namespace
}  // namespace ld
