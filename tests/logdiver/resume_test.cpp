#include "logdiver/resume.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "common/crashpoint.hpp"
#include "logdiver/snapshot.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

TEST(CrashPointTest, ArmRemainingDisarm) {
  DisarmCrashPoint();
  EXPECT_FALSE(CrashPointArmed());
  EXPECT_EQ(CrashPointRemaining(), 0u);

  ArmCrashPoint(5);
  EXPECT_TRUE(CrashPointArmed());
  EXPECT_EQ(CrashPointRemaining(), 5u);
  CrashPoint("test");  // 4 left — well short of triggering
  CrashPoint("test");
  EXPECT_EQ(CrashPointRemaining(), 3u);

  DisarmCrashPoint();
  EXPECT_FALSE(CrashPointArmed());
  CrashPoint("test");  // disarmed: a no-op, not a countdown
  EXPECT_EQ(CrashPointRemaining(), 0u);
}

TEST(CrashSupervisorTest, CleanChildRunsOnce) {
  const auto outcome =
      CrashSupervisor::Run([](int attempt) { return attempt == 0 ? 0 : 99; });
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.crashes, 0);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(CrashSupervisorTest, OrdinaryFailurePassesThroughUnretried) {
  // A tripped error budget (or any plain failure) must not be retried:
  // rerunning a deterministic failure is an infinite loop.
  const auto outcome = CrashSupervisor::Run([](int) { return 3; });
  EXPECT_EQ(outcome.exit_code, 3);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.crashes, 0);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(CrashSupervisorTest, CrashIsRestartedUntilClean) {
  // Crash (exit >= 128) twice, then succeed.
  const auto outcome = CrashSupervisor::Run(
      [](int attempt) { return attempt < 2 ? kCrashExitCode : 0; });
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.crashes, 2);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(CrashSupervisorTest, HungChildIsKilledAndRetried) {
  // A child that stops making progress must not hang the supervisor:
  // the wall-clock deadline escalates to SIGKILL and the death is
  // handled like a crash — retried, and absorbed if the retry is clean.
  CrashSupervisor::Options options;
  options.timeout_ms = 200;
  const auto outcome = CrashSupervisor::Run(
      [](int attempt) -> int {
        if (attempt == 0) {
          ArmHangPoint(1);
          CrashPoint("test");  // parks forever; only SIGKILL ends it
        }
        return 0;
      },
      options);
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.crashes, 1);
  EXPECT_EQ(outcome.hangs_killed, 1);
  EXPECT_FALSE(outcome.exhausted);
}

TEST(CrashSupervisorTest, FastChildNeverTripsTheTimeout) {
  CrashSupervisor::Options options;
  options.timeout_ms = 60000;
  const auto outcome = CrashSupervisor::Run([](int) { return 0; }, options);
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.hangs_killed, 0);
}

TEST(CrashSupervisorTest, ExhaustionAfterRestartBudget) {
  CrashSupervisor::Options options;
  options.max_restarts = 2;
  const auto outcome =
      CrashSupervisor::Run([](int) { return kCrashExitCode; }, options);
  EXPECT_TRUE(outcome.exhausted);
  EXPECT_EQ(outcome.exit_code, kCrashExitCode);
  EXPECT_EQ(outcome.attempts, 3);  // initial run + 2 restarts
  EXPECT_EQ(outcome.crashes, 3);
}

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config = SmallScenario(909);
    config.workload.target_app_runs = 500;
    machine_ = new Machine(MakeMachine(config));
    // Process-unique path: ctest runs each TEST_F in its own process and
    // may run them concurrently; a shared bundle dir races remove_all
    // against another process's read.
    bundle_dir_ = new std::string(testing::TempDir() + "resume_test_bundle_" +
                                  std::to_string(::getpid()));
    std::filesystem::remove_all(*bundle_dir_);
    auto bundle = WriteBundle(*machine_, config, *bundle_dir_);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*bundle_dir_);
    delete bundle_dir_;
    delete machine_;
    bundle_dir_ = nullptr;
    machine_ = nullptr;
  }

  static Machine* machine_;
  static std::string* bundle_dir_;
};

Machine* ResumeTest::machine_ = nullptr;
std::string* ResumeTest::bundle_dir_ = nullptr;

TEST_F(ResumeTest, UninterruptedRunNeedsNoSnapshots) {
  ResumeOptions options;  // no snapshot dir
  auto result = RunResumableAnalysis(*machine_, LogDiverConfig{},
                                     StreamInputs::FromBundleDir(*bundle_dir_),
                                     options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->total_lines, 0u);
  EXPECT_GT(result->summary.runs_finalized, 0u);
  EXPECT_EQ(result->snapshots_written, 0u);
  EXPECT_EQ(result->resumed_generation, 0u);
}

TEST_F(ResumeTest, CrashResumeReproducesBaselineBitForBit) {
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);
  auto baseline =
      RunResumableAnalysis(*machine_, LogDiverConfig{}, inputs, {});
  ASSERT_TRUE(baseline.ok());
  const std::uint32_t want_report =
      FingerprintReport(baseline->summary.metrics);
  const std::uint32_t want_ingest =
      FingerprintIngest(baseline->summary.ingest);

  const std::string snap_dir = testing::TempDir() + "resume_test_snaps";
  std::filesystem::remove_all(snap_dir);
  ResumeOptions options;
  options.snapshot_dir = snap_dir;
  options.snapshot_interval = baseline->total_lines / 7 + 1;

  const auto outcome = CrashSupervisor::Run([&](int attempt) -> int {
    if (attempt == 0) {
      ArmCrashPoint(baseline->total_lines / 2);
    } else {
      DisarmCrashPoint();
    }
    auto result =
        RunResumableAnalysis(*machine_, LogDiverConfig{}, inputs, options);
    if (!result.ok()) return 2;
    if (attempt > 0 && result->resumed_generation == 0) return 3;
    return FingerprintReport(result->summary.metrics) == want_report &&
                   FingerprintIngest(result->summary.ingest) == want_ingest
               ? 0
               : 1;
  });
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.crashes, 1);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_FALSE(outcome.exhausted);
  std::filesystem::remove_all(snap_dir);
}

TEST_F(ResumeTest, SnapshotFromDifferentBundleIsRejected) {
  // Offsets past the end of the (smaller) input files prove the
  // snapshot belongs elsewhere; resuming must fail loudly, not replay
  // garbage.  The snapshot is stamped with the *correct* bundle
  // fingerprint so it reaches the offset check (a wrong fingerprint
  // would be skipped earlier — next test).
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);
  auto fingerprint = BundlePartitionFingerprint(inputs, 0);
  ASSERT_TRUE(fingerprint.ok());

  const std::string snap_dir = testing::TempDir() + "resume_test_wrong";
  std::filesystem::remove_all(snap_dir);
  SnapshotStore store(snap_dir);
  SnapshotWriter w;
  w.U32(1);  // resume-state version
  for (int s = 0; s < 4; ++s) w.U64(1u << 30);  // absurd offsets
  {
    StreamingAnalyzer empty(*machine_, LogDiverConfig{});
    empty.Snapshot(w);
  }
  ASSERT_TRUE(store.Write(w.bytes(), *fingerprint).ok());

  ResumeOptions options;
  options.snapshot_dir = snap_dir;
  auto result =
      RunResumableAnalysis(*machine_, LogDiverConfig{}, inputs, options);
  EXPECT_FALSE(result.ok());
  std::filesystem::remove_all(snap_dir);
}

TEST_F(ResumeTest, MismatchedFingerprintSnapshotIsSkippedNotLoaded) {
  // A structurally intact snapshot computed from *different* input is
  // as unusable as a torn one: the fingerprint gate skips it and the
  // analysis restarts from scratch instead of restoring foreign state.
  const StreamInputs inputs = StreamInputs::FromBundleDir(*bundle_dir_);
  const std::string snap_dir = testing::TempDir() + "resume_test_foreign";
  std::filesystem::remove_all(snap_dir);
  SnapshotStore store(snap_dir);
  SnapshotWriter w;
  w.U32(1);  // resume-state version
  for (int s = 0; s < 4; ++s) w.U64(0);
  {
    StreamingAnalyzer empty(*machine_, LogDiverConfig{});
    empty.Snapshot(w);
  }
  ASSERT_TRUE(store.Write(w.bytes(), /*fingerprint=*/0xDEADBEEF).ok());

  auto baseline =
      RunResumableAnalysis(*machine_, LogDiverConfig{}, inputs, {});
  ASSERT_TRUE(baseline.ok());

  ResumeOptions options;
  options.snapshot_dir = snap_dir;
  auto result =
      RunResumableAnalysis(*machine_, LogDiverConfig{}, inputs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->resumed_generation, 0u);  // fresh start
  EXPECT_EQ(result->lines_skipped, 0u);
  EXPECT_EQ(FingerprintReport(result->summary.metrics),
            FingerprintReport(baseline->summary.metrics));
  std::filesystem::remove_all(snap_dir);
}

}  // namespace
}  // namespace ld
