// Merge-algebra property tests: the accumulators behind the fleet's
// partial aggregates must merge associatively and order-deterministically,
// and disjoint shard partials must merge to the serial accumulator's
// *exact* snapshot bytes — bit-identity is what lets bench/fleet_campaign
// compare a faulted fleet against the serial analyzer at all.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "logdiver/coalesce.hpp"
#include "logdiver/metrics.hpp"
#include "logdiver/quarantine.hpp"
#include "logdiver/resume.hpp"
#include "logdiver/snapshot.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

constexpr std::int64_t kT0 = 1364774400;  // 2013-04-01

std::vector<std::uint8_t> Bytes(const MetricsAccumulator& acc) {
  SnapshotWriter w;
  acc.SaveState(w);
  return w.bytes();
}

/// A varied synthetic workload: outcomes, node types, scales, queue
/// waits and duplicate jobs all drawn from one seeded stream.
struct Workload {
  std::vector<AppRun> runs;
  std::vector<ClassifiedRun> classified;
  std::vector<ErrorTuple> tuples;
};

Workload MakeWorkload(std::uint64_t seed, std::size_t n_runs,
                      std::size_t n_tuples) {
  Rng rng(seed);
  Workload w;
  for (std::size_t i = 0; i < n_runs; ++i) {
    AppRun run;
    run.apid = 1000 + i;
    run.jobid = 1 + rng.UniformInt(n_runs / 2 + 1);  // duplicate jobs
    run.nodect = 1u << rng.UniformInt(12);
    run.node_type = rng.Bernoulli(0.7) ? NodeType::kXE : NodeType::kXK;
    run.start = TimePoint(kT0 + static_cast<std::int64_t>(
                                    rng.UniformInt(90 * 86400)));
    run.end = run.start + Duration(1 + rng.UniformInt(36000));
    run.has_termination = rng.Bernoulli(0.95);
    run.job_submit = run.start - Duration(rng.UniformInt(7200));
    run.job_start = run.start;
    w.runs.push_back(run);

    ClassifiedRun cls;
    cls.run_index = static_cast<std::uint32_t>(i);
    const std::uint64_t o = rng.UniformInt(5);
    cls.outcome = static_cast<AppOutcome>(o);
    if (cls.outcome == AppOutcome::kSystemFailure) {
      cls.cause = static_cast<ErrorCategory>(1 + rng.UniformInt(4));
    }
    w.classified.push_back(cls);
  }
  for (std::size_t i = 0; i < n_tuples; ++i) {
    ErrorTuple tuple;
    tuple.id = i + 1;
    tuple.category = static_cast<ErrorCategory>(1 + rng.UniformInt(6));
    tuple.severity = rng.Bernoulli(0.3) ? Severity::kFatal
                                        : Severity::kCorrected;
    tuple.count = 1 + rng.UniformInt(40);
    tuple.first = TimePoint(kT0 + static_cast<std::int64_t>(
                                      rng.UniformInt(90 * 86400)));
    tuple.last = tuple.first + Duration(rng.UniformInt(60));
    w.tuples.push_back(tuple);
  }
  return w;
}

void Accumulate(MetricsAccumulator& acc, const Workload& w, const ShardSpec& s) {
  for (std::size_t i = 0; i < w.runs.size(); ++i) {
    if (s.OwnsRun(w.runs[i].apid)) acc.AddRun(w.runs[i], w.classified[i]);
  }
  for (const ErrorTuple& tuple : w.tuples) {
    if (s.OwnsTuple(tuple.id)) acc.AddTuple(tuple);
  }
}

TEST(MergeAlgebra, ShardPartialsMergeToSerialBytes) {
  const Workload w = MakeWorkload(17, 400, 120);
  MetricsAccumulator serial;
  Accumulate(serial, w, ShardSpec{});
  const std::vector<std::uint8_t> want = Bytes(serial);

  for (std::uint32_t count : {2u, 3u, 5u, 8u}) {
    MetricsAccumulator merged;
    for (std::uint32_t i = 0; i < count; ++i) {
      MetricsAccumulator shard;
      Accumulate(shard, w, ShardSpec{i, count});
      merged.MergeFrom(shard);
    }
    EXPECT_EQ(Bytes(merged), want) << "shard count " << count;
  }
}

TEST(MergeAlgebra, MergeIsAssociative) {
  const Workload w = MakeWorkload(23, 300, 90);
  MetricsAccumulator a, b, c;
  Accumulate(a, w, ShardSpec{0, 3});
  Accumulate(b, w, ShardSpec{1, 3});
  Accumulate(c, w, ShardSpec{2, 3});

  MetricsAccumulator left = a;  // (a + b) + c
  left.MergeFrom(b);
  left.MergeFrom(c);

  MetricsAccumulator bc = b;  // a + (b + c)
  bc.MergeFrom(c);
  MetricsAccumulator right = a;
  right.MergeFrom(bc);

  EXPECT_EQ(Bytes(left), Bytes(right));
}

TEST(MergeAlgebra, MergeOrderDoesNotChangeTheBytes) {
  // The canonical order is ascending shard index, but the algebra is
  // commutative — any order must land on the same bytes, so the
  // canonical order is a convention, not a correctness requirement.
  const Workload w = MakeWorkload(29, 300, 90);
  std::vector<MetricsAccumulator> shards;
  for (std::uint32_t i = 0; i < 4; ++i) {
    MetricsAccumulator shard;
    Accumulate(shard, w, ShardSpec{i, 4});
    shards.push_back(std::move(shard));
  }
  MetricsAccumulator forward, reversed;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    forward.MergeFrom(shards[i]);
    reversed.MergeFrom(shards[shards.size() - 1 - i]);
  }
  EXPECT_EQ(Bytes(forward), Bytes(reversed));
}

TEST(MergeAlgebra, EmptyAccumulatorIsTheMergeIdentity) {
  const Workload w = MakeWorkload(31, 100, 30);
  MetricsAccumulator acc;
  Accumulate(acc, w, ShardSpec{});
  const std::vector<std::uint8_t> want = Bytes(acc);

  MetricsAccumulator left;  // empty + acc
  left.MergeFrom(acc);
  EXPECT_EQ(Bytes(left), want);

  acc.MergeFrom(MetricsAccumulator{});  // acc + empty
  EXPECT_EQ(Bytes(acc), want);
}

TEST(MergeAlgebra, InsertionOrderDoesNotChangeTheBytes) {
  // The min-apid queue-wait rule (and every other tally) must make the
  // accumulator a pure function of the run *set*, not the run order —
  // shard workers see their runs in bundle order, merges replay them in
  // shard order.
  const Workload w = MakeWorkload(37, 200, 0);
  MetricsAccumulator in_order;
  Accumulate(in_order, w, ShardSpec{});

  std::vector<std::size_t> perm(w.runs.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(41);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformInt(i)]);
  }
  MetricsAccumulator shuffled;
  for (std::size_t i : perm) shuffled.AddRun(w.runs[i], w.classified[i]);

  EXPECT_EQ(Bytes(in_order), Bytes(shuffled));
}

// --- coalescer -------------------------------------------------------

ErrorRecord Rec(std::int64_t t, ErrorCategory cat, Severity sev,
                std::string loc) {
  ErrorRecord rec;
  rec.time = TimePoint(t);
  rec.category = cat;
  rec.severity = sev;
  rec.scope = LocScope::kNode;
  rec.location = Intern(loc);
  rec.source = LogSource::kSyslog;
  return rec;
}

class CoalescerMergeTest : public ::testing::Test {
 protected:
  CoalescerMergeTest()
      : machine_(Machine::Testbed(96, 24)),
        node0_(machine_.node(0).cname.ToString()),
        node1_(machine_.node(1).cname.ToString()) {}
  StreamingCoalescer Make() { return StreamingCoalescer(machine_, {}); }
  Machine machine_;
  std::string node0_;
  std::string node1_;
};

TEST_F(CoalescerMergeTest, KeyDisjointMergePreservesTuplesAndStats) {
  StreamingCoalescer a = Make();
  StreamingCoalescer b = Make();
  a.Add(Rec(1000, ErrorCategory::kMachineCheck, Severity::kFatal, node0_));
  a.Add(Rec(1010, ErrorCategory::kMachineCheck, Severity::kFatal, node0_));
  b.Add(Rec(2000, ErrorCategory::kMemoryUE, Severity::kCorrected, node1_));

  a.MergeFrom(b);
  EXPECT_EQ(a.stats().input_events, 3u);
  const std::vector<ErrorTuple> tuples = a.FlushAll();
  ASSERT_EQ(tuples.size(), 2u);

  // Shifted ids stay unique across the merge.
  std::vector<std::uint64_t> ids;
  for (const ErrorTuple& t : tuples) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(CoalescerMergeTest, CollidingOpenKeyMergesConservatively) {
  // Same (category, location) open in both shards: the merged tuple
  // must union the spans and sum the counts rather than drop either
  // side.
  StreamingCoalescer a = Make();
  StreamingCoalescer b = Make();
  a.Add(Rec(1000, ErrorCategory::kMachineCheck, Severity::kCorrected, node0_));
  b.Add(Rec(1020, ErrorCategory::kMachineCheck, Severity::kFatal, node0_));

  a.MergeFrom(b);
  const std::vector<ErrorTuple> tuples = a.FlushAll();
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].count, 2u);
  EXPECT_EQ(tuples[0].severity, Severity::kFatal);
  EXPECT_EQ(tuples[0].first, TimePoint(1000));
  EXPECT_EQ(tuples[0].last, TimePoint(1020));
}

TEST_F(CoalescerMergeTest, MergeIsAssociativeOnDisjointKeys) {
  const auto feed = [&](StreamingCoalescer& c, const std::string& node,
                        std::int64_t t) {
    c.Add(Rec(t, ErrorCategory::kMachineCheck, Severity::kFatal, node));
  };
  const std::string node2 = machine_.node(2).cname.ToString();

  StreamingCoalescer a1 = Make(), b1 = Make(), c1 = Make();
  feed(a1, node0_, 1000);
  feed(b1, node1_, 2000);
  feed(c1, node2, 3000);
  a1.MergeFrom(b1);  // (a + b) + c
  a1.MergeFrom(c1);

  StreamingCoalescer a2 = Make(), b2 = Make(), c2 = Make();
  feed(a2, node0_, 1000);
  feed(b2, node1_, 2000);
  feed(c2, node2, 3000);
  b2.MergeFrom(c2);  // a + (b + c)
  a2.MergeFrom(b2);

  SnapshotWriter w1, w2;
  a1.SaveState(w1);
  a2.SaveState(w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
}

// --- quarantine / ingest stats ---------------------------------------

TEST(MergeAlgebra, IngestStatsMergeSumsEveryCounter) {
  IngestStats a, b;
  a.quarantined = 2;
  a.duplicate_placements = 4;
  a.watermark_regressions = 1;
  b.quarantined = 3;
  b.evicted_tuples = 7;
  b.lines_dropped_after_budget = 9;
  a.MergeFrom(b);
  EXPECT_EQ(a.quarantined, 5u);
  EXPECT_EQ(a.duplicate_placements, 4u);
  EXPECT_EQ(a.watermark_regressions, 1u);
  EXPECT_EQ(a.evicted_tuples, 7u);
  EXPECT_EQ(a.lines_dropped_after_budget, 9u);
  EXPECT_FALSE(a.clean());
}

TEST(MergeAlgebra, QuarantineSinkMergePreservesEntriesAndTotals) {
  QuarantineSink a, b;
  a.Add(LogSource::kSyslog, 3, "bad line A", ParseError("nope"));
  b.Add(LogSource::kTorque, 7, "bad line B", ParseError("nah"));
  const std::uint64_t want_total = a.total() + b.total();
  a.MergeFrom(std::move(b));
  EXPECT_EQ(a.total(), want_total);
  ASSERT_EQ(a.entries().size(), 2u);
  EXPECT_EQ(a.count(LogSource::kSyslog), 1u);
  EXPECT_EQ(a.count(LogSource::kTorque), 1u);
}

// --- end to end: dirty bundle, real pipeline -------------------------

TEST(MergeAlgebra, DirtyBundleShardsMergeToSerialSnapshotBytes) {
  // The full pipeline over a generated bundle with injected garbage
  // lines (quarantine live on every worker): shard-filtered analyzer
  // accumulators must merge to the serial accumulator's exact bytes.
  ScenarioConfig config = SmallScenario(4242);
  config.workload.target_app_runs = 250;
  const Machine machine = MakeMachine(config);
  const std::string dir = testing::TempDir() + "merge_test_bundle_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  auto bundle = WriteBundle(machine, config, dir);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  {
    std::ofstream f(dir + "/syslog.log", std::ios::app);
    f << "not a syslog line at all\n";
    f << "2013-04-91T99:99:99 nonsense from nowhere\n";
  }
  const StreamInputs inputs = StreamInputs::FromBundleDir(dir);

  const LogDiverConfig serial_config;
  StreamingAnalyzer serial(machine, serial_config);
  auto total = ReplayBundle(serial_config, inputs, {}, serial);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  const StreamingAnalyzer::Summary summary = serial.Finalize();
  ASSERT_GT(summary.ingest.quarantined, 0u);  // the dirt registered
  const std::vector<std::uint8_t> want = Bytes(serial.metrics_accumulator());

  for (std::uint32_t count : {2u, 5u}) {
    MetricsAccumulator merged(serial_config.metrics);
    for (std::uint32_t i = 0; i < count; ++i) {
      LogDiverConfig shard_config = serial_config;
      shard_config.shard = ShardSpec{i, count};
      StreamingAnalyzer analyzer(machine, shard_config);
      ASSERT_TRUE(ReplayBundle(shard_config, inputs, {}, analyzer).ok());
      analyzer.Finalize();
      merged.MergeFrom(analyzer.metrics_accumulator());
    }
    EXPECT_EQ(Bytes(merged), want) << "shard count " << count;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ld
