# Empty compiler generated dependencies file for ld_tests.
# This may be replaced when dependencies are built.
