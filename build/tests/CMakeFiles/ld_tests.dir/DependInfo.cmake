
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/baselines_test.cpp" "tests/CMakeFiles/ld_tests.dir/analysis/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/analysis/baselines_test.cpp.o.d"
  "/root/repo/tests/analysis/bootstrap_test.cpp" "tests/CMakeFiles/ld_tests.dir/analysis/bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/analysis/bootstrap_test.cpp.o.d"
  "/root/repo/tests/analysis/checkpoint_test.cpp" "tests/CMakeFiles/ld_tests.dir/analysis/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/analysis/checkpoint_test.cpp.o.d"
  "/root/repo/tests/analysis/scaling_test.cpp" "tests/CMakeFiles/ld_tests.dir/analysis/scaling_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/analysis/scaling_test.cpp.o.d"
  "/root/repo/tests/analysis/scoring_test.cpp" "tests/CMakeFiles/ld_tests.dir/analysis/scoring_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/analysis/scoring_test.cpp.o.d"
  "/root/repo/tests/analysis/users_test.cpp" "tests/CMakeFiles/ld_tests.dir/analysis/users_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/analysis/users_test.cpp.o.d"
  "/root/repo/tests/common/csv_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/csv_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/csv_test.cpp.o.d"
  "/root/repo/tests/common/distributions_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/distributions_test.cpp.o.d"
  "/root/repo/tests/common/interval_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/interval_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/interval_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/status_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/status_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/status_test.cpp.o.d"
  "/root/repo/tests/common/strings_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/strings_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/strings_test.cpp.o.d"
  "/root/repo/tests/common/time_test.cpp" "tests/CMakeFiles/ld_tests.dir/common/time_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/common/time_test.cpp.o.d"
  "/root/repo/tests/faults/injector_test.cpp" "tests/CMakeFiles/ld_tests.dir/faults/injector_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/faults/injector_test.cpp.o.d"
  "/root/repo/tests/faults/taxonomy_test.cpp" "tests/CMakeFiles/ld_tests.dir/faults/taxonomy_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/faults/taxonomy_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/ld_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/ld_tests.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/logdiver/alps_parser_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/alps_parser_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/alps_parser_test.cpp.o.d"
  "/root/repo/tests/logdiver/coalesce_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/coalesce_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/coalesce_test.cpp.o.d"
  "/root/repo/tests/logdiver/correlate_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/correlate_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/correlate_test.cpp.o.d"
  "/root/repo/tests/logdiver/export_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/export_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/export_test.cpp.o.d"
  "/root/repo/tests/logdiver/hwerr_parser_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/hwerr_parser_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/hwerr_parser_test.cpp.o.d"
  "/root/repo/tests/logdiver/metrics_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/metrics_test.cpp.o.d"
  "/root/repo/tests/logdiver/reconstruct_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/reconstruct_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/reconstruct_test.cpp.o.d"
  "/root/repo/tests/logdiver/report_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/report_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/report_test.cpp.o.d"
  "/root/repo/tests/logdiver/rotated_logs_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/rotated_logs_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/rotated_logs_test.cpp.o.d"
  "/root/repo/tests/logdiver/streaming_coalesce_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/streaming_coalesce_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/streaming_coalesce_test.cpp.o.d"
  "/root/repo/tests/logdiver/streaming_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/streaming_test.cpp.o.d"
  "/root/repo/tests/logdiver/syslog_parser_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/syslog_parser_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/syslog_parser_test.cpp.o.d"
  "/root/repo/tests/logdiver/torque_parser_test.cpp" "tests/CMakeFiles/ld_tests.dir/logdiver/torque_parser_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/logdiver/torque_parser_test.cpp.o.d"
  "/root/repo/tests/simlog/emitters_test.cpp" "tests/CMakeFiles/ld_tests.dir/simlog/emitters_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/simlog/emitters_test.cpp.o.d"
  "/root/repo/tests/simlog/scenario_test.cpp" "tests/CMakeFiles/ld_tests.dir/simlog/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/simlog/scenario_test.cpp.o.d"
  "/root/repo/tests/topology/cname_test.cpp" "tests/CMakeFiles/ld_tests.dir/topology/cname_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/topology/cname_test.cpp.o.d"
  "/root/repo/tests/topology/machine_test.cpp" "tests/CMakeFiles/ld_tests.dir/topology/machine_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/topology/machine_test.cpp.o.d"
  "/root/repo/tests/workload/allocator_test.cpp" "tests/CMakeFiles/ld_tests.dir/workload/allocator_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/workload/allocator_test.cpp.o.d"
  "/root/repo/tests/workload/generator_test.cpp" "tests/CMakeFiles/ld_tests.dir/workload/generator_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/workload/generator_test.cpp.o.d"
  "/root/repo/tests/workload/scheduler_test.cpp" "tests/CMakeFiles/ld_tests.dir/workload/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/workload/scheduler_test.cpp.o.d"
  "/root/repo/tests/workload/swf_test.cpp" "tests/CMakeFiles/ld_tests.dir/workload/swf_test.cpp.o" "gcc" "tests/CMakeFiles/ld_tests.dir/workload/swf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ld_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ld_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ld_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/simlog/CMakeFiles/ld_simlog.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiver/CMakeFiles/ld_logdiver.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ld_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
