# Empty dependencies file for checkpoint_whatif.
# This may be replaced when dependencies are built.
