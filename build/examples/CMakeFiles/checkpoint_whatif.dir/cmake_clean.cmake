file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_whatif.dir/checkpoint_whatif.cpp.o"
  "CMakeFiles/checkpoint_whatif.dir/checkpoint_whatif.cpp.o.d"
  "checkpoint_whatif"
  "checkpoint_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
