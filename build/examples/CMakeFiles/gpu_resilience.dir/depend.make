# Empty dependencies file for gpu_resilience.
# This may be replaced when dependencies are built.
