file(REMOVE_RECURSE
  "CMakeFiles/gpu_resilience.dir/gpu_resilience.cpp.o"
  "CMakeFiles/gpu_resilience.dir/gpu_resilience.cpp.o.d"
  "gpu_resilience"
  "gpu_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
