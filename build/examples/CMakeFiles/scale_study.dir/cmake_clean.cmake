file(REMOVE_RECURSE
  "CMakeFiles/scale_study.dir/scale_study.cpp.o"
  "CMakeFiles/scale_study.dir/scale_study.cpp.o.d"
  "scale_study"
  "scale_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
