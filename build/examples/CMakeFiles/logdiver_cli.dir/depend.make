# Empty dependencies file for logdiver_cli.
# This may be replaced when dependencies are built.
