file(REMOVE_RECURSE
  "CMakeFiles/logdiver_cli.dir/logdiver_cli.cpp.o"
  "CMakeFiles/logdiver_cli.dir/logdiver_cli.cpp.o.d"
  "logdiver_cli"
  "logdiver_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logdiver_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
