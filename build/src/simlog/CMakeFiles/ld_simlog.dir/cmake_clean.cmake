file(REMOVE_RECURSE
  "CMakeFiles/ld_simlog.dir/emitters.cpp.o"
  "CMakeFiles/ld_simlog.dir/emitters.cpp.o.d"
  "CMakeFiles/ld_simlog.dir/scenario.cpp.o"
  "CMakeFiles/ld_simlog.dir/scenario.cpp.o.d"
  "libld_simlog.a"
  "libld_simlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_simlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
