file(REMOVE_RECURSE
  "libld_simlog.a"
)
