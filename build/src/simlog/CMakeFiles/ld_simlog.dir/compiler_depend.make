# Empty compiler generated dependencies file for ld_simlog.
# This may be replaced when dependencies are built.
