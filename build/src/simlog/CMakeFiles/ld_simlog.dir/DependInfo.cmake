
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simlog/emitters.cpp" "src/simlog/CMakeFiles/ld_simlog.dir/emitters.cpp.o" "gcc" "src/simlog/CMakeFiles/ld_simlog.dir/emitters.cpp.o.d"
  "/root/repo/src/simlog/scenario.cpp" "src/simlog/CMakeFiles/ld_simlog.dir/scenario.cpp.o" "gcc" "src/simlog/CMakeFiles/ld_simlog.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ld_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ld_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ld_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
