file(REMOVE_RECURSE
  "CMakeFiles/ld_analysis.dir/baselines.cpp.o"
  "CMakeFiles/ld_analysis.dir/baselines.cpp.o.d"
  "CMakeFiles/ld_analysis.dir/bootstrap.cpp.o"
  "CMakeFiles/ld_analysis.dir/bootstrap.cpp.o.d"
  "CMakeFiles/ld_analysis.dir/checkpoint.cpp.o"
  "CMakeFiles/ld_analysis.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ld_analysis.dir/scaling.cpp.o"
  "CMakeFiles/ld_analysis.dir/scaling.cpp.o.d"
  "CMakeFiles/ld_analysis.dir/scoring.cpp.o"
  "CMakeFiles/ld_analysis.dir/scoring.cpp.o.d"
  "CMakeFiles/ld_analysis.dir/users.cpp.o"
  "CMakeFiles/ld_analysis.dir/users.cpp.o.d"
  "libld_analysis.a"
  "libld_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
