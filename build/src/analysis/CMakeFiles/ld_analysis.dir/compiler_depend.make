# Empty compiler generated dependencies file for ld_analysis.
# This may be replaced when dependencies are built.
