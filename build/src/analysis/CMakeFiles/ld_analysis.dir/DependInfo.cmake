
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/baselines.cpp" "src/analysis/CMakeFiles/ld_analysis.dir/baselines.cpp.o" "gcc" "src/analysis/CMakeFiles/ld_analysis.dir/baselines.cpp.o.d"
  "/root/repo/src/analysis/bootstrap.cpp" "src/analysis/CMakeFiles/ld_analysis.dir/bootstrap.cpp.o" "gcc" "src/analysis/CMakeFiles/ld_analysis.dir/bootstrap.cpp.o.d"
  "/root/repo/src/analysis/checkpoint.cpp" "src/analysis/CMakeFiles/ld_analysis.dir/checkpoint.cpp.o" "gcc" "src/analysis/CMakeFiles/ld_analysis.dir/checkpoint.cpp.o.d"
  "/root/repo/src/analysis/scaling.cpp" "src/analysis/CMakeFiles/ld_analysis.dir/scaling.cpp.o" "gcc" "src/analysis/CMakeFiles/ld_analysis.dir/scaling.cpp.o.d"
  "/root/repo/src/analysis/scoring.cpp" "src/analysis/CMakeFiles/ld_analysis.dir/scoring.cpp.o" "gcc" "src/analysis/CMakeFiles/ld_analysis.dir/scoring.cpp.o.d"
  "/root/repo/src/analysis/users.cpp" "src/analysis/CMakeFiles/ld_analysis.dir/users.cpp.o" "gcc" "src/analysis/CMakeFiles/ld_analysis.dir/users.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiver/CMakeFiles/ld_logdiver.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ld_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ld_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ld_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
