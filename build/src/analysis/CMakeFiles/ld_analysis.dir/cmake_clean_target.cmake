file(REMOVE_RECURSE
  "libld_analysis.a"
)
