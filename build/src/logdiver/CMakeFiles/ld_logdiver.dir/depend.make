# Empty dependencies file for ld_logdiver.
# This may be replaced when dependencies are built.
