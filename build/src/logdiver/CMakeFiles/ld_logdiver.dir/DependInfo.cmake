
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logdiver/alps_parser.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/alps_parser.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/alps_parser.cpp.o.d"
  "/root/repo/src/logdiver/coalesce.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/coalesce.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/coalesce.cpp.o.d"
  "/root/repo/src/logdiver/correlate.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/correlate.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/correlate.cpp.o.d"
  "/root/repo/src/logdiver/export.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/export.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/export.cpp.o.d"
  "/root/repo/src/logdiver/hwerr_parser.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/hwerr_parser.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/hwerr_parser.cpp.o.d"
  "/root/repo/src/logdiver/logdiver.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/logdiver.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/logdiver.cpp.o.d"
  "/root/repo/src/logdiver/metrics.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/metrics.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/metrics.cpp.o.d"
  "/root/repo/src/logdiver/reconstruct.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/reconstruct.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/reconstruct.cpp.o.d"
  "/root/repo/src/logdiver/records.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/records.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/records.cpp.o.d"
  "/root/repo/src/logdiver/report.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/report.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/report.cpp.o.d"
  "/root/repo/src/logdiver/streaming.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/streaming.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/streaming.cpp.o.d"
  "/root/repo/src/logdiver/syslog_parser.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/syslog_parser.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/syslog_parser.cpp.o.d"
  "/root/repo/src/logdiver/torque_parser.cpp" "src/logdiver/CMakeFiles/ld_logdiver.dir/torque_parser.cpp.o" "gcc" "src/logdiver/CMakeFiles/ld_logdiver.dir/torque_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ld_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ld_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ld_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
