file(REMOVE_RECURSE
  "libld_logdiver.a"
)
