file(REMOVE_RECURSE
  "CMakeFiles/ld_logdiver.dir/alps_parser.cpp.o"
  "CMakeFiles/ld_logdiver.dir/alps_parser.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/coalesce.cpp.o"
  "CMakeFiles/ld_logdiver.dir/coalesce.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/correlate.cpp.o"
  "CMakeFiles/ld_logdiver.dir/correlate.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/export.cpp.o"
  "CMakeFiles/ld_logdiver.dir/export.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/hwerr_parser.cpp.o"
  "CMakeFiles/ld_logdiver.dir/hwerr_parser.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/logdiver.cpp.o"
  "CMakeFiles/ld_logdiver.dir/logdiver.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/metrics.cpp.o"
  "CMakeFiles/ld_logdiver.dir/metrics.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/reconstruct.cpp.o"
  "CMakeFiles/ld_logdiver.dir/reconstruct.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/records.cpp.o"
  "CMakeFiles/ld_logdiver.dir/records.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/report.cpp.o"
  "CMakeFiles/ld_logdiver.dir/report.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/streaming.cpp.o"
  "CMakeFiles/ld_logdiver.dir/streaming.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/syslog_parser.cpp.o"
  "CMakeFiles/ld_logdiver.dir/syslog_parser.cpp.o.d"
  "CMakeFiles/ld_logdiver.dir/torque_parser.cpp.o"
  "CMakeFiles/ld_logdiver.dir/torque_parser.cpp.o.d"
  "libld_logdiver.a"
  "libld_logdiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_logdiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
