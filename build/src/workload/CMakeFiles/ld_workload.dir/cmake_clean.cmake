file(REMOVE_RECURSE
  "CMakeFiles/ld_workload.dir/allocator.cpp.o"
  "CMakeFiles/ld_workload.dir/allocator.cpp.o.d"
  "CMakeFiles/ld_workload.dir/generator.cpp.o"
  "CMakeFiles/ld_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ld_workload.dir/scheduler.cpp.o"
  "CMakeFiles/ld_workload.dir/scheduler.cpp.o.d"
  "CMakeFiles/ld_workload.dir/swf.cpp.o"
  "CMakeFiles/ld_workload.dir/swf.cpp.o.d"
  "CMakeFiles/ld_workload.dir/types.cpp.o"
  "CMakeFiles/ld_workload.dir/types.cpp.o.d"
  "libld_workload.a"
  "libld_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
