
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/allocator.cpp" "src/workload/CMakeFiles/ld_workload.dir/allocator.cpp.o" "gcc" "src/workload/CMakeFiles/ld_workload.dir/allocator.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/ld_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/ld_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/scheduler.cpp" "src/workload/CMakeFiles/ld_workload.dir/scheduler.cpp.o" "gcc" "src/workload/CMakeFiles/ld_workload.dir/scheduler.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/ld_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/ld_workload.dir/swf.cpp.o.d"
  "/root/repo/src/workload/types.cpp" "src/workload/CMakeFiles/ld_workload.dir/types.cpp.o" "gcc" "src/workload/CMakeFiles/ld_workload.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ld_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
