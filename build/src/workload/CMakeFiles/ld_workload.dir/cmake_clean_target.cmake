file(REMOVE_RECURSE
  "libld_workload.a"
)
