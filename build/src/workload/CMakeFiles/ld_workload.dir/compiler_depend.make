# Empty compiler generated dependencies file for ld_workload.
# This may be replaced when dependencies are built.
