file(REMOVE_RECURSE
  "libld_faults.a"
)
