file(REMOVE_RECURSE
  "CMakeFiles/ld_faults.dir/injector.cpp.o"
  "CMakeFiles/ld_faults.dir/injector.cpp.o.d"
  "CMakeFiles/ld_faults.dir/taxonomy.cpp.o"
  "CMakeFiles/ld_faults.dir/taxonomy.cpp.o.d"
  "libld_faults.a"
  "libld_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
