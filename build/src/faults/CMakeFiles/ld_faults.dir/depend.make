# Empty dependencies file for ld_faults.
# This may be replaced when dependencies are built.
