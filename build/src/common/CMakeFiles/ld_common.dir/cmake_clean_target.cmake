file(REMOVE_RECURSE
  "libld_common.a"
)
