file(REMOVE_RECURSE
  "CMakeFiles/ld_common.dir/csv.cpp.o"
  "CMakeFiles/ld_common.dir/csv.cpp.o.d"
  "CMakeFiles/ld_common.dir/distributions.cpp.o"
  "CMakeFiles/ld_common.dir/distributions.cpp.o.d"
  "CMakeFiles/ld_common.dir/interval.cpp.o"
  "CMakeFiles/ld_common.dir/interval.cpp.o.d"
  "CMakeFiles/ld_common.dir/rng.cpp.o"
  "CMakeFiles/ld_common.dir/rng.cpp.o.d"
  "CMakeFiles/ld_common.dir/stats.cpp.o"
  "CMakeFiles/ld_common.dir/stats.cpp.o.d"
  "CMakeFiles/ld_common.dir/strings.cpp.o"
  "CMakeFiles/ld_common.dir/strings.cpp.o.d"
  "CMakeFiles/ld_common.dir/time.cpp.o"
  "CMakeFiles/ld_common.dir/time.cpp.o.d"
  "libld_common.a"
  "libld_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
