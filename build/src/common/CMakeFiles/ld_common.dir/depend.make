# Empty dependencies file for ld_common.
# This may be replaced when dependencies are built.
