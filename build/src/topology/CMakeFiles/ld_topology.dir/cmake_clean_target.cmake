file(REMOVE_RECURSE
  "libld_topology.a"
)
