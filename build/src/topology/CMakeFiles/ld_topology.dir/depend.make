# Empty dependencies file for ld_topology.
# This may be replaced when dependencies are built.
