file(REMOVE_RECURSE
  "CMakeFiles/ld_topology.dir/cname.cpp.o"
  "CMakeFiles/ld_topology.dir/cname.cpp.o.d"
  "CMakeFiles/ld_topology.dir/machine.cpp.o"
  "CMakeFiles/ld_topology.dir/machine.cpp.o.d"
  "libld_topology.a"
  "libld_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
