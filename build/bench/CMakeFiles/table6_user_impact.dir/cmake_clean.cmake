file(REMOVE_RECURSE
  "CMakeFiles/table6_user_impact.dir/table6_user_impact.cpp.o"
  "CMakeFiles/table6_user_impact.dir/table6_user_impact.cpp.o.d"
  "table6_user_impact"
  "table6_user_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_user_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
