# Empty compiler generated dependencies file for table6_user_impact.
# This may be replaced when dependencies are built.
