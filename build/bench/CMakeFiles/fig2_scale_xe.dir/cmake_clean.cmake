file(REMOVE_RECURSE
  "CMakeFiles/fig2_scale_xe.dir/fig2_scale_xe.cpp.o"
  "CMakeFiles/fig2_scale_xe.dir/fig2_scale_xe.cpp.o.d"
  "fig2_scale_xe"
  "fig2_scale_xe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scale_xe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
