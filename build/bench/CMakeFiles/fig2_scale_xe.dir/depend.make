# Empty dependencies file for fig2_scale_xe.
# This may be replaced when dependencies are built.
