file(REMOVE_RECURSE
  "CMakeFiles/whatif_detection.dir/whatif_detection.cpp.o"
  "CMakeFiles/whatif_detection.dir/whatif_detection.cpp.o.d"
  "whatif_detection"
  "whatif_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
