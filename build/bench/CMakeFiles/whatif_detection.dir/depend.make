# Empty dependencies file for whatif_detection.
# This may be replaced when dependencies are built.
