file(REMOVE_RECURSE
  "CMakeFiles/ablation_correlation.dir/ablation_correlation.cpp.o"
  "CMakeFiles/ablation_correlation.dir/ablation_correlation.cpp.o.d"
  "ablation_correlation"
  "ablation_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
