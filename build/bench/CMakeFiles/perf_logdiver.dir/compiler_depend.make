# Empty compiler generated dependencies file for perf_logdiver.
# This may be replaced when dependencies are built.
