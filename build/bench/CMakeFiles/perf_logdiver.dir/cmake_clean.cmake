file(REMOVE_RECURSE
  "CMakeFiles/perf_logdiver.dir/perf_logdiver.cpp.o"
  "CMakeFiles/perf_logdiver.dir/perf_logdiver.cpp.o.d"
  "perf_logdiver"
  "perf_logdiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_logdiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
