# Empty compiler generated dependencies file for whatif_checkpoint.
# This may be replaced when dependencies are built.
