file(REMOVE_RECURSE
  "CMakeFiles/whatif_checkpoint.dir/whatif_checkpoint.cpp.o"
  "CMakeFiles/whatif_checkpoint.dir/whatif_checkpoint.cpp.o.d"
  "whatif_checkpoint"
  "whatif_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
