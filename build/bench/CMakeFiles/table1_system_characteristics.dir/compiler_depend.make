# Empty compiler generated dependencies file for table1_system_characteristics.
# This may be replaced when dependencies are built.
