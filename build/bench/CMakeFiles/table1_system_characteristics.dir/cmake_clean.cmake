file(REMOVE_RECURSE
  "CMakeFiles/table1_system_characteristics.dir/table1_system_characteristics.cpp.o"
  "CMakeFiles/table1_system_characteristics.dir/table1_system_characteristics.cpp.o.d"
  "table1_system_characteristics"
  "table1_system_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_system_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
