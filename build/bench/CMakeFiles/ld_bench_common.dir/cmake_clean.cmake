file(REMOVE_RECURSE
  "CMakeFiles/ld_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ld_bench_common.dir/bench_common.cpp.o.d"
  "libld_bench_common.a"
  "libld_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
