# Empty dependencies file for ld_bench_common.
# This may be replaced when dependencies are built.
