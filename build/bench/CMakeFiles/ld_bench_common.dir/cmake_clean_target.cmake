file(REMOVE_RECURSE
  "libld_bench_common.a"
)
