# Empty dependencies file for fig1_workload_cdf.
# This may be replaced when dependencies are built.
