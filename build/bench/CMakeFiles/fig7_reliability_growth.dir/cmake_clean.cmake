file(REMOVE_RECURSE
  "CMakeFiles/fig7_reliability_growth.dir/fig7_reliability_growth.cpp.o"
  "CMakeFiles/fig7_reliability_growth.dir/fig7_reliability_growth.cpp.o.d"
  "fig7_reliability_growth"
  "fig7_reliability_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_reliability_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
