# Empty compiler generated dependencies file for fig7_reliability_growth.
# This may be replaced when dependencies are built.
