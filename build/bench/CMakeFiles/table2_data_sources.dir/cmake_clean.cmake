file(REMOVE_RECURSE
  "CMakeFiles/table2_data_sources.dir/table2_data_sources.cpp.o"
  "CMakeFiles/table2_data_sources.dir/table2_data_sources.cpp.o.d"
  "table2_data_sources"
  "table2_data_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_data_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
