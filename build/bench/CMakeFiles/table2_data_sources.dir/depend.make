# Empty dependencies file for table2_data_sources.
# This may be replaced when dependencies are built.
