file(REMOVE_RECURSE
  "CMakeFiles/fig3_scale_xk.dir/fig3_scale_xk.cpp.o"
  "CMakeFiles/fig3_scale_xk.dir/fig3_scale_xk.cpp.o.d"
  "fig3_scale_xk"
  "fig3_scale_xk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scale_xk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
