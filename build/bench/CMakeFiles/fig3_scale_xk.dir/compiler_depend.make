# Empty compiler generated dependencies file for fig3_scale_xk.
# This may be replaced when dependencies are built.
