file(REMOVE_RECURSE
  "CMakeFiles/table7_incident_impact.dir/table7_incident_impact.cpp.o"
  "CMakeFiles/table7_incident_impact.dir/table7_incident_impact.cpp.o.d"
  "table7_incident_impact"
  "table7_incident_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_incident_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
