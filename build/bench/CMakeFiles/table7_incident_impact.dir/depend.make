# Empty dependencies file for table7_incident_impact.
# This may be replaced when dependencies are built.
