file(REMOVE_RECURSE
  "CMakeFiles/fig6_detection_gap.dir/fig6_detection_gap.cpp.o"
  "CMakeFiles/fig6_detection_gap.dir/fig6_detection_gap.cpp.o.d"
  "fig6_detection_gap"
  "fig6_detection_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_detection_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
