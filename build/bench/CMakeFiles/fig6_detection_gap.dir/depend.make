# Empty dependencies file for fig6_detection_gap.
# This may be replaced when dependencies are built.
