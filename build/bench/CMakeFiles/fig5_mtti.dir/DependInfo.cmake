
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_mtti.cpp" "bench/CMakeFiles/fig5_mtti.dir/fig5_mtti.cpp.o" "gcc" "bench/CMakeFiles/fig5_mtti.dir/fig5_mtti.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ld_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simlog/CMakeFiles/ld_simlog.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ld_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/logdiver/CMakeFiles/ld_logdiver.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/ld_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ld_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ld_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
