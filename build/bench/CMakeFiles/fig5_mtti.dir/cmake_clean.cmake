file(REMOVE_RECURSE
  "CMakeFiles/fig5_mtti.dir/fig5_mtti.cpp.o"
  "CMakeFiles/fig5_mtti.dir/fig5_mtti.cpp.o.d"
  "fig5_mtti"
  "fig5_mtti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mtti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
