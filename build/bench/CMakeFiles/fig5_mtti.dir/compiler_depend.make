# Empty compiler generated dependencies file for fig5_mtti.
# This may be replaced when dependencies are built.
