file(REMOVE_RECURSE
  "CMakeFiles/table4_error_categories.dir/table4_error_categories.cpp.o"
  "CMakeFiles/table4_error_categories.dir/table4_error_categories.cpp.o.d"
  "table4_error_categories"
  "table4_error_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_error_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
