# Empty dependencies file for table4_error_categories.
# This may be replaced when dependencies are built.
