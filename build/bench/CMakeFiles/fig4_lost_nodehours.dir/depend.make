# Empty dependencies file for fig4_lost_nodehours.
# This may be replaced when dependencies are built.
