file(REMOVE_RECURSE
  "CMakeFiles/fig4_lost_nodehours.dir/fig4_lost_nodehours.cpp.o"
  "CMakeFiles/fig4_lost_nodehours.dir/fig4_lost_nodehours.cpp.o.d"
  "fig4_lost_nodehours"
  "fig4_lost_nodehours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lost_nodehours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
