// Table 1: Blue Waters system characteristics — the machine model the
// whole study runs on.  Pure topology; no simulation.
#include <iostream>

#include "common/strings.hpp"
#include "logdiver/report.hpp"
#include "topology/machine.hpp"

int main() {
  std::cout << "=== Table 1: system characteristics (Blue Waters model) "
               "===\n\n";
  const ld::Machine bw = ld::Machine::BlueWaters();

  std::uint64_t xe_dimms = 0, xk_dimms = 0, gpus = 0;
  for (const ld::Node& node : bw.nodes()) {
    if (node.type == ld::NodeType::kXE) xe_dimms += node.dimm_count;
    if (node.type == ld::NodeType::kXK) {
      xk_dimms += node.dimm_count;
      gpus += node.has_gpu ? 1 : 0;
    }
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"characteristic", "value"});
  rows.push_back({"cabinets", "288 (24 x 12)"});
  rows.push_back({"node slots", ld::WithThousands(bw.node_count())});
  rows.push_back({"XE6 compute nodes (CPU)", ld::WithThousands(bw.xe_count())});
  rows.push_back({"XK7 hybrid nodes (CPU+GPU)",
                  ld::WithThousands(bw.xk_count())});
  rows.push_back({"service nodes", ld::WithThousands(bw.service_count())});
  rows.push_back({"NVIDIA K20X GPUs", ld::WithThousands(gpus)});
  rows.push_back({"DDR3 DIMMs (XE)", ld::WithThousands(xe_dimms)});
  rows.push_back({"DDR3 DIMMs (XK)", ld::WithThousands(xk_dimms)});
  rows.push_back({"Gemini routers (2 nodes each)",
                  ld::WithThousands(bw.node_count() / 2)});
  rows.push_back({"interconnect", "Gemini 3-D torus"});
  rows.push_back({"filesystem", "Lustre (Sonexion), modeled system-wide"});
  std::cout << ld::RenderTable(rows);

  // Spot checks a reader can verify against the paper.
  std::cout << "\npaper: 22,640 XE + 4,224 XK nodes, 13.1 PF hybrid Cray "
               "XE6/XK7, 518 production days measured\n";
  return 0;
}
