// What-if (extension): simulation-backed checkpoint policy study.
//
// Derives per-scale MTTI from the measured failure-probability curve,
// then *simulates* checkpoint/restart under that interruption rate for
// several interval choices, validating the Young/Daly rule against the
// no-checkpoint baseline — the actionable conclusion of the paper's
// measurements.
#include <cmath>
#include <iostream>

#include "analysis/checkpoint.hpp"
#include "analysis/scaling.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  BenchOptions defaults;
  defaults.target_apps = 120000;
  defaults.large_bucket_boost = 40.0;
  const BenchOptions options = ld::bench::OptionsFromEnv(defaults);
  ld::bench::PrintBenchHeader(
      "What-if (extension): checkpoint policy under measured MTTI", options);

  const auto bench = ld::bench::RunBench(options);

  const double work_hours = 24.0;       // a day of useful compute
  const double ckpt_cost_hours = 5.0 / 60.0;
  std::cout << "application: " << work_hours << " h of work, "
            << ld::FormatDouble(ckpt_cost_hours * 60, 0)
            << "-minute checkpoints\n\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"nodes", "MTTI (h)", "policy", "interval (h)",
                  "mean makespan (h)", "efficiency %", "interruptions"});
  ld::Rng rng(17);
  for (double nodes : {2048.0, 8192.0, 22000.0}) {
    auto p = ld::InterpolateScaleCurve(bench.analysis.metrics.xe_scale, nodes);
    if (!p.ok()) continue;
    // Per-run failure probability of a nominal 5h run -> hourly rate.
    const double p5 = std::min(0.95, std::max(1e-6, *p));
    const double mtti = -5.0 / std::log(1.0 - p5);

    const double daly = ld::DalyInterval(ckpt_cost_hours, mtti);
    struct Policy {
      const char* name;
      double interval;
    };
    const Policy policies[] = {
        {"none", 0.0},
        {"daly/4", daly / 4.0},
        {"daly", daly},
        {"daly*4", daly * 4.0},
    };
    for (const Policy& policy : policies) {
      ld::CheckpointRunConfig config;
      config.work_hours = work_hours;
      config.checkpoint_cost_hours = ckpt_cost_hours;
      config.restart_cost_hours = ckpt_cost_hours;
      config.interval_hours = policy.interval;
      config.max_makespan_hours = 5000.0;
      const ld::CheckpointStudy study =
          ld::RunCheckpointStudy(config, mtti, 300, rng);
      rows.push_back(
          {ld::WithThousands(static_cast<std::uint64_t>(nodes)),
           ld::FormatDouble(mtti, 1), policy.name,
           ld::FormatDouble(policy.interval, 2),
           ld::FormatDouble(study.mean_makespan_hours, 1),
           ld::FormatDouble(study.mean_useful_fraction * 100.0, 1),
           ld::FormatDouble(study.mean_interruptions, 1)});
    }
  }
  std::cout << ld::RenderTable(rows);
  std::cout << "\nexpected shape: at small scale checkpointing barely "
               "matters; at full machine scale the no-checkpoint makespan "
               "balloons while the Daly interval sits at (or near) the "
               "sweep optimum\n";
  return 0;
}
