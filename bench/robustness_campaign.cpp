// Robustness campaign: dirty-log fault injection against the hardened
// ingestion pipeline.
//
// One clean simulated campaign is rendered once; every cell of the
// (operator x corruption-rate) sweep then corrupts a fresh copy of the
// rendered bundle with the LogCorruptor and runs BOTH pipelines —
// batch LogDiver::Analyze and the watermark-driven StreamingAnalyzer —
// over the dirty logs, scoring each classification against the
// injector's (uncorrupted) ground truth.  Because the corruption ledger
// says exactly what was done to the logs, the accuracy-vs-corruption
// table is a direct measurement of graceful degradation.
//
// Assertions (exit 1 on violation):
//   - the zero-corruption pass reproduces the clean classifications
//     exactly, with an empty quarantine and all ingest counters zero;
//   - every sweep cell completes without a crash or a pipeline error;
//   - at the gentlest rate, accuracy stays within a small margin of the
//     clean baseline for every operator (the "graceful" in graceful
//     degradation).
//
// Environment knobs:
//   LD_ROBUST_APPS  target application runs (default 8000)
//   LD_ROBUST_SEED  campaign + corruption seed (default 7)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <vector>

#include "analysis/scoring.hpp"
#include "faults/corruptor.hpp"
#include "logdiver/snapshot.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

/// Cross-checks that the chunk-parallel parse path produces bit-identical
/// results to the serial one on this (possibly dirty) bundle: same
/// metrics fingerprint, same ingest fingerprint, same quarantine.
bool ParallelMatchesSerial(const Machine& machine, const LogSet& logs,
                           const AnalysisResult& serial, const char* label) {
  LogDiverConfig config;
  config.threads = 4;
  config.parse_chunk_lines = 512;  // small chunks: many boundaries
  const LogDiver parallel_diver(machine, config);
  auto parallel = parallel_diver.Analyze(logs);
  if (!parallel.ok()) {
    std::cerr << "FAIL: " << label << ": parallel analysis errored: "
              << parallel.status().ToString() << "\n";
    return false;
  }
  if (FingerprintReport(parallel->metrics) != FingerprintReport(serial.metrics)) {
    std::cerr << "FAIL: " << label
              << ": parallel metrics fingerprint diverges from serial\n";
    return false;
  }
  if (FingerprintIngest(parallel->ingest) != FingerprintIngest(serial.ingest)) {
    std::cerr << "FAIL: " << label
              << ": parallel ingest fingerprint diverges from serial\n";
    return false;
  }
  bool same_quarantine = parallel->quarantine.size() == serial.quarantine.size();
  for (std::size_t i = 0; same_quarantine && i < serial.quarantine.size();
       ++i) {
    const QuarantineEntry& a = serial.quarantine[i];
    const QuarantineEntry& b = parallel->quarantine[i];
    same_quarantine = a.source == b.source && a.line_number == b.line_number &&
                      a.reason == b.reason && a.line == b.line;
  }
  if (!same_quarantine) {
    std::cerr << "FAIL: " << label
              << ": parallel quarantine diverges from serial\n";
    return false;
  }
  return true;
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Per-line claimed times of one source, in file order.  Lines that no
/// longer parse (torn/garbled) carry the last claimed time of their
/// source — a real shipper cannot drop what it cannot read.
std::vector<TimePoint> ClaimedTimes(const std::vector<std::string>& lines,
                                    int source, int year) {
  std::vector<TimePoint> times;
  times.reserve(lines.size());
  TorqueParser torque;
  AlpsParser alps;
  HwerrParser hwerr;
  TimePoint last;
  for (const std::string& line : lines) {
    switch (source) {
      case 0: {
        auto rec = torque.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
      case 1: {
        auto rec = alps.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
      case 2: {
        auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15), year);
        if (t.ok()) last = *t;
        break;
      }
      default: {
        auto rec = hwerr.ParseLine(line);
        if (rec.ok() && rec->has_value()) last = (*rec)->time;
        break;
      }
    }
    times.push_back(last);
  }
  return times;
}

/// Streams the dirty bundle the way a live shipper would: each file is
/// consumed strictly in file order, and the four tails are merged by the
/// claimed time of their current heads.  Skewed or reordered files make
/// the merged stamp sequence non-monotone, so the naive watermark below
/// (claimed time minus slack) genuinely regresses — exactly the broken
/// promise StreamingAnalyzer clamps and counts.
StreamingAnalyzer::Summary StreamDirty(const Machine& machine,
                                       const EmittedLogs& logs) {
  StreamingAnalyzer analyzer(machine, LogDiverConfig{});
  const std::vector<std::string>* files[4] = {&logs.torque, &logs.alps,
                                              &logs.syslog, &logs.hwerr};
  std::vector<TimePoint> claimed[4];
  for (int s = 0; s < 4; ++s) claimed[s] = ClaimedTimes(*files[s], s, 2013);

  std::size_t heads[4] = {0, 0, 0, 0};
  std::size_t since_advance = 0;
  for (;;) {
    int pick = -1;
    for (int s = 0; s < 4; ++s) {
      if (heads[s] >= files[s]->size()) continue;
      if (pick < 0 || claimed[s][heads[s]] < claimed[pick][heads[pick]]) {
        pick = s;
      }
    }
    if (pick < 0) break;
    const std::string& line = (*files[pick])[heads[pick]];
    const TimePoint time = claimed[pick][heads[pick]];
    ++heads[pick];
    switch (pick) {
      case 0: analyzer.AddTorqueLine(line); break;
      case 1: analyzer.AddAlpsLine(line); break;
      case 2: analyzer.AddSyslogLine(line); break;
      case 3: analyzer.AddHwerrLine(line); break;
    }
    if (++since_advance >= 500) {
      since_advance = 0;
      analyzer.Advance(time - Duration::Minutes(5));  // reorder slack
    }
  }
  return analyzer.Finalize();
}

struct Cell {
  std::string op_name;
  double rate = 0.0;
  CorruptionLedger ledger;
  ScoreReport batch_score;
  IngestStats batch_ingest;
  std::uint64_t batch_runs = 0;
  std::uint64_t stream_runs = 0;
  IngestStats stream_ingest;
};

int Run() {
  const std::uint64_t apps = EnvU64("LD_ROBUST_APPS", 8000);
  const std::uint64_t seed = EnvU64("LD_ROBUST_SEED", 7);

  ScenarioConfig config = SmallScenario(seed);
  config.workload.target_app_runs = apps;
  const Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << "campaign failed: " << campaign.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== robustness campaign: dirty-log fault injection ===\n";
  std::cout << "campaign: " << apps << " target app runs on the testbed "
            << "machine, seed " << seed << "\n\n";

  const LogDiver diver(machine, LogDiverConfig{});
  auto clean_logset = [&]() {
    return LogSet{campaign->logs.torque, campaign->logs.alps,
                  campaign->logs.syslog, campaign->logs.hwerr};
  };

  // --- clean baseline -------------------------------------------------
  auto baseline = diver.Analyze(clean_logset());
  if (!baseline.ok()) {
    std::cerr << "baseline analysis failed: " << baseline.status().ToString()
              << "\n";
    return 1;
  }
  const ScoreReport base_score = ScoreClassification(
      baseline->runs, baseline->classified, campaign->injection.truth);
  std::printf("clean baseline: %llu runs, accuracy %.4f, system F1 %.4f\n",
              static_cast<unsigned long long>(baseline->metrics.total_runs),
              base_score.overall_accuracy, base_score.system_f1);

  // --- zero-corruption identity ---------------------------------------
  // A corruptor at rate 0 must be the identity, and the hardened
  // pipeline over the identical bundle must reproduce the clean
  // classifications exactly with every ingest counter at zero.
  {
    EmittedLogs copy = campaign->logs;
    CorruptorConfig cc;
    cc.rate = 0.0;
    cc.ops = LogCorruptor::AllOps();
    const LogCorruptor corruptor(cc);
    const CorruptionLedger ledger =
        corruptor.CorruptBundle(copy, Rng(seed).Fork("corruptor"));
    if (ledger.total() != 0 || copy.alps != campaign->logs.alps ||
        copy.torque != campaign->logs.torque ||
        copy.syslog != campaign->logs.syslog ||
        copy.hwerr != campaign->logs.hwerr) {
      std::cerr << "FAIL: zero-rate corruptor is not the identity\n";
      return 1;
    }
    auto redo = diver.Analyze(
        LogSet{copy.torque, copy.alps, copy.syslog, copy.hwerr});
    if (!redo.ok()) {
      std::cerr << "FAIL: zero-corruption analysis errored\n";
      return 1;
    }
    bool same = redo->classified.size() == baseline->classified.size();
    for (std::size_t i = 0; same && i < redo->classified.size(); ++i) {
      same = redo->classified[i].outcome == baseline->classified[i].outcome &&
             redo->classified[i].cause == baseline->classified[i].cause;
    }
    if (!same) {
      std::cerr << "FAIL: zero-corruption classifications differ from the "
                   "clean baseline\n";
      return 1;
    }
    if (!redo->ingest.clean() || !redo->quarantine.empty()) {
      std::cerr << "FAIL: zero-corruption run left nonzero ingest counters\n";
      return 1;
    }
    const auto stream = StreamDirty(machine, copy);
    if (!stream.ingest.clean() || !stream.ingest_status.ok()) {
      std::cerr << "FAIL: zero-corruption stream left nonzero ingest "
                   "counters\n";
      return 1;
    }
    if (!ParallelMatchesSerial(machine, clean_logset(), *redo,
                               "zero-corruption")) {
      return 1;
    }
    std::cout << "zero-corruption identity: OK (batch + streaming clean, "
                 "parallel parse bit-identical)\n\n";
  }

  // --- the sweep ------------------------------------------------------
  struct OpRow {
    std::string name;
    std::vector<CorruptionOp> ops;
  };
  std::vector<OpRow> op_rows;
  for (CorruptionOp op : LogCorruptor::AllOps()) {
    op_rows.push_back({CorruptionOpName(op), {op}});
  }
  op_rows.push_back({"all", LogCorruptor::AllOps()});
  const std::vector<double> rates = {0.01, 0.05, 0.10, 0.25};

  std::vector<Cell> cells;
  for (const OpRow& row : op_rows) {
    for (double rate : rates) {
      Cell cell;
      cell.op_name = row.name;
      cell.rate = rate;

      EmittedLogs dirty = campaign->logs;
      CorruptorConfig cc;
      cc.rate = rate;
      cc.ops = row.ops;
      const LogCorruptor corruptor(cc);
      cell.ledger =
          corruptor.CorruptBundle(dirty, Rng(seed).Fork("corruptor"));

      auto analysis = diver.Analyze(
          LogSet{dirty.torque, dirty.alps, dirty.syslog, dirty.hwerr});
      if (!analysis.ok()) {
        std::cerr << "FAIL: " << row.name << " @ " << rate
                  << ": batch analysis errored: "
                  << analysis.status().ToString() << "\n";
        return 1;
      }
      cell.batch_score = ScoreClassification(
          analysis->runs, analysis->classified, campaign->injection.truth);
      cell.batch_ingest = analysis->ingest;
      cell.batch_runs = analysis->metrics.total_runs;

      // At the harshest rate, cross-check the chunk-parallel parse path
      // against the serial result on this dirty bundle.
      if (rate == rates.back() &&
          !ParallelMatchesSerial(
              machine,
              LogSet{dirty.torque, dirty.alps, dirty.syslog, dirty.hwerr},
              *analysis, row.name.c_str())) {
        return 1;
      }

      const auto stream = StreamDirty(machine, dirty);
      cell.stream_runs = stream.metrics.total_runs;
      cell.stream_ingest = stream.ingest;

      cells.push_back(std::move(cell));
    }
  }

  std::printf("%-13s %5s | %8s %8s %8s | %7s %7s %6s %6s %6s\n", "operator",
              "rate", "injected", "runs", "accuracy", "sysF1", "quarant",
              "dups", "wmregr", "evict");
  for (const Cell& cell : cells) {
    const std::uint64_t dups = cell.batch_ingest.duplicate_placements +
                               cell.batch_ingest.duplicate_terminations +
                               cell.stream_ingest.duplicate_job_records;
    std::printf("%-13s %5.2f | %8llu %8llu %8.4f | %7.4f %7llu %6llu %6llu "
                "%6llu\n",
                cell.op_name.c_str(), cell.rate,
                static_cast<unsigned long long>(cell.ledger.total()),
                static_cast<unsigned long long>(cell.batch_runs),
                cell.batch_score.overall_accuracy, cell.batch_score.system_f1,
                static_cast<unsigned long long>(cell.batch_ingest.quarantined),
                static_cast<unsigned long long>(dups),
                static_cast<unsigned long long>(
                    cell.stream_ingest.watermark_regressions),
                static_cast<unsigned long long>(
                    cell.stream_ingest.evicted_pending_runs +
                    cell.stream_ingest.evicted_tuples));
  }

  // --- graceful-degradation assertion ---------------------------------
  bool graceful = true;
  for (const Cell& cell : cells) {
    if (cell.rate > 0.011) continue;
    if (cell.batch_score.overall_accuracy <
        base_score.overall_accuracy - 0.10) {
      std::cerr << "FAIL: " << cell.op_name << " @ " << cell.rate
                << " dropped accuracy to " << cell.batch_score.overall_accuracy
                << " (baseline " << base_score.overall_accuracy << ")\n";
      graceful = false;
    }
  }
  if (!graceful) return 1;

  std::cout << "\ngraceful degradation: OK (1% corruption costs <0.10 "
               "accuracy on every operator)\n";
  return 0;
}

}  // namespace
}  // namespace ld

int main() {
  try {
    return ld::Run();
  } catch (const std::exception& e) {
    std::cerr << "FAIL: uncaught exception: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "FAIL: uncaught non-standard exception\n";
    return 1;
  }
}
