// Ablation C: scheduling policy — FCFS drain vs EASY backfill.
//
// Two claims to verify:
//   1. EASY fills the drain bubbles in front of full-machine jobs:
//      higher utilization, far lower mean queue wait.
//   2. The resilience measurements are schedule-*independent*: per-run
//      failure probabilities and the headline fractions depend on run
//      windows and sizes, not on when jobs start.
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"

namespace {

struct PolicyResult {
  double utilization_proxy = 0.0;  // production node-hours / span capacity
  double mean_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  double system_failure_fraction = 0.0;
  double lost_share = 0.0;
};

PolicyResult RunPolicy(const ld::bench::BenchOptions& options,
                       ld::SchedulerPolicy policy) {
  ld::ScenarioConfig config = ld::bench::BenchScenario(options);
  config.workload.scheduler_policy = policy;
  // Scheduling policies only differ under contention: compress the
  // campaign so the offered load saturates the machine (a scaled-down
  // run count over 518 days leaves it nearly empty).
  config.workload.campaign = ld::Duration::Days(
      std::max<std::int64_t>(2, static_cast<std::int64_t>(
                                    options.target_apps / 12000)));
  const ld::Machine machine = ld::MakeMachine(config);
  auto campaign = ld::RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << campaign.status().ToString() << "\n";
    std::exit(1);
  }

  PolicyResult result;
  // Queue waits straight from the simulated jobs.
  double wait_sum = 0.0;
  ld::TimePoint lo, hi;
  bool have = false;
  for (const ld::Job& job : campaign->workload.jobs) {
    const double wait = (job.start - job.submit).hours();
    wait_sum += wait;
    result.max_wait_hours = std::max(result.max_wait_hours, wait);
    if (!have) {
      lo = job.submit;
      hi = job.end;
      have = true;
    } else {
      lo = std::min(lo, job.submit);
      hi = std::max(hi, job.end);
    }
  }
  result.mean_wait_hours =
      campaign->workload.jobs.empty()
          ? 0.0
          : wait_sum / static_cast<double>(campaign->workload.jobs.size());

  ld::LogDiver diver(machine, {});
  auto analysis = diver.Analyze(ld::LogSet{campaign->logs.torque,
                                           campaign->logs.alps,
                                           campaign->logs.syslog,
                                           campaign->logs.hwerr});
  if (!analysis.ok()) {
    std::cerr << analysis.status().ToString() << "\n";
    std::exit(1);
  }
  result.system_failure_fraction =
      analysis->metrics.system_failure_fraction;
  result.lost_share = analysis->metrics.lost_node_hours_fraction;
  const double span_hours = have ? (hi - lo).hours() : 0.0;
  result.utilization_proxy =
      span_hours > 0.0
          ? analysis->metrics.total_node_hours /
                (span_hours * static_cast<double>(machine.compute_count()))
          : 0.0;
  return result;
}

}  // namespace

int main() {
  using ld::bench::BenchOptions;
  BenchOptions defaults;
  defaults.target_apps = 120000;
  const BenchOptions options = ld::bench::OptionsFromEnv(defaults);
  ld::bench::PrintBenchHeader("Ablation C: FCFS vs EASY backfill", options);

  const PolicyResult fcfs = RunPolicy(options, ld::SchedulerPolicy::kFcfs);
  const PolicyResult easy =
      RunPolicy(options, ld::SchedulerPolicy::kEasyBackfill);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "fcfs", "easy-backfill"});
  rows.push_back({"mean queue wait (h)",
                  ld::FormatDouble(fcfs.mean_wait_hours, 2),
                  ld::FormatDouble(easy.mean_wait_hours, 2)});
  rows.push_back({"max queue wait (h)",
                  ld::FormatDouble(fcfs.max_wait_hours, 1),
                  ld::FormatDouble(easy.max_wait_hours, 1)});
  rows.push_back({"utilization proxy",
                  ld::FormatDouble(fcfs.utilization_proxy, 4),
                  ld::FormatDouble(easy.utilization_proxy, 4)});
  rows.push_back({"system-failure fraction %",
                  ld::FormatDouble(fcfs.system_failure_fraction * 100, 3),
                  ld::FormatDouble(easy.system_failure_fraction * 100, 3)});
  rows.push_back({"lost node-hours %",
                  ld::FormatDouble(fcfs.lost_share * 100, 2),
                  ld::FormatDouble(easy.lost_share * 100, 2)});
  std::cout << ld::RenderTable(rows);

  std::cout << "\nexpected shape: EASY slashes the mean queue wait (FCFS "
               "drains the machine for hero jobs) at equal-or-better "
               "utilization, while the system-failure fraction stays put.\n"
               "note: the compressed campaign makes the lost-node-hours "
               "share noisy (a single big failed run dominates it); the "
               "failure *fraction* is the schedule-independence check\n";
  return 0;
}
