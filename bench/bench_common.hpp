// Shared campaign runner for the per-table/figure bench binaries.
//
// Every bench regenerates its data from the same calibrated scenario: a
// full Blue Waters machine and a campaign whose per-application
// statistics match the 5M-run field study, scaled down in *count* (the
// per-run failure probabilities are scale-invariant in the model, so the
// headline fractions and curves are preserved; see DESIGN.md).
//
// Environment knobs:
//   LD_BENCH_APPS   target application runs (default 250000)
//   LD_BENCH_SEED   campaign seed          (default 20130401)
//   LD_BENCH_BOOST  large-bucket oversampling for the scale benches
#pragma once

#include <cstdint>
#include <string>

#include "analysis/scoring.hpp"
#include "logdiver/logdiver.hpp"
#include "simlog/scenario.hpp"

namespace ld::bench {

struct BenchOptions {
  std::uint64_t target_apps = 250000;
  std::uint64_t seed = 20130401;
  double large_bucket_boost = 1.0;
};

/// Reads the environment knobs over the given defaults.
BenchOptions OptionsFromEnv(BenchOptions defaults = {});

/// The scenario all benches share: full machine, 518-day campaign,
/// calibrated fault model.
ScenarioConfig BenchScenario(const BenchOptions& options);

struct BenchCampaign {
  Machine machine;
  Campaign campaign;
  AnalysisResult analysis;
};

/// Runs the simulation and the LogDiver pipeline; aborts the process on
/// error (benches have no recovery story).
BenchCampaign RunBench(const BenchOptions& options);

/// Standard header naming the experiment and the scale used.
void PrintBenchHeader(const std::string& experiment,
                      const BenchOptions& options);

}  // namespace ld::bench
