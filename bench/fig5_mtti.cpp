// Figure 5: mean time to (application-visible) interruption — monthly
// MTTI series plus a reliability-distribution fit of the gaps between
// consecutive system-caused failures.
#include <iostream>

#include "analysis/scaling.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Figure 5: MTTI and interruption-gap fit",
                              options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintMonthlySeries(std::cout, bench.analysis.metrics);
  std::cout << "\noverall MTTI: "
            << ld::FormatDouble(bench.analysis.metrics.overall_mtti_hours, 2)
            << " hours between system-caused application failures\n"
            << "(absolute MTTI scales inversely with LD_BENCH_APPS — at "
               "the paper's full 5M-run volume it lands in the "
               "hours range)\n";

  auto fits =
      ld::FitInterruptionGaps(bench.analysis.runs, bench.analysis.classified);
  if (fits.ok()) {
    const auto gaps = ld::InterruptionGapsHours(bench.analysis.runs,
                                                bench.analysis.classified);
    std::cout << "\ninterruption-gap distribution fits (best AIC first, "
              << gaps.size() << " gaps):\n";
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"family", "parameters", "AIC", "KS stat"});
    for (const auto& fit : *fits) {
      rows.push_back({fit->name(), fit->ToString(),
                      ld::FormatDouble(fit->Aic(gaps), 1),
                      ld::FormatDouble(ld::KsStatistic(gaps, *fit), 4)});
    }
    std::cout << ld::RenderTable(rows);
  } else {
    std::cout << "\n(too few gaps for a distribution fit: "
              << fits.status().ToString() << ")\n";
  }
  return 0;
}
