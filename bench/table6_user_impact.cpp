// Table 6 (extension beyond the abstract): per-user impact of system
// failures — the user-facing framing of "work lost".  Lost node-hours
// concentrate heavily on the capability users who run the big, long,
// exposure-heavy jobs.
#include <iostream>

#include "analysis/users.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader(
      "Table 6 (extension): per-user impact of system failures", options);

  const auto bench = ld::bench::RunBench(options);
  const ld::UserImpactReport report =
      ld::ComputeUserImpact(bench.analysis.runs, bench.analysis.classified);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"user", "runs", "system failures", "failure rate %",
                  "node-hours", "lost node-hours"});
  const std::size_t top = std::min<std::size_t>(15, report.rows.size());
  for (std::size_t i = 0; i < top; ++i) {
    const ld::UserImpactRow& row = report.rows[i];
    rows.push_back({row.user, ld::WithThousands(row.runs),
                    ld::WithThousands(row.system_failures),
                    ld::FormatDouble(row.SystemFailureRate() * 100.0, 2),
                    ld::FormatDouble(row.node_hours, 0),
                    ld::FormatDouble(row.lost_node_hours, 0)});
  }
  std::cout << rows.size() - 1 << " most-impacted users of "
            << report.rows.size() << ":\n";
  std::cout << ld::RenderTable(rows);

  std::cout << "\ntop 10% of users absorb "
            << ld::FormatDouble(report.top_decile_lost_share * 100.0, 1)
            << "% of all lost node-hours ("
            << ld::FormatDouble(report.total_lost_node_hours, 0)
            << " node-hours lost in total)\n";
  return 0;
}
