// Worker-fault campaign: run the fleet supervisor against injected
// worker faults (crash, hang, truncated partial) across shard counts
// and assert the merged MetricsReport is *bit-identical* to the serial
// analyzer whenever the failure budget is not exhausted — retries must
// absorb every fault without changing a single bit of the answer.
//
// Each sweep cell is (fault type × shard count): the faulted shard's
// first attempt crashes at an ingest boundary, hangs until the shard
// timeout SIGKILLs it, or ships a deliberately torn partial; the retry
// runs clean and the merged report is fingerprint-compared against the
// uninterrupted serial baseline.  Separate cells then exercise the
// degradation edge: a persistently-crashing shard under a failure
// budget must produce a coverage-annotated *monotone subset* report
// that exactly matches an in-process merge of the surviving shards;
// fail-fast must refuse to degrade; an over-budget fleet must fail
// with the budget status the CLI maps to its fleet-budget exit code;
// and the whole retry/backoff schedule must be a deterministic
// function of the seed.
//
// Environment knobs:
//   LD_FLEET_APPS  target application runs (default 3000; --quick 1200)
//   LD_FLEET_SEED  campaign seed           (default 13)
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "logdiver/fleet/supervisor.hpp"
#include "logdiver/snapshot.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

const char* FaultName(fleet::WorkerFault fault) {
  switch (fault) {
    case fleet::WorkerFault::kNone: return "none";
    case fleet::WorkerFault::kCrash: return "crash";
    case fleet::WorkerFault::kHang: return "hang";
    case fleet::WorkerFault::kTruncatedPartial: return "truncate";
  }
  return "?";
}

int Run(bool quick) {
  const std::uint64_t apps = EnvU64("LD_FLEET_APPS", quick ? 1200 : 3000);
  const std::uint64_t seed = EnvU64("LD_FLEET_SEED", 13);

  const std::string base =
      "/tmp/ld_fleet_campaign." + std::to_string(getpid());
  std::filesystem::remove_all(base);

  ScenarioConfig config = SmallScenario(seed);
  config.workload.target_app_runs = apps;
  const Machine machine = MakeMachine(config);
  auto bundle = WriteBundle(machine, config, base + "/bundle");
  if (!bundle.ok()) {
    std::fprintf(stderr, "bundle write failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  const StreamInputs inputs = StreamInputs::FromBundleDir(bundle->dir);

  std::printf("=== fleet campaign: worker-fault / merge equivalence ===\n");
  std::printf("campaign: %llu target app runs, seed %llu%s\n\n",
              static_cast<unsigned long long>(apps),
              static_cast<unsigned long long>(seed),
              quick ? " (quick)" : "");

  // --- serial baseline -----------------------------------------------
  const LogDiverConfig diver_config;
  StreamingAnalyzer serial(machine, diver_config);
  auto total = ReplayBundle(diver_config, inputs, ReplaySchedule{}, serial);
  if (!total.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 total.status().ToString().c_str());
    return 1;
  }
  StreamingAnalyzer::Summary serial_summary = serial.Finalize();
  serial_summary.metrics.ingest = serial_summary.ingest;
  const std::uint32_t want_report = FingerprintReport(serial_summary.metrics);
  const std::uint32_t want_ingest = FingerprintIngest(serial_summary.ingest);
  const std::uint64_t want_runs = serial_summary.runs_finalized;
  std::printf("baseline: %llu lines, %llu runs, report fp %08x, "
              "ingest fp %08x\n\n",
              static_cast<unsigned long long>(*total),
              static_cast<unsigned long long>(want_runs), want_report,
              want_ingest);

  int cell_index = 0;
  const auto make_options = [&](std::uint32_t shards) {
    fleet::FleetOptions options;
    options.shard_count = shards;
    options.partial_dir = base + "/cell_" + std::to_string(cell_index++);
    // Generous for clean shards, short enough that a hung worker is
    // killed and retried well inside the cell's time budget.
    options.shard_timeout_ms = 30000;
    return options;
  };
  const fleet::ShardSupervisor supervisor(machine, diver_config);
  bool all_passed = true;

  // --- fault × shard-count sweep -------------------------------------
  const std::vector<std::uint32_t> shard_counts = {2, 4, 8};
  const std::vector<fleet::WorkerFault> faults = {
      fleet::WorkerFault::kNone, fleet::WorkerFault::kCrash,
      fleet::WorkerFault::kHang, fleet::WorkerFault::kTruncatedPartial};

  for (std::uint32_t shards : shard_counts) {
    for (fleet::WorkerFault fault : faults) {
      fleet::FleetOptions options = make_options(shards);
      const std::uint32_t victim = shards - 1;
      if (fault != fleet::WorkerFault::kNone) {
        fleet::FaultPlan plan;
        plan.fault = fault;
        plan.after_lines = *total / 2;
        options.faults[victim] = plan;
        if (fault == fleet::WorkerFault::kHang) {
          // The hang parks the worker forever; only the deadline ends
          // it.  Short enough to keep the cell quick, long enough that
          // clean shards (even sanitizer-slowed) never trip it.
          options.shard_timeout_ms = 8000;
        }
      }
      auto fleet_run = supervisor.Run(inputs, options);
      bool ok = fleet_run.ok();
      if (!ok) {
        std::fprintf(stderr, "  cell errored: %s\n",
                     fleet_run.status().ToString().c_str());
      }
      if (ok) {
        const fleet::ShardOutcome& out = fleet_run->shards[victim];
        const bool identical =
            FingerprintReport(fleet_run->report) == want_report &&
            FingerprintIngest(fleet_run->report.ingest) == want_ingest &&
            fleet_run->runs_finalized == want_runs &&
            !fleet_run->coverage.degraded();
        bool absorbed = true;
        switch (fault) {
          case fleet::WorkerFault::kNone:
            absorbed = out.attempts == 1;
            break;
          case fleet::WorkerFault::kCrash:
            absorbed = out.attempts == 2 && out.crashes == 1;
            break;
          case fleet::WorkerFault::kHang:
            absorbed = out.attempts == 2 && out.hangs_killed == 1;
            break;
          case fleet::WorkerFault::kTruncatedPartial:
            absorbed = out.attempts == 2 && out.partials_rejected == 1;
            break;
        }
        if (!identical) {
          std::fprintf(stderr,
                       "  MISMATCH: report fp %08x (want %08x), runs %llu "
                       "(want %llu)\n",
                       FingerprintReport(fleet_run->report), want_report,
                       static_cast<unsigned long long>(
                           fleet_run->runs_finalized),
                       static_cast<unsigned long long>(want_runs));
        }
        if (!absorbed) {
          std::fprintf(stderr,
                       "  fault not absorbed as expected: attempts %d "
                       "crashes %d hangs %d rejected %d\n",
                       out.attempts, out.crashes, out.hangs_killed,
                       out.partials_rejected);
        }
        ok = identical && absorbed;
      }
      all_passed = all_passed && ok;
      std::printf("shards %u  fault %-8s  %s\n", shards, FaultName(fault),
                  ok ? "ok (bit-identical)" : "FAIL");
    }
  }

  // --- degrade-and-annotate: budget absorbs a dead shard -------------
  // Shard 1 of 4 crashes on *every* attempt; with a budget of one the
  // fleet must ship a coverage-annotated report that exactly equals an
  // in-process merge of the three surviving shards — degraded means a
  // monotone subset, never a wrong number.
  {
    fleet::FleetOptions options = make_options(4);
    fleet::FaultPlan plan;
    plan.fault = fleet::WorkerFault::kCrash;
    plan.after_lines = *total / 3;
    plan.persistent = true;
    options.faults[1] = plan;
    options.policy = DegradationPolicy::kQuarantineAndContinue;
    options.failure_budget = 1;
    auto degraded = supervisor.Run(inputs, options);
    bool ok = degraded.ok();
    if (!ok) {
      std::fprintf(stderr, "  degrade cell errored: %s\n",
                   degraded.status().ToString().c_str());
    }
    if (ok) {
      MetricsAccumulator expected_acc(diver_config.metrics);
      IngestStats expected_ingest;
      for (std::uint32_t i : {0u, 2u, 3u}) {
        LogDiverConfig shard_config = diver_config;
        shard_config.shard = ShardSpec{i, 4};
        StreamingAnalyzer analyzer(machine, shard_config);
        if (!ReplayBundle(shard_config, inputs, ReplaySchedule{}, analyzer)
                 .ok()) {
          ok = false;
          break;
        }
        const StreamingAnalyzer::Summary s = analyzer.Finalize();
        if (i == 0) expected_ingest = s.ingest;
        expected_acc.MergeFrom(analyzer.metrics_accumulator());
      }
      MetricsReport expected = expected_acc.Report();
      expected.ingest = expected_ingest;
      const bool annotated =
          degraded->coverage.degraded() &&
          degraded->coverage.shards_merged == 3 &&
          degraded->coverage.dropped_shards ==
              std::vector<std::uint32_t>{1} &&
          degraded->coverage.Row().find("dropped: 1") != std::string::npos;
      const bool exact_subset =
          FingerprintReport(degraded->report) == FingerprintReport(expected);
      const bool monotone =
          degraded->report.total_runs < serial_summary.metrics.total_runs &&
          degraded->report.total_node_hours <=
              serial_summary.metrics.total_node_hours;
      if (!annotated) std::fprintf(stderr, "  degrade: bad coverage row\n");
      if (!exact_subset) {
        std::fprintf(stderr,
                     "  degrade: merged report != surviving-shard merge\n");
      }
      if (!monotone) std::fprintf(stderr, "  degrade: not a subset\n");
      ok = ok && annotated && exact_subset && monotone;
    }
    all_passed = all_passed && ok;
    std::printf("budget=1 absorbs persistent crash (degrade+annotate)  %s\n",
                ok ? "ok" : "FAIL");
  }

  // --- fail-fast: the same dead shard must fail the fleet ------------
  {
    fleet::FleetOptions options = make_options(4);
    fleet::FaultPlan plan;
    plan.fault = fleet::WorkerFault::kCrash;
    plan.persistent = true;
    options.faults[2] = plan;
    options.policy = DegradationPolicy::kFailFast;
    auto failed = supervisor.Run(inputs, options);
    const bool ok = !failed.ok() &&
                    failed.status().code() == StatusCode::kFailedPrecondition;
    if (!ok) {
      std::fprintf(stderr, "  fail-fast cell: expected kFailedPrecondition, "
                           "got %s\n",
                   failed.ok() ? "success" : failed.status().ToString().c_str());
    }
    all_passed = all_passed && ok;
    std::printf("fail-fast refuses to degrade                          %s\n",
                ok ? "ok" : "FAIL");
  }

  // --- over budget: two dead shards, budget one ----------------------
  {
    fleet::FleetOptions options = make_options(4);
    fleet::FaultPlan plan;
    plan.fault = fleet::WorkerFault::kCrash;
    plan.persistent = true;
    options.faults[0] = plan;
    options.faults[3] = plan;
    options.policy = DegradationPolicy::kQuarantineAndContinue;
    options.failure_budget = 1;
    auto failed = supervisor.Run(inputs, options);
    const bool ok =
        !failed.ok() && failed.status().code() == StatusCode::kOutOfRange;
    if (!ok) {
      std::fprintf(stderr, "  over-budget cell: expected kOutOfRange, got %s\n",
                   failed.ok() ? "success" : failed.status().ToString().c_str());
    }
    all_passed = all_passed && ok;
    std::printf("budget exhaustion fails with the fleet-budget status  %s\n",
                ok ? "ok" : "FAIL");
  }

  // --- deterministic backoff under a fixed seed ----------------------
  {
    const auto faulted_run = [&]() {
      fleet::FleetOptions options = make_options(4);
      fleet::FaultPlan plan;
      plan.fault = fleet::WorkerFault::kCrash;
      plan.after_lines = *total / 4;
      options.faults[0] = plan;
      options.faults[2] = plan;
      options.seed = 99;
      return supervisor.Run(inputs, options);
    };
    auto first = faulted_run();
    auto second = faulted_run();
    bool ok = first.ok() && second.ok();
    if (ok) {
      for (std::size_t i = 0; i < first->shards.size(); ++i) {
        ok = ok && first->shards[i].backoff_ms == second->shards[i].backoff_ms;
      }
      ok = ok && !first->shards[0].backoff_ms.empty() &&
           !first->shards[2].backoff_ms.empty() &&
           first->shards[0].backoff_ms != first->shards[2].backoff_ms;
    }
    if (!ok) std::fprintf(stderr, "  backoff schedules diverged\n");
    all_passed = all_passed && ok;
    std::printf("retry backoff deterministic under fixed seed          %s\n",
                ok ? "ok" : "FAIL");
  }

  // --- warm bundle cache: shards skip the text re-parse --------------
  // Same fleet twice against a shared bundle-cache dir.  The cold run
  // populates the cache (every worker either stores or hits an entry a
  // sibling raced in first); the warm run must be all hits — no misses,
  // no stores — and both merged reports must stay bit-identical to the
  // serial baseline: the cache may only change *how fast* the answer
  // arrives, never the answer.
  {
    LogDiverConfig cached_config = diver_config;
    cached_config.bundle_cache_dir = base + "/bundle_cache";
    const fleet::ShardSupervisor cached_supervisor(machine, cached_config);
    const std::uint32_t shards = 4;
    auto cold = cached_supervisor.Run(inputs, make_options(shards));
    auto warm = cached_supervisor.Run(inputs, make_options(shards));
    bool ok = cold.ok() && warm.ok();
    if (!ok) {
      std::fprintf(stderr, "  cache cell errored: %s\n",
                   (!cold.ok() ? cold : warm).status().ToString().c_str());
    }
    if (ok) {
      const bool cold_populates =
          cold->cache_stores >= 1 && cold->cache_rejected == 0 &&
          cold->cache_hits + cold->cache_misses == shards;
      const bool warm_all_hits =
          warm->cache_hits == shards && warm->cache_misses == 0 &&
          warm->cache_stores == 0 && warm->cache_rejected == 0;
      const bool identical =
          FingerprintReport(cold->report) == want_report &&
          FingerprintReport(warm->report) == want_report &&
          cold->runs_finalized == want_runs &&
          warm->runs_finalized == want_runs;
      if (!cold_populates) {
        std::fprintf(stderr,
                     "  cold run: hits %llu misses %llu stores %llu "
                     "rejected %llu\n",
                     static_cast<unsigned long long>(cold->cache_hits),
                     static_cast<unsigned long long>(cold->cache_misses),
                     static_cast<unsigned long long>(cold->cache_stores),
                     static_cast<unsigned long long>(cold->cache_rejected));
      }
      if (!warm_all_hits) {
        std::fprintf(stderr,
                     "  warm run: hits %llu misses %llu stores %llu "
                     "rejected %llu\n",
                     static_cast<unsigned long long>(warm->cache_hits),
                     static_cast<unsigned long long>(warm->cache_misses),
                     static_cast<unsigned long long>(warm->cache_stores),
                     static_cast<unsigned long long>(warm->cache_rejected));
      }
      if (!identical) {
        std::fprintf(stderr, "  cache cell: merged report diverged from "
                             "serial baseline\n");
      }
      ok = cold_populates && warm_all_hits && identical;
    }
    all_passed = all_passed && ok;
    std::printf("warm bundle cache: all-hit shards, bit-identical      %s\n",
                ok ? "ok" : "FAIL");
  }

  std::filesystem::remove_all(base);
  std::printf("\n%s\n",
              all_passed
                  ? "PASS: every non-degraded fleet reproduced the serial "
                    "report bit for bit"
                  : "FAIL: see cells above");
  return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace ld

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return ld::Run(quick);
}
