// Figure 3: application failure probability vs application scale on the
// XK (GPU/hybrid) partition.  Anchor A5: P rises from ~0.02 at 2,000
// nodes to ~0.129 at 4,224 nodes — a ~6x blowup at full partition scale.
#include <iostream>

#include "analysis/scaling.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  BenchOptions defaults;
  defaults.large_bucket_boost = 40.0;
  const BenchOptions options = ld::bench::OptionsFromEnv(defaults);
  ld::bench::PrintBenchHeader(
      "Figure 3: XK failure probability vs scale (anchor A5)", options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintScaleCurve(std::cout, bench.analysis.metrics.xk_scale,
                      "XK (GPU/hybrid) partition");

  auto fit = ld::FitScaleCurve(bench.analysis.metrics.xk_scale);
  if (fit.ok()) {
    std::cout << "\nexposure-model fit: ln(-ln(1-P)) = "
              << ld::FormatDouble(fit->exponent, 3) << " * ln(N) + "
              << ld::FormatDouble(fit->log_c, 3)
              << "   (R^2 = " << ld::FormatDouble(fit->r_squared, 3) << ")\n";
    std::cout << "model P(2,000) = " << ld::FormatDouble(fit->Predict(2000), 4)
              << ",  P(4,224) = " << ld::FormatDouble(fit->Predict(4224), 4)
              << "\n";
  }
  std::cout << "\npaper anchors: P(2,000 nodes) ~0.02 -> P(4,224 nodes) "
               "~0.129 (6x)\n";
  return 0;
}
