// Table 4: error/failure event categories — raw event volume, coalesced
// tuples, fatal tuples, and mean time between fatal events per category.
#include <iostream>

#include "bench_common.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Table 4: error categories and rates", options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintCategoryTable(std::cout, bench.analysis.metrics);

  std::cout << "\nnote: corrected-severity events are the noise floor the "
               "filtering stage must not attribute;\nfatal MTBE is the "
               "campaign span divided by fatal tuples of the category\n";
  return 0;
}
