#include "bench_common.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/obs/manifest.hpp"

namespace ld::bench {

namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

/// "table3: outcome breakdown" -> "table3_outcome_breakdown".
std::string Slug(const std::string& experiment) {
  std::string slug;
  slug.reserve(experiment.size());
  for (char c : experiment) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      slug += static_cast<char>(std::tolower(u));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? std::string("bench") : slug;
}

/// The run manifest every bench emits at exit (atexit from
/// PrintBenchHeader, so no per-bench wiring).  A unique_ptr so repeated
/// PrintBenchHeader calls (multi-table benches) keep one manifest and
/// re-key it to the last experiment printed.
std::unique_ptr<obs::ManifestBuilder> g_manifest;
std::string g_manifest_path;

void WriteBenchManifest() {
  if (g_manifest == nullptr) return;
  const Status written = g_manifest->Write(g_manifest_path);
  if (written.ok()) {
    std::cout << "[manifest] " << g_manifest_path << "\n";
  } else {
    std::cerr << "[manifest] write failed: " << written.ToString() << "\n";
  }
  g_manifest.reset();
}

}  // namespace

BenchOptions OptionsFromEnv(BenchOptions defaults) {
  BenchOptions options = defaults;
  options.target_apps = EnvU64("LD_BENCH_APPS", defaults.target_apps);
  options.seed = EnvU64("LD_BENCH_SEED", defaults.seed);
  options.large_bucket_boost =
      EnvDouble("LD_BENCH_BOOST", defaults.large_bucket_boost);
  return options;
}

ScenarioConfig BenchScenario(const BenchOptions& options) {
  ScenarioConfig config;
  config.seed = options.seed;
  config.full_machine = true;
  config.workload.target_app_runs = options.target_apps;
  config.workload.campaign = Duration::Days(518);
  config.workload.large_bucket_boost = options.large_bucket_boost;
  // Fault model: calibrated defaults (FaultModelConfig) reproduce the
  // abstract's anchors at full scale; see DESIGN.md "Calibration".
  return config;
}

BenchCampaign RunBench(const BenchOptions& options) {
  const ScenarioConfig config = BenchScenario(options);
  Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << "bench campaign failed: " << campaign.status().ToString()
              << "\n";
    std::exit(1);
  }

  LogDiver diver(machine, LogDiverConfig{});
  LogSet logs;
  logs.torque = campaign->logs.torque;
  logs.alps = campaign->logs.alps;
  logs.syslog = campaign->logs.syslog;
  logs.hwerr = campaign->logs.hwerr;
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) {
    std::cerr << "bench analysis failed: " << analysis.status().ToString()
              << "\n";
    std::exit(1);
  }

  return BenchCampaign{std::move(machine), std::move(*campaign),
                       std::move(*analysis)};
}

void PrintBenchHeader(const std::string& experiment,
                      const BenchOptions& options) {
  // First call arms the at-exit run manifest (EXPERIMENTS.md provenance
  // column points at these files); later calls just re-key it, so a
  // binary printing several tables emits one manifest under its last
  // experiment name.
  const char* manifest_dir = std::getenv("LD_MANIFEST_DIR");
  g_manifest_path = std::string(manifest_dir != nullptr && *manifest_dir != '\0'
                                    ? manifest_dir
                                    : ".") +
                    "/manifest_" + Slug(experiment) + ".json";
  if (g_manifest == nullptr) {
    g_manifest = std::make_unique<obs::ManifestBuilder>("bench");
    g_manifest->RecordEnv("LD_BENCH_APPS");
    g_manifest->RecordEnv("LD_BENCH_SEED");
    g_manifest->RecordEnv("LD_BENCH_BOOST");
    g_manifest->RecordEnv("LD_MANIFEST_DIR");
    std::atexit(WriteBenchManifest);
  }
  g_manifest->Set("experiment", experiment);
  g_manifest->SetUint("target_apps", options.target_apps);
  g_manifest->SetUint("seed", options.seed);
  if (options.large_bucket_boost != 1.0) {
    g_manifest->Set("large_bucket_boost",
                    std::to_string(options.large_bucket_boost));
  }
  std::cout << "=== " << experiment << " ===\n";
  std::cout << "campaign: " << options.target_apps
            << " application runs over 518 days on Blue Waters "
               "(22,640 XE + 4,224 XK), seed "
            << options.seed;
  if (options.large_bucket_boost != 1.0) {
    std::cout << ", large-bucket boost x" << options.large_bucket_boost;
  }
  std::cout << "\n";
  std::cout << "(counts scale with LD_BENCH_APPS; fractions, probabilities "
               "and curve shapes are scale-invariant)\n\n";
}

}  // namespace ld::bench
