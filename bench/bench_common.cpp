#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace ld::bench {

namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

}  // namespace

BenchOptions OptionsFromEnv(BenchOptions defaults) {
  BenchOptions options = defaults;
  options.target_apps = EnvU64("LD_BENCH_APPS", defaults.target_apps);
  options.seed = EnvU64("LD_BENCH_SEED", defaults.seed);
  options.large_bucket_boost =
      EnvDouble("LD_BENCH_BOOST", defaults.large_bucket_boost);
  return options;
}

ScenarioConfig BenchScenario(const BenchOptions& options) {
  ScenarioConfig config;
  config.seed = options.seed;
  config.full_machine = true;
  config.workload.target_app_runs = options.target_apps;
  config.workload.campaign = Duration::Days(518);
  config.workload.large_bucket_boost = options.large_bucket_boost;
  // Fault model: calibrated defaults (FaultModelConfig) reproduce the
  // abstract's anchors at full scale; see DESIGN.md "Calibration".
  return config;
}

BenchCampaign RunBench(const BenchOptions& options) {
  const ScenarioConfig config = BenchScenario(options);
  Machine machine = MakeMachine(config);
  auto campaign = RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << "bench campaign failed: " << campaign.status().ToString()
              << "\n";
    std::exit(1);
  }

  LogDiver diver(machine, LogDiverConfig{});
  LogSet logs;
  logs.torque = campaign->logs.torque;
  logs.alps = campaign->logs.alps;
  logs.syslog = campaign->logs.syslog;
  logs.hwerr = campaign->logs.hwerr;
  auto analysis = diver.Analyze(logs);
  if (!analysis.ok()) {
    std::cerr << "bench analysis failed: " << analysis.status().ToString()
              << "\n";
    std::exit(1);
  }

  return BenchCampaign{std::move(machine), std::move(*campaign),
                       std::move(*analysis)};
}

void PrintBenchHeader(const std::string& experiment,
                      const BenchOptions& options) {
  std::cout << "=== " << experiment << " ===\n";
  std::cout << "campaign: " << options.target_apps
            << " application runs over 518 days on Blue Waters "
               "(22,640 XE + 4,224 XK), seed "
            << options.seed;
  if (options.large_bucket_boost != 1.0) {
    std::cout << ", large-bucket boost x" << options.large_bucket_boost;
  }
  std::cout << "\n";
  std::cout << "(counts scale with LD_BENCH_APPS; fractions, probabilities "
               "and curve shapes are scale-invariant)\n\n";
}

}  // namespace ld::bench
