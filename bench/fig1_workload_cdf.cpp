// Figure 1: workload characterization — distributions of application
// node counts and run durations, per partition.  Establishes the
// population shape every other figure conditions on: a heavy small-run
// head with a thin full-machine tail, and lognormal durations.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

namespace {

void PrintCdf(const std::string& title, const std::vector<double>& sample,
              const std::vector<double>& probes, int precision) {
  std::cout << title << "\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"quantile", "value"});
  for (double q : probes) {
    rows.push_back({ld::FormatDouble(q, 2),
                    ld::FormatDouble(ld::Quantile(sample, q), precision)});
  }
  std::cout << ld::RenderTable(rows) << "\n";
}

}  // namespace

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Figure 1: workload characterization", options);

  const auto bench = ld::bench::RunBench(options);

  for (ld::NodeType type : {ld::NodeType::kXE, ld::NodeType::kXK}) {
    std::vector<double> nodes, hours;
    for (const ld::AppRun& run : bench.analysis.runs) {
      if (run.node_type != type) continue;
      nodes.push_back(static_cast<double>(run.nodect));
      hours.push_back(run.duration().hours());
    }
    if (nodes.empty()) continue;
    const std::string partition = ld::NodeTypeName(type);
    std::cout << "--- " << partition << " partition ("
              << ld::WithThousands(nodes.size()) << " runs) ---\n";
    PrintCdf("node-count quantiles", nodes,
             {0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0}, 0);
    PrintCdf("duration quantiles (hours)", hours,
             {0.25, 0.50, 0.75, 0.90, 0.99, 1.0}, 2);

    // Log-spaced node-count histogram: the "mass per decade" series the
    // figure plots.
    ld::LogHistogram hist(1.0, 30000.0, 9);
    for (double n : nodes) hist.Add(n);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"node band", "runs", "share %"});
    for (std::size_t i = 0; i < hist.bin_count(); ++i) {
      if (hist.count(i) == 0) continue;
      rows.push_back(
          {ld::FormatDouble(hist.bin_lo(i), 0) + "-" +
               ld::FormatDouble(hist.bin_hi(i), 0),
           ld::FormatDouble(hist.count(i), 0),
           ld::FormatDouble(hist.count(i) / hist.total() * 100.0, 2)});
    }
    std::cout << ld::RenderTable(rows) << "\n";
  }

  std::cout << "--- queue waits by job size ---\n";
  ld::PrintQueueWaits(std::cout, bench.analysis.metrics);
  std::cout << "\npaper: >5M runs dominated by small applications, with a "
               "thin tail of full-machine runs on both partitions\n";
  return 0;
}
