// What-if (extension): value of better hybrid-node error detection.
//
// The paper's central recommendation is that XK resiliency is limited by
// error-detection coverage.  The simulated substrate can quantify the
// claim: sweep the GPU-side detection probability and measure, against
// ground truth, how many true system kills LogDiver (i) misreads as
// application bugs and (ii) cannot attribute — i.e., what operators and
// users would actually gain from detector improvements.
#include <iostream>

#include "analysis/scoring.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  BenchOptions defaults;
  defaults.target_apps = 120000;
  const BenchOptions options = ld::bench::OptionsFromEnv(defaults);
  ld::bench::PrintBenchHeader(
      "What-if (extension): GPU error-detection coverage sweep", options);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"gpu detection", "XK true kills", "misread as app bug",
                  "misread %", "unattributed %", "system recall",
                  "cause accuracy"});

  for (double detection : {0.30, 0.60, 0.90, 1.00}) {
    ld::ScenarioConfig config = ld::bench::BenchScenario(options);
    config.faults.gpu_error_detection = detection;
    // More XK traffic so the GPU channel has statistics.
    config.workload.xk_job_fraction = 0.35;
    const ld::Machine machine = ld::MakeMachine(config);
    auto campaign = ld::RunCampaign(machine, config);
    if (!campaign.ok()) {
      std::cerr << campaign.status().ToString() << "\n";
      return 1;
    }
    ld::LogDiver diver(machine, {});
    auto analysis = diver.Analyze(ld::LogSet{campaign->logs.torque,
                                             campaign->logs.alps,
                                             campaign->logs.syslog,
                                             campaign->logs.hwerr});
    if (!analysis.ok()) {
      std::cerr << analysis.status().ToString() << "\n";
      return 1;
    }

    std::unordered_map<ld::ApId, std::size_t> index;
    for (std::size_t i = 0; i < analysis->runs.size(); ++i) {
      index.emplace(analysis->runs[i].apid, i);
    }
    std::uint64_t xk_true = 0, misread = 0, unattributed = 0;
    for (const auto& [apid, rec] : campaign->injection.truth) {
      if (rec.outcome != ld::AppOutcome::kSystemFailure) continue;
      const auto it = index.find(apid);
      if (it == index.end()) continue;
      if (analysis->runs[it->second].node_type != ld::NodeType::kXK) continue;
      ++xk_true;
      const ld::ClassifiedRun& cls = analysis->classified[it->second];
      if (cls.outcome == ld::AppOutcome::kUserFailure) ++misread;
      if (cls.outcome == ld::AppOutcome::kSystemFailure &&
          cls.cause == ld::ErrorCategory::kUnknown) {
        ++unattributed;
      }
    }
    const ld::ScoreReport score = ld::ScoreClassification(
        analysis->runs, analysis->classified, campaign->injection.truth);
    auto pct = [&](std::uint64_t n) {
      return xk_true ? ld::FormatDouble(100.0 * static_cast<double>(n) /
                                            static_cast<double>(xk_true),
                                        1)
                     : std::string("0");
    };
    rows.push_back({ld::FormatDouble(detection, 2),
                    ld::WithThousands(xk_true), ld::WithThousands(misread),
                    pct(misread), pct(unattributed),
                    ld::FormatDouble(score.system_recall, 4),
                    ld::FormatDouble(score.cause_accuracy, 4)});
  }
  std::cout << ld::RenderTable(rows);
  std::cout << "\nexpected shape: misread and unattributed XK failures fall "
               "monotonically as detection improves; at 1.0 nearly every system "
               "kill is correctly categorized and attributable — the "
               "measurement-backed case for better hybrid-node detectors\n";
  return 0;
}
