// Overload/fault campaign for the always-on multi-tenant service: drive
// hundreds of tenants of bursty, partly dirty traffic through the real
// socket path of a forked logdiverd process and assert the robustness
// contract cell by cell:
//
//   clean-burst   concurrent clients flood every tenant; per-tenant
//                 report bytes match an uninterrupted in-process shard,
//                 p99 query latency and the daemon's RSS ceiling are
//                 recorded for the compare_bench.py perf gate;
//   crash         a FAULT-armed crash kills the daemon mid-burst
//                 (_Exit(137) at an apply boundary); after restart the
//                 clients resume from `QUERY ingest` accepted counts
//                 and every tenant's report is bit-identical;
//   kill-9        same, with an external SIGKILL instead of the armed
//                 crash — nothing acked is lost, nothing is doubled;
//   hang          one tenant's worker parks mid-apply; the watchdog
//                 recycles it from snapshot + journal while healthy
//                 tenants keep their exact bytes;
//   slow          a seeded per-line delay backs one tenant's queue up;
//                 backpressure absorbs it and the watchdog must NOT
//                 recycle (slow is not stalled);
//   shed          a poisoned tenant blows its error budget under the
//                 fail-fast policy and is shed with retry-after hints
//                 — with zero perturbation of healthy tenants' bytes;
//   admission     tenant max_tenants+1 is refused at the door with
//                 BUSY, not admitted and not crashed into.
//
// Modes: --quick (the ctest `service` label: >= 100 tenants, smaller
// campaign), --smoke (CI: 2 tenants, kill -9, restart, byte-identical
// — seconds, not minutes), default (the full sweep).  --json FILE
// writes google-benchmark-format entries (ingest/query latency plus an
// rss_ceiling_mb pseudo-entry) for tools/compare_bench.py.
//
// Environment knobs:
//   LD_SVC_APPS     target application runs (default 2000; quick 700)
//   LD_SVC_SEED     campaign seed           (default 29)
//   LD_SVC_TENANTS  tenant count            (default 160; quick 100)
//   LD_SVC_RSS_MB   daemon RSS ceiling      (default 2048)
#include <signal.h>
#include <sys/wait.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "logdiver/service/client.hpp"
#include "logdiver/service/daemon.hpp"
#include "logdiver/service/protocol.hpp"
#include "simlog/scenario.hpp"

namespace ld::service {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// --------------------------------------------------------------------
// Traffic: one campaign's merged logs, partitioned across tenants
// --------------------------------------------------------------------

struct TimedLine {
  TimePoint time;
  LogSource source;
  std::string line;
};

std::vector<TimedLine> MergeStreams(const EmittedLogs& logs, int base_year) {
  std::vector<TimedLine> merged;
  TorqueParser torque;
  for (const std::string& line : logs.torque) {
    auto rec = torque.ParseLine(line);
    if (rec.ok() && rec->has_value()) {
      merged.push_back({(*rec)->time, LogSource::kTorque, line});
    }
  }
  AlpsParser alps;
  for (const std::string& line : logs.alps) {
    auto rec = alps.ParseLine(line);
    if (rec.ok() && rec->has_value()) {
      merged.push_back({(*rec)->time, LogSource::kAlps, line});
    }
  }
  for (const std::string& line : logs.syslog) {
    auto t = SyslogParser::ParseSyslogTime(line.substr(0, 15), base_year);
    merged.push_back({t.ok() ? *t : TimePoint(0), LogSource::kSyslog, line});
  }
  HwerrParser hwerr;
  for (const std::string& line : logs.hwerr) {
    auto rec = hwerr.ParseLine(line);
    if (rec.ok() && rec->has_value()) {
      merged.push_back({(*rec)->time, LogSource::kHwerr, line});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TimedLine& a, const TimedLine& b) {
                     return a.time < b.time;
                   });
  return merged;
}

struct TenantTraffic {
  std::string id;
  std::vector<const TimedLine*> lines;  // in send order
};

/// Round-robin partition: every tenant sees a chronologically ordered
/// slice of the campaign, the way independent systems' logs would look.
std::vector<TenantTraffic> Partition(const std::vector<TimedLine>& merged,
                                     std::size_t tenant_count) {
  std::vector<TenantTraffic> tenants(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    char name[32];
    std::snprintf(name, sizeof(name), "tenant-%03zu", t);
    tenants[t].id = name;
  }
  for (std::size_t i = 0; i < merged.size(); ++i) {
    tenants[i % tenant_count].lines.push_back(&merged[i]);
  }
  return tenants;
}

// --------------------------------------------------------------------
// Expected answers: an uninterrupted in-process shard per tenant
// --------------------------------------------------------------------

/// The campaign's oracle.  The daemon cells must reproduce these reply
/// bytes exactly, whatever faults were injected in between.
std::map<std::string, std::string> ComputeExpected(
    const Machine& machine, const std::vector<TenantTraffic>& tenants,
    const std::string& scratch) {
  std::map<std::string, std::string> expected;
  for (const TenantTraffic& tenant : tenants) {
    const std::string dir = scratch + "/" + tenant.id;
    TenantShard shard(tenant.id, dir, machine, LogDiverConfig{},
                      TenantLimits{});
    if (!shard.Start().ok()) std::abort();
    for (const TimedLine* item : tenant.lines) {
      for (;;) {
        const std::string reply = shard.Ingest(item->source, item->line);
        if (ReplyVerdict(reply) != "BUSY") break;
        ::usleep(500);
      }
    }
    if (!shard.Drain().ok()) std::abort();
    expected[tenant.id] = shard.QueryReport();
    shard.Stop();
    std::filesystem::remove_all(dir);
  }
  return expected;
}

// --------------------------------------------------------------------
// The daemon under test: a forked child on a unix socket
// --------------------------------------------------------------------

volatile std::sig_atomic_t g_child_stop = 0;

[[noreturn]] void DaemonChildMain(const Machine& machine,
                                  const ServiceOptions& options) {
  LogDiverDaemon daemon(machine, options);
  const Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "child daemon start failed: %s\n",
                 started.ToString().c_str());
    std::_Exit(12);
  }
  std::signal(SIGTERM, [](int) { g_child_stop = 1; });
  while (!g_child_stop) ::usleep(20 * 1000);
  daemon.Stop();
  std::_Exit(0);
}

/// Forks a daemon and waits until its socket accepts connections.
pid_t SpawnDaemon(const Machine& machine, const ServiceOptions& options) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) DaemonChildMain(machine, options);
  for (int attempt = 0; attempt < 500; ++attempt) {
    auto probe = ServiceClient::Connect(options.listen, 1000);
    if (probe.ok() && (*probe)->Send("PING").ok()) return pid;
    ::usleep(20 * 1000);
  }
  std::fprintf(stderr, "daemon on %s never came up\n",
               options.listen.c_str());
  ::kill(pid, SIGKILL);
  std::exit(1);
}

/// waitpid, folded to the shell convention (128+signal for deaths).
int WaitDaemon(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int StopDaemon(pid_t pid) {
  ::kill(pid, SIGTERM);
  return WaitDaemon(pid);
}

/// Peak RSS (VmHWM) of a live process, in MB; 0 when unreadable.
std::uint64_t PeakRssMb(pid_t pid) {
  std::ifstream status("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) / 1024;
    }
  }
  return 0;
}

// --------------------------------------------------------------------
// Client-side helpers
// --------------------------------------------------------------------

std::unique_ptr<ServiceClient> MustConnect(const std::string& address) {
  auto client = ServiceClient::Connect(address, /*recv_timeout_ms=*/60000);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", address.c_str(),
                 client.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*client);
}

/// Sends tenant lines [from, end); returns the index past the last
/// line that was definitely acknowledged (a send error — the daemon
/// died — stops early; SHED lines are skipped and counted).
struct FeedOutcome {
  bool daemon_alive = true;
  std::uint64_t shed = 0;
  std::uint64_t busy_retries = 0;
};

FeedOutcome FeedTenant(ServiceClient& client, const TenantTraffic& tenant,
                       std::size_t from = 0) {
  FeedOutcome out;
  for (std::size_t i = from; i < tenant.lines.size(); ++i) {
    const TimedLine* item = tenant.lines[i];
    auto reply = client.IngestWithRetry(tenant.id, item->source, item->line,
                                        /*max_attempts=*/2000);
    if (!reply.ok()) {
      out.daemon_alive = false;
      return out;
    }
    const auto verdict = ReplyVerdict(*reply);
    if (verdict == "SHED") {
      ++out.shed;
      continue;
    }
    if (verdict != "OK") {
      std::fprintf(stderr, "tenant %s line %zu: %s\n", tenant.id.c_str(), i,
                   reply->c_str());
      out.daemon_alive = false;
      return out;
    }
  }
  return out;
}

/// Re-syncs one tenant after a daemon death: asks how much was acked,
/// resends exactly the suffix.  The exactly-once client protocol.
bool ResumeTenant(ServiceClient& client, const TenantTraffic& tenant) {
  auto accepted = client.AcceptedCount(tenant.id);
  if (!accepted.ok()) {
    std::fprintf(stderr, "resume %s: %s\n", tenant.id.c_str(),
                 accepted.status().ToString().c_str());
    return false;
  }
  if (*accepted > tenant.lines.size()) {
    std::fprintf(stderr, "resume %s: daemon claims %llu acked of %zu sent\n",
                 tenant.id.c_str(),
                 static_cast<unsigned long long>(*accepted),
                 tenant.lines.size());
    return false;
  }
  return FeedTenant(client, tenant, *accepted).daemon_alive;
}

/// Compares every tenant's report (skips ids in `skip`) to the oracle.
bool VerifyReports(ServiceClient& client,
                   const std::vector<TenantTraffic>& tenants,
                   const std::map<std::string, std::string>& expected,
                   const std::set<std::string>& skip, const char* cell) {
  std::size_t mismatches = 0;
  for (const TenantTraffic& tenant : tenants) {
    if (skip.count(tenant.id) != 0) continue;
    auto got = client.Send("QUERY " + tenant.id + " report");
    const std::string& want = expected.at(tenant.id);
    if (!got.ok() || *got != want) {
      if (++mismatches <= 3) {
        std::fprintf(stderr, "  [%s] %s: got %s want %s\n", cell,
                     tenant.id.c_str(),
                     got.ok() ? got->c_str() : got.status().ToString().c_str(),
                     want.c_str());
      }
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "  [%s] %zu tenant report(s) diverged\n", cell,
                 mismatches);
  }
  return mismatches == 0;
}

std::uint64_t PingRecycles(ServiceClient& client) {
  auto reply = client.Send("PING");
  if (!reply.ok()) return 0;
  const std::size_t pos = reply->find("recycles=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(reply->c_str() + pos + 9, nullptr, 10);
}

// --------------------------------------------------------------------
// Campaign state shared by the cells
// --------------------------------------------------------------------

struct CampaignEnv {
  Machine machine;
  std::vector<TimedLine> merged;
  std::vector<TenantTraffic> tenants;
  std::map<std::string, std::string> expected;
  std::string base;
  int cell_index = 0;

  ServiceOptions Options(const std::string& cell) {
    ServiceOptions options;
    options.data_dir =
        base + "/" + std::to_string(cell_index) + "_" + cell + "/data";
    options.listen = base + "-" + std::to_string(cell_index) + ".sock";
    options.listen = "unix:" + options.listen;
    ++cell_index;
    options.max_tenants = tenants.size() + 4;
    return options;
  }
};

struct PerfNumbers {
  double ingest_line_us = 0;
  double p99_query_us = 0;
  std::uint64_t rss_mb = 0;
};

// --------------------------------------------------------------------
// Cells
// --------------------------------------------------------------------

/// Clean burst: concurrent clients, full traffic, latency + RSS.
bool CellCleanBurst(CampaignEnv& env, PerfNumbers& perf,
                    std::uint64_t rss_ceiling_mb) {
  ServiceOptions options = env.Options("clean");
  const pid_t pid = SpawnDaemon(env.machine, options);

  const std::size_t kWriters = 4;
  std::vector<std::thread> writers;
  std::atomic<bool> feed_failed{false};
  const auto ingest_start = Clock::now();
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto client = MustConnect(options.listen);
      for (std::size_t t = w; t < env.tenants.size(); t += kWriters) {
        if (!FeedTenant(*client, env.tenants[t]).daemon_alive) {
          feed_failed = true;
          return;
        }
      }
    });
  }
  // A reader thread hammers health/report queries *during* the burst —
  // the latency the JSON records is latency under load.
  std::vector<double> query_us;
  std::atomic<bool> burst_done{false};
  std::thread reader([&] {
    auto client = MustConnect(options.listen);
    std::size_t t = 0;
    while (!burst_done) {
      const auto start = Clock::now();
      auto reply =
          client->Send("QUERY " + env.tenants[t % env.tenants.size()].id +
                       " health");
      if (reply.ok()) {
        query_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
      ++t;
      ::usleep(2000);
    }
  });
  for (std::thread& w : writers) w.join();
  const double ingest_seconds =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();
  burst_done = true;
  reader.join();
  if (feed_failed) {
    StopDaemon(pid);
    return false;
  }

  auto client = MustConnect(options.listen);
  auto drained = client->Send("DRAIN");
  bool ok = drained.ok() && ReplyVerdict(*drained) == "OK";
  ok = VerifyReports(*client, env.tenants, env.expected, {}, "clean") && ok;

  perf.ingest_line_us =
      ingest_seconds * 1e6 / static_cast<double>(env.merged.size());
  if (!query_us.empty()) {
    std::sort(query_us.begin(), query_us.end());
    perf.p99_query_us = query_us[query_us.size() * 99 / 100];
  }
  perf.rss_mb = PeakRssMb(pid);
  if (perf.rss_mb > rss_ceiling_mb) {
    std::fprintf(stderr, "  [clean] RSS %llu MB exceeds ceiling %llu MB\n",
                 static_cast<unsigned long long>(perf.rss_mb),
                 static_cast<unsigned long long>(rss_ceiling_mb));
    ok = false;
  }
  ok = StopDaemon(pid) == 0 && ok;
  std::printf("cell clean-burst   %s  (%zu tenants, %zu lines, "
              "%.1f us/line, p99 query %.0f us, rss %llu MB)\n",
              ok ? "ok" : "FAIL", env.tenants.size(), env.merged.size(),
              perf.ingest_line_us, perf.p99_query_us,
              static_cast<unsigned long long>(perf.rss_mb));
  return ok;
}

/// Daemon death mid-burst (armed crash or external SIGKILL), restart,
/// client-side resume, bit-identical reports.
bool CellDaemonDeath(CampaignEnv& env, bool armed_crash) {
  const char* cell = armed_crash ? "crash" : "kill-9";
  ServiceOptions options = env.Options(cell);
  options.enable_fault_commands = armed_crash;
  pid_t pid = SpawnDaemon(env.machine, options);

  {
    auto client = MustConnect(options.listen);
    if (armed_crash) {
      // The countdown ticks at apply boundaries across all tenants.
      auto armed = client->Send("FAULT any crash " +
                                std::to_string(env.merged.size() / 3));
      if (!armed.ok() || ReplyVerdict(*armed) != "OK") {
        std::fprintf(stderr, "  [%s] arm failed\n", cell);
        StopDaemon(pid);
        return false;
      }
    }
    for (std::size_t t = 0; t < env.tenants.size(); ++t) {
      if (!armed_crash && t == env.tenants.size() / 2) {
        ::kill(pid, SIGKILL);  // external murder mid-burst
      }
      if (!FeedTenant(*client, env.tenants[t]).daemon_alive) break;
    }
  }
  const int death = WaitDaemon(pid);
  const int want_death = armed_crash ? 137 : 128 + SIGKILL;
  if (death != want_death) {
    std::fprintf(stderr, "  [%s] daemon died with %d, want %d\n", cell,
                 death, want_death);
    return false;
  }

  // Restart over the same data_dir: every tenant re-adopted, clients
  // resume from the accepted counts, reports must match the oracle.
  options.enable_fault_commands = false;
  pid = SpawnDaemon(env.machine, options);
  auto client = MustConnect(options.listen);
  bool ok = true;
  for (const TenantTraffic& tenant : env.tenants) {
    ok = ResumeTenant(*client, tenant) && ok;
  }
  auto drained = client->Send("DRAIN");
  ok = ok && drained.ok() && ReplyVerdict(*drained) == "OK";
  ok = VerifyReports(*client, env.tenants, env.expected, {}, cell) && ok;
  ok = StopDaemon(pid) == 0 && ok;
  std::printf("cell %-12s  %s  (daemon died %d, recovered %zu tenants)\n",
              cell, ok ? "ok" : "FAIL", death, env.tenants.size());
  return ok;
}

/// One tenant's worker hangs; the watchdog recycles it while healthy
/// tenants are fed concurrently and keep their exact bytes.
bool CellHang(CampaignEnv& env) {
  ServiceOptions options = env.Options("hang");
  options.enable_fault_commands = true;
  options.watchdog_period_ms = 25;
  options.stall_timeout_ms = 300;
  options.tenant.queue_capacity = 64;
  const pid_t pid = SpawnDaemon(env.machine, options);

  const TenantTraffic& victim = env.tenants.front();
  bool ok = true;
  {
    auto client = MustConnect(options.listen);
    auto armed = client->Send("FAULT " + victim.id + " hang " +
                              std::to_string(victim.lines.size() / 2));
    ok = armed.ok() && ReplyVerdict(*armed) == "OK";
  }
  std::atomic<bool> healthy_ok{true};
  std::thread healthy_feed([&] {
    auto client = MustConnect(options.listen);
    for (std::size_t t = 1; t < env.tenants.size(); ++t) {
      if (!FeedTenant(*client, env.tenants[t]).daemon_alive) {
        healthy_ok = false;
        return;
      }
    }
  });
  auto client = MustConnect(options.listen);
  ok = FeedTenant(*client, victim).daemon_alive && ok;
  healthy_feed.join();
  ok = ok && healthy_ok;

  // The hang must have tripped the watchdog (the victim's queue backed
  // up behind a parked worker) — and recovery must lose nothing.
  // Generous: an oversubscribed CI machine can starve the watchdog.
  for (int i = 0; i < 6000 && PingRecycles(*client) == 0; ++i) {
    ::usleep(10 * 1000);
  }
  const std::uint64_t recycles = PingRecycles(*client);
  if (recycles == 0) {
    std::fprintf(stderr, "  [hang] watchdog never recycled the victim\n");
    ok = false;
  }
  auto drained = client->Send("DRAIN");
  ok = ok && drained.ok() && ReplyVerdict(*drained) == "OK";
  ok = VerifyReports(*client, env.tenants, env.expected, {}, "hang") && ok;
  ok = StopDaemon(pid) == 0 && ok;
  std::printf("cell hang          %s  (%llu recycle(s), victim %s)\n",
              ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(recycles), victim.id.c_str());
  return ok;
}

/// A slow shard is a backpressure problem, not a stall: the watchdog
/// must keep its hands off while BUSY-retries absorb the lag.
bool CellSlow(CampaignEnv& env) {
  ServiceOptions options = env.Options("slow");
  options.enable_fault_commands = true;
  options.watchdog_period_ms = 25;
  options.stall_timeout_ms = 400;
  options.tenant.queue_capacity = 16;
  const pid_t pid = SpawnDaemon(env.machine, options);

  const TenantTraffic& sluggish = env.tenants.front();
  auto client = MustConnect(options.listen);
  auto armed = client->Send("FAULT " + sluggish.id + " slow 1 3 7");
  bool ok = armed.ok() && ReplyVerdict(*armed) == "OK";
  ok = FeedTenant(*client, sluggish).daemon_alive && ok;
  auto drained = client->Send("DRAIN");
  ok = ok && drained.ok() && ReplyVerdict(*drained) == "OK";
  const std::uint64_t recycles = PingRecycles(*client);
  if (recycles != 0) {
    std::fprintf(stderr,
                 "  [slow] watchdog recycled a merely-slow shard %llu "
                 "time(s)\n",
                 static_cast<unsigned long long>(recycles));
    ok = false;
  }
  // The slow path changes timing, never bytes.
  auto report = client->Send("QUERY " + sluggish.id + " report");
  ok = ok && report.ok() && *report == env.expected.at(sluggish.id);
  ok = StopDaemon(pid) == 0 && ok;
  std::printf("cell slow          %s  (0 recycles wanted, saw %llu)\n",
              ok ? "ok" : "FAIL", static_cast<unsigned long long>(recycles));
  return ok;
}

/// A poisoned tenant blows its budget under the shed policy; healthy
/// tenants' bytes must not move.
bool CellShed(CampaignEnv& env) {
  ServiceOptions options = env.Options("shed");
  options.tenant.budget.policy = DegradationPolicy::kFailFast;
  options.tenant.budget.window_lines = 16;
  options.tenant.budget.min_malformed = 4;
  options.tenant.budget.max_malformed_fraction = 0.10;
  options.tenant.budget.cooloff_ms = 150;
  const pid_t pid = SpawnDaemon(env.machine, options);

  const TenantTraffic& poisoned = env.tenants.front();
  auto client = MustConnect(options.listen);
  // Every other line is garbage, and the stream loops so the windows
  // keep evaluating: far over any sane budget.
  std::uint64_t shed = 0;
  bool ok = true;
  const std::size_t sends = poisoned.lines.size() * 10;
  for (std::size_t i = 0; i < sends; ++i) {
    const bool dirty = i % 2 == 1;
    const TimedLine* item = poisoned.lines[i % poisoned.lines.size()];
    auto reply = client->IngestWithRetry(
        poisoned.id, item->source,
        dirty ? std::string_view("@@corrupted line a tail -f would ship@@")
              : std::string_view(item->line),
        /*max_attempts=*/2000);
    if (!reply.ok()) {
      ok = false;
      break;
    }
    if (ReplyVerdict(*reply) == "SHED") ++shed;
    // Budget windows read the quarantine totals the apply side
    // publishes; pace the flood so they are not all still in flight.
    if (i % 16 == 15) ::usleep(2000);
  }
  if (shed == 0) {
    std::fprintf(stderr, "  [shed] poisoned tenant was never shed\n");
    ok = false;
  }
  // Healthy tenants, fed after the shedding, must be untouched by it.
  for (std::size_t t = 1; t < env.tenants.size(); ++t) {
    if (!FeedTenant(*client, env.tenants[t]).daemon_alive) {
      ok = false;
      break;
    }
  }
  auto drained = client->Send("DRAIN");
  ok = ok && drained.ok() && ReplyVerdict(*drained) == "OK";
  ok = VerifyReports(*client, env.tenants, env.expected, {poisoned.id},
                     "shed") &&
       ok;
  ok = StopDaemon(pid) == 0 && ok;
  std::printf("cell shed          %s  (%llu SHED replies, healthy bytes "
              "intact)\n",
              ok ? "ok" : "FAIL", static_cast<unsigned long long>(shed));
  return ok;
}

/// The admission cap refuses tenant N+1 at the door with BUSY.
bool CellAdmission(CampaignEnv& env) {
  ServiceOptions options = env.Options("admission");
  options.max_tenants = env.tenants.size();
  const pid_t pid = SpawnDaemon(env.machine, options);
  auto client = MustConnect(options.listen);
  bool ok = true;
  // Admit exactly max_tenants (one line each is enough to admit).
  for (const TenantTraffic& tenant : env.tenants) {
    auto reply = client->IngestWithRetry(tenant.id, tenant.lines[0]->source,
                                         tenant.lines[0]->line);
    ok = ok && reply.ok() && ReplyVerdict(*reply) == "OK";
  }
  auto refused = client->Send("INGEST one-too-many torque overflow line");
  ok = ok && refused.ok() && ReplyVerdict(*refused) == "BUSY";
  // The refusal carried a retry hint, and incumbents still work.
  auto again = client->Send("QUERY " + env.tenants[0].id + " health");
  ok = ok && again.ok() && ReplyVerdict(*again) == "OK";
  ok = StopDaemon(pid) == 0 && ok;
  std::printf("cell admission     %s  (cap %zu, tenant %zu refused BUSY)\n",
              ok ? "ok" : "FAIL", env.tenants.size(),
              env.tenants.size() + 1);
  return ok;
}

// --------------------------------------------------------------------
// JSON for the perf gate
// --------------------------------------------------------------------

void WriteBenchJson(const std::string& path, const PerfNumbers& perf) {
  std::ofstream out(path);
  // google-benchmark format so tools/compare_bench.py can gate ratios.
  // rss_ceiling_mb is a pseudo-entry: the value is megabytes, carried
  // in real_time so the same geomean gate covers memory regressions.
  out << "{\n  \"context\": {\"executable\": \"service_campaign\"},\n"
      << "  \"benchmarks\": [\n"
      << "    {\"name\": \"service/ingest_line\", \"run_type\": "
         "\"iteration\", \"iterations\": 1, \"real_time\": "
      << perf.ingest_line_us << ", \"time_unit\": \"us\"},\n"
      << "    {\"name\": \"service/p99_query\", \"run_type\": "
         "\"iteration\", \"iterations\": 1, \"real_time\": "
      << perf.p99_query_us << ", \"time_unit\": \"us\"},\n"
      << "    {\"name\": \"service/rss_ceiling_mb\", \"run_type\": "
         "\"iteration\", \"iterations\": 1, \"real_time\": "
      << static_cast<double>(perf.rss_mb) << ", \"time_unit\": \"us\"}\n"
      << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

// --------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------

int Run(bool quick, bool smoke, const std::string& json_out) {
  const std::uint64_t apps =
      EnvU64("LD_SVC_APPS", smoke ? 150 : quick ? 700 : 2000);
  const std::uint64_t seed = EnvU64("LD_SVC_SEED", 29);
  const std::size_t tenant_count = static_cast<std::size_t>(
      EnvU64("LD_SVC_TENANTS", smoke ? 2 : quick ? 100 : 160));
  const std::uint64_t rss_ceiling_mb = EnvU64("LD_SVC_RSS_MB", 2048);

  ScenarioConfig config = SmallScenario(seed);
  config.workload.target_app_runs = apps;
  CampaignEnv env{MakeMachine(config), {}, {}, {}, {}, 0};
  env.base = "/tmp/ld_svc_campaign." + std::to_string(::getpid());
  std::filesystem::remove_all(env.base);
  std::filesystem::create_directories(env.base);

  auto campaign = RunCampaign(env.machine, config);
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 campaign.status().ToString().c_str());
    return 1;
  }
  env.merged = MergeStreams(campaign->logs, 2013);
  env.tenants = Partition(env.merged, tenant_count);

  std::printf("=== service campaign: %zu tenants, %zu lines (%s) ===\n",
              env.tenants.size(), env.merged.size(),
              smoke ? "smoke" : quick ? "quick" : "full");
  std::printf("computing per-tenant oracle (uninterrupted shards)...\n");
  env.expected = ComputeExpected(env.machine, env.tenants, env.base);

  bool all_passed = true;
  PerfNumbers perf;
  if (smoke) {
    // CI smoke: the kill -9 / restart / byte-identical contract only.
    all_passed = CellDaemonDeath(env, /*armed_crash=*/false);
  } else {
    all_passed = CellCleanBurst(env, perf, rss_ceiling_mb) && all_passed;
    all_passed = CellDaemonDeath(env, /*armed_crash=*/true) && all_passed;
    all_passed = CellDaemonDeath(env, /*armed_crash=*/false) && all_passed;
    all_passed = CellHang(env) && all_passed;
    all_passed = CellSlow(env) && all_passed;
    all_passed = CellShed(env) && all_passed;
    all_passed = CellAdmission(env) && all_passed;
    if (!json_out.empty()) WriteBenchJson(json_out, perf);
  }

  std::filesystem::remove_all(env.base);
  std::printf("\nservice campaign: %s\n",
              all_passed ? "ALL CELLS PASSED" : "FAILURES");
  return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace ld::service

int main(int argc, char** argv) {
  bool quick = false;
  bool smoke = false;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: service_campaign [--quick|--smoke] "
                   "[--json FILE]\n");
      return 2;
    }
  }
  return ld::service::Run(quick, smoke, json_out);
}
