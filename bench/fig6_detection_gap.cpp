// Figure 6: the hybrid-node error-detection gap (anchor A6).
//
// Two views:
//   1. LogDiver's view: among system-classified failures, how many have
//      no explaining error tuple ("unattributed") — per partition.  XK's
//      GPU-side errors escape the RAS logs far more often.
//   2. Ground-truth view (impossible in the field study): how many true
//      system kills were misclassified as application bugs because the
//      killing error left no log evidence at all.
#include <iostream>

#include "analysis/scoring.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Figure 6: hybrid-node detection gap (A6)",
                              options);

  const auto bench = ld::bench::RunBench(options);
  std::cout << "LogDiver view — unattributed system failures:\n";
  ld::PrintDetectionGap(std::cout, bench.analysis.metrics);

  // Ground-truth view: per partition, true system kills whose cause was
  // detected vs undetected, and how LogDiver classified them.
  std::unordered_map<ld::ApId, std::size_t> run_index;
  for (std::size_t i = 0; i < bench.analysis.runs.size(); ++i) {
    run_index.emplace(bench.analysis.runs[i].apid, i);
  }
  struct Row {
    std::uint64_t true_kills = 0;
    std::uint64_t undetected_cause = 0;
    std::uint64_t misclassified_as_user = 0;
  };
  // "all" mixes in system-wide Lustre incidents (well-instrumented and
  // detected regardless of node type); "node-level" isolates errors born
  // on the compute node itself — where the hybrid detection gap lives.
  Row xe_all, xk_all, xe_node, xk_node;
  for (const auto& [apid, rec] : bench.campaign.injection.truth) {
    if (rec.outcome != ld::AppOutcome::kSystemFailure) continue;
    const auto it = run_index.find(apid);
    if (it == run_index.end()) continue;
    const ld::AppRun& run = bench.analysis.runs[it->second];
    const bool is_xk = run.node_type == ld::NodeType::kXK;
    const bool node_level = rec.cause != ld::ErrorCategory::kLustre;
    const ld::ClassifiedRun& cls = bench.analysis.classified[it->second];
    for (Row* row : {is_xk ? &xk_all : &xe_all,
                     node_level ? (is_xk ? &xk_node : &xe_node) : nullptr}) {
      if (row == nullptr) continue;
      ++row->true_kills;
      if (!rec.cause_detected) ++row->undetected_cause;
      if (cls.outcome == ld::AppOutcome::kUserFailure) {
        ++row->misclassified_as_user;
      }
    }
  }

  auto print_rows = [](const char* title, const Row& xe, const Row& xk) {
    std::cout << "\nground-truth view — " << title << ":\n";
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"partition", "true system kills", "cause undetected",
                    "undetected %", "misread as app bug", "misread %"});
    for (const auto& [name, row] :
         {std::pair{"XE", xe}, std::pair{"XK", xk}}) {
      auto pct = [&row](std::uint64_t n) {
        return row.true_kills
                   ? ld::FormatDouble(100.0 * static_cast<double>(n) /
                                          static_cast<double>(row.true_kills),
                                      1)
                   : std::string("0.0");
      };
      rows.push_back({name, ld::WithThousands(row.true_kills),
                      ld::WithThousands(row.undetected_cause),
                      pct(row.undetected_cause),
                      ld::WithThousands(row.misclassified_as_user),
                      pct(row.misclassified_as_user)});
    }
    std::cout << ld::RenderTable(rows);
  };
  print_rows("all true system kills", xe_all, xk_all);
  print_rows("node-level kills only (Lustre excluded)", xe_node, xk_node);

  std::cout << "\npaper: the resiliency of hybrid applications is impaired "
               "by the lack of adequate error detection in hybrid nodes — "
               "XK shows a markedly larger undetected/unattributed share\n";
  return 0;
}
