// Tool-performance benchmarks (google-benchmark): throughput of each
// LogDiver pipeline stage.  The paper's tool processed multi-gigabyte
// production logs; these numbers show the reimplementation handles
// field-study volumes comfortably.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>

#include "analysis/bootstrap.hpp"
#include "bench_common.hpp"
#include "common/obs/obs.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/strings.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace {

// One shared campaign for all perf benchmarks (generation is expensive).
struct SharedCampaign {
  ld::ScenarioConfig config;
  ld::Machine machine;
  ld::Campaign campaign;
  ld::LogSet logs;

  SharedCampaign()
      : config(MakeConfig()), machine(ld::MakeMachine(config)) {
    auto result = ld::RunCampaign(machine, config);
    if (!result.ok()) std::abort();
    campaign = std::move(*result);
    logs.torque = campaign.logs.torque;
    logs.alps = campaign.logs.alps;
    logs.syslog = campaign.logs.syslog;
    logs.hwerr = campaign.logs.hwerr;
  }

  static ld::ScenarioConfig MakeConfig() {
    ld::ScenarioConfig config;
    config.seed = 7;
    config.full_machine = true;
    config.workload.target_app_runs = 50000;
    config.workload.campaign = ld::Duration::Days(518);
    return config;
  }
};

const SharedCampaign& Shared() {
  static SharedCampaign* shared = new SharedCampaign();
  return *shared;
}

void BM_ParseTorque(benchmark::State& state) {
  const auto& lines = Shared().logs.torque;
  for (auto _ : state) {
    ld::TorqueParser parser;
    benchmark::DoNotOptimize(parser.ParseLines(lines));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseTorque)->Unit(benchmark::kMillisecond);

void BM_ParseAlps(benchmark::State& state) {
  const auto& lines = Shared().logs.alps;
  for (auto _ : state) {
    ld::AlpsParser parser;
    benchmark::DoNotOptimize(parser.ParseLines(lines));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseAlps)->Unit(benchmark::kMillisecond);

void BM_ParseSyslog(benchmark::State& state) {
  const auto& lines = Shared().logs.syslog;
  for (auto _ : state) {
    ld::SyslogParser parser(2013);
    benchmark::DoNotOptimize(parser.ParseLines(lines));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseSyslog)->Unit(benchmark::kMillisecond);

void BM_Coalesce(benchmark::State& state) {
  const auto& shared = Shared();
  ld::SyslogParser syslog_parser(2013);
  std::vector<ld::ErrorRecord> records =
      syslog_parser.ParseLines(shared.logs.syslog);
  ld::HwerrParser hwerr_parser;
  auto hwerr = hwerr_parser.ParseLines(shared.logs.hwerr);
  records.insert(records.end(), hwerr.begin(), hwerr.end());
  for (auto _ : state) {
    auto copy = records;
    benchmark::DoNotOptimize(
        ld::CoalesceEvents(shared.machine, std::move(copy), {}, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Coalesce)->Unit(benchmark::kMillisecond);

void BM_Reconstruct(benchmark::State& state) {
  const auto& shared = Shared();
  ld::AlpsParser alps_parser;
  const auto alps = alps_parser.ParseLines(shared.logs.alps);
  ld::TorqueParser torque_parser;
  const auto torque = torque_parser.ParseLines(shared.logs.torque);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ld::ReconstructRuns(shared.machine, alps, torque, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(alps.size()));
}
BENCHMARK(BM_Reconstruct)->Unit(benchmark::kMillisecond);

void BM_Classify(benchmark::State& state) {
  const auto& shared = Shared();
  ld::LogDiver diver(shared.machine, {});
  auto analysis = diver.Analyze(shared.logs);
  if (!analysis.ok()) std::abort();
  const ld::Correlator correlator(shared.machine, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        correlator.Classify(analysis->runs, analysis->tuples));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(analysis->runs.size()));
}
BENCHMARK(BM_Classify)->Unit(benchmark::kMillisecond);

void BM_StreamingPipeline(benchmark::State& state) {
  const auto& shared = Shared();
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    ld::StreamingAnalyzer analyzer(shared.machine, {});
    for (const std::string& line : shared.logs.torque) {
      analyzer.AddTorqueLine(line);
    }
    for (const std::string& line : shared.logs.alps) {
      analyzer.AddAlpsLine(line);
    }
    for (const std::string& line : shared.logs.syslog) {
      analyzer.AddSyslogLine(line);
    }
    for (const std::string& line : shared.logs.hwerr) {
      analyzer.AddHwerrLine(line);
    }
    benchmark::DoNotOptimize(analyzer.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
}
BENCHMARK(BM_StreamingPipeline)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto& shared = Shared();
  ld::LogDiver diver(shared.machine, {});
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    auto analysis = diver.Analyze(shared.logs);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

// --- Thread scaling ---------------------------------------------------
//
// The same full batch analysis with the parse stage fanned out over N
// worker threads (the results are bit-identical at every N; the
// ParallelParse tests pin that).  items/s counts input lines across all
// four sources.  Meaningful scaling numbers require a machine with at
// least as many cores as the widest Arg below; on a 1-core container
// the curve is flat and only measures pool overhead.

void BM_AnalyzeThreads(benchmark::State& state) {
  const auto& shared = Shared();
  ld::LogDiverConfig config;
  config.threads = static_cast<int>(state.range(0));
  ld::LogDiver diver(shared.machine, config);
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    auto analysis = diver.Analyze(shared.logs);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
}
BENCHMARK(BM_AnalyzeThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Parse stage only (syslog, the most expensive parser), isolating the
// chunk fan-out from the serial coalesce/reconstruct/metrics tail.
void BM_ParseSyslogThreads(benchmark::State& state) {
  const auto& lines = Shared().logs.syslog;
  std::vector<std::string_view> views;
  views.reserve(lines.size());
  for (const std::string& line : lines) views.emplace_back(line);
  const int threads = static_cast<int>(state.range(0));
  ld::ThreadPool pool(threads);
  ld::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    ld::SyslogParser parser(2013);
    benchmark::DoNotOptimize(parser.ParseLines(
        std::span<const std::string_view>(views), nullptr, pool_ptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseSyslogThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The key=value accounting parsers, same fan-out shape as the syslog
// row above.  These are the rows the SIMD field splitter
// (strings.hpp KeyValueView) moves: compare_bench.py gates their
// single-thread margin over a scalar-forced run.
void BM_ParseTorqueThreads(benchmark::State& state) {
  const auto& lines = Shared().logs.torque;
  std::vector<std::string_view> views;
  views.reserve(lines.size());
  for (const std::string& line : lines) views.emplace_back(line);
  const int threads = static_cast<int>(state.range(0));
  ld::ThreadPool pool(threads);
  ld::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    ld::TorqueParser parser;
    benchmark::DoNotOptimize(parser.ParseLines(
        std::span<const std::string_view>(views), nullptr, pool_ptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseTorqueThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParseAlpsThreads(benchmark::State& state) {
  const auto& lines = Shared().logs.alps;
  std::vector<std::string_view> views;
  views.reserve(lines.size());
  for (const std::string& line : lines) views.emplace_back(line);
  const int threads = static_cast<int>(state.range(0));
  ld::ThreadPool pool(threads);
  ld::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    ld::AlpsParser parser;
    benchmark::DoNotOptimize(parser.ParseLines(
        std::span<const std::string_view>(views), nullptr, pool_ptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseAlpsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Classification stage only: the CSR tuple index is rebuilt every
// iteration (it is part of Classify's cost) and the runs are sharded
// over N workers.  Output is bit-identical at every N (the
// ParallelAnalysis tests pin that); items/s counts classified runs.
void BM_ClassifyThreads(benchmark::State& state) {
  const auto& shared = Shared();
  ld::LogDiver diver(shared.machine, {});
  static const auto* analysis = [&] {
    auto result = diver.Analyze(shared.logs);
    if (!result.ok()) std::abort();
    return new ld::AnalysisResult(std::move(*result));
  }();
  const ld::Correlator correlator(shared.machine, {});
  const int threads = static_cast<int>(state.range(0));
  ld::ThreadPool pool(threads);
  ld::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        correlator.Classify(analysis->runs, analysis->tuples, pool_ptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(analysis->runs.size()));
}
BENCHMARK(BM_ClassifyThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Bootstrap CI with per-replicate counter-based RNG streams fanned over
// N workers.  One CI over 50k (numerator, denominator) pairs at 2000
// replicates; items/s counts replicates.
void BM_BootstrapThreads(benchmark::State& state) {
  constexpr std::uint32_t kReplicas = 2000;
  constexpr std::size_t kRuns = 50000;
  static const auto* data = [] {
    auto* pairs = new std::pair<std::vector<double>, std::vector<double>>();
    ld::Rng rng(7);
    pairs->first.reserve(kRuns);
    pairs->second.reserve(kRuns);
    for (std::size_t i = 0; i < kRuns; ++i) {
      const double node_hours = rng.UniformDouble(0.5, 5000.0);
      pairs->second.push_back(node_hours);
      pairs->first.push_back(rng.Bernoulli(0.015) ? node_hours : 0.0);
    }
    return pairs;
  }();
  const int threads = static_cast<int>(state.range(0));
  ld::ThreadPool pool(threads);
  ld::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
  ld::Rng rng(42);
  for (auto _ : state) {
    auto ci = ld::BootstrapRatioCi(data->first, data->second, kReplicas, rng,
                                   pool_ptr);
    if (!ci.ok()) std::abort();
    benchmark::DoNotOptimize(ci);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kReplicas));
}
BENCHMARK(BM_BootstrapThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Observability overhead guard: the same full batch analysis with
// metric recording runtime-enabled (Arg 1) vs runtime-disabled (Arg 0)
// in this one binary.  The instrumentation budget is <2%: compare the
// two rows' real time.  (The compile-time kill switch -DLOGDIVER_OBS=OFF
// is cheaper still — a separate CI job builds it; this bench bounds the
// cost of the default build.)
void BM_AnalyzeObsOverhead(benchmark::State& state) {
#if defined(LOGDIVER_OBS_DISABLED)
  if (state.range(0) != 0) {
    state.SkipWithError("observability compiled out (LOGDIVER_OBS=OFF)");
    return;
  }
#else
  ld::obs::Registry::Get().SetEnabled(state.range(0) != 0);
#endif
  const auto& shared = Shared();
  ld::LogDiver diver(shared.machine, {});
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    auto analysis = diver.Analyze(shared.logs);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
#if !defined(LOGDIVER_OBS_DISABLED)
  ld::obs::Registry::Get().SetEnabled(true);
#endif
}
BENCHMARK(BM_AnalyzeObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end bundle analysis from disk: mmap + block-split + parallel
// parse, the path the CLI's `analyze` mode takes.
void BM_AnalyzeBundle(benchmark::State& state) {
  const auto& shared = Shared();
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/ld_perf_bundle";
  static bool written = [&] {
    std::filesystem::remove_all(dir);
    auto bundle = ld::WriteBundle(shared.machine, shared.config, dir);
    return bundle.ok();
  }();
  if (!written) std::abort();
  ld::LogDiverConfig config;
  config.threads = static_cast<int>(state.range(0));
  ld::LogDiver diver(shared.machine, config);
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    auto analysis = diver.AnalyzeBundle(dir);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
}
BENCHMARK(BM_AnalyzeBundle)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Raw-speed ingestion ----------------------------------------------

// Peak RSS (VmHWM) of this process in MB, from /proc/self/status; 0
// when unreadable (non-Linux).  Reported as a counter so
// tools/compare_bench.py --max-rss-mb can put a ceiling on it.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmHWM:") {
      double kb = 0;
      status >> kb;
      return kb / 1024.0;
    }
    status.ignore(4096, '\n');
  }
  return 0.0;
}

// The newline scan at the bottom of every block split, on the campaign's
// syslog text: one row per backend this binary can run ("active" is
// whatever runtime dispatch resolved to — see simd::BackendName), so
// compare_bench.py can gate each tier against the one below it in a
// single run.  A backend the host cannot execute (e.g. avx2 on an old
// CPU) reports an error row, which the gates treat as skip-if-
// unsupported.  CI gates the active backend's bytes/s floor and the
// per-tier margins via --min-bytes-per-second / --min-speedup.
void BM_SimdScan(benchmark::State& state, const char* backend) {
  static const std::string* text = [] {
    auto* buffer = new std::string();
    for (const std::string& line : Shared().logs.syslog) {
      buffer->append(line);
      buffer->push_back('\n');
    }
    return buffer;
  }();
  const ld::simd::Kernels* kernels =
      std::string_view(backend) == "active" ? &ld::simd::ActiveKernels()
                                            : ld::simd::GetBackend(backend);
  if (kernels == nullptr) {
    state.SkipWithError("backend not compiled in or not runnable here");
    return;
  }
  const std::string_view data = *text;
  std::uint64_t newlines = 0;
  for (auto _ : state) {
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t nl = kernels->find_byte(data, '\n', pos);
      if (nl == std::string_view::npos) break;
      ++newlines;
      pos = nl + 1;
    }
    benchmark::DoNotOptimize(newlines);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(kernels->name);
}
BENCHMARK_CAPTURE(BM_SimdScan, active, "active")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimdScan, scalar, "scalar")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimdScan, sse2, "sse2")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimdScan, avx2, "avx2")->Unit(benchmark::kMillisecond);

// The torque accounting payloads (the key=value text after the final
// ';'), shared by the splitter and classifier benches below.
const std::vector<std::string>& TorquePayloads() {
  static const std::vector<std::string>* payloads = [] {
    auto* out = new std::vector<std::string>();
    out->reserve(Shared().logs.torque.size());
    for (const std::string& line : Shared().logs.torque) {
      const std::size_t semi = line.rfind(';');
      out->push_back(semi == std::string::npos ? line
                                               : line.substr(semi + 1));
    }
    return out;
  }();
  return *payloads;
}

// The splitter's classification kernel per backend, streamed over the
// torque payloads: one classify_kv call marks every '=' and whitespace
// byte of a record.  Unlike the short seek scans in BM_SimdScan (where
// per-call overhead buries the wider vectors), classification streams
// whole records, so this is the row where AVX2's 32-byte lanes must
// actually pay — CI gates avx2 ≥1.15x sse2 here (skip-if-unsupported)
// and active ≥1.2x scalar.
void BM_SimdClassify(benchmark::State& state, const char* backend) {
  const auto& payloads = TorquePayloads();
  const ld::simd::Kernels* kernels =
      std::string_view(backend) == "active" ? &ld::simd::ActiveKernels()
                                            : ld::simd::GetBackend(backend);
  if (kernels == nullptr) {
    state.SkipWithError("backend not compiled in or not runnable here");
    return;
  }
  std::uint64_t eq_bits[64];
  std::uint64_t ws_bits[64];
  std::int64_t total_bytes = 0;
  for (const std::string& payload : payloads) {
    total_bytes += static_cast<std::int64_t>(payload.size());
  }
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    for (const std::string& payload : payloads) {
      const std::size_t n = std::min(payload.size(), sizeof(eq_bits) * 8);
      kernels->classify_kv(payload.data(), n, '=', eq_bits, ws_bits);
      checksum += eq_bits[0] ^ ws_bits[0];
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetBytesProcessed(state.iterations() * total_bytes);
  state.SetLabel(kernels->name);
}
BENCHMARK_CAPTURE(BM_SimdClassify, active, "active")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimdClassify, scalar, "scalar")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimdClassify, sse2, "sse2")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimdClassify, avx2, "avx2")
    ->Unit(benchmark::kMillisecond);

// The key=value field splitter on the campaign's torque payloads: the
// parsers' one-pass KeyValueView (one classify_kv pass, then an
// '='-bit walk and table lookups) against the per-key substring scan
// it replaced.  CI gates split ≥1.2x scan via compare_bench.py.
void BM_FieldSplit(benchmark::State& state, bool one_pass) {
  const std::vector<std::string>* payloads = &TorquePayloads();
  // The torque parser's lookup set.
  static constexpr std::string_view kKeys[] = {
      "user",     "queue", "jobname",
      "ctime",    "start", "Resource_List.nodect",
      "Resource_List.walltime", "end", "Exit_status",
      "resources_used.walltime"};
  std::size_t found = 0;
  for (auto _ : state) {
    for (const std::string& payload : *payloads) {
      if (one_pass) {
        const ld::KeyValueView kv(payload);
        for (const std::string_view key : kKeys) {
          found += kv.Get(key).has_value();
        }
      } else {
        for (const std::string_view key : kKeys) {
          found += ld::FindKeyValueOpt(payload, key).has_value();
        }
      }
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(payloads->size()));
}
BENCHMARK_CAPTURE(BM_FieldSplit, split, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FieldSplit, scan, false)->Unit(benchmark::kMillisecond);

// AnalyzeBundle with the parsed-bundle cache: `cold` clears the cache
// every iteration (text parse + entry write-back), `warm` hits the
// memoized result.  bytes/s counts the on-disk input bytes either way,
// so the two rows are directly comparable and CI can gate
// warm >= 5x cold (compare_bench.py --min-speedup) plus a peak-RSS
// ceiling on the warm row.
void BM_AnalyzeBundleCached(benchmark::State& state, bool warm) {
  const auto& shared = Shared();
  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/ld_perf_bundle_cached";
  const std::string cache_dir = dir + "/cache";
  static bool written = [&] {
    std::filesystem::remove_all(dir);
    auto bundle = ld::WriteBundle(shared.machine, shared.config, dir);
    return bundle.ok();
  }();
  if (!written) std::abort();
  std::int64_t total_bytes = 0;
  for (const char* name :
       {"torque.log", "alps.log", "syslog.log", "hwerr.log"}) {
    total_bytes += static_cast<std::int64_t>(
        std::filesystem::file_size(dir + "/" + name));
  }
  ld::LogDiverConfig config;
  config.threads = 1;
  config.bundle_cache_dir = cache_dir;
  ld::LogDiver diver(shared.machine, config);
  std::filesystem::remove_all(cache_dir);
  if (warm) {
    // Populate once; every timed iteration must be a full hit.
    if (!diver.AnalyzeBundle(dir).ok()) std::abort();
  }
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      std::filesystem::remove_all(cache_dir);
      state.ResumeTiming();
    }
    auto analysis = diver.AnalyzeBundle(dir);
    if (!analysis.ok()) std::abort();
    const ld::CacheOutcome want =
        warm ? ld::CacheOutcome::kHit : ld::CacheOutcome::kMiss;
    if (analysis->cache_outcome != want) std::abort();
    benchmark::DoNotOptimize(analysis);
  }
  state.SetBytesProcessed(state.iterations() * total_bytes);
  state.counters["rss_mb"] = PeakRssMb();
}
BENCHMARK_CAPTURE(BM_AnalyzeBundleCached, cold, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AnalyzeBundleCached, warm, true)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so this binary emits a run
// manifest like every other bench (manifest_perf_logdiver.json in
// LD_MANIFEST_DIR) — the provenance EXPERIMENTS.md's perf rows cite.
int main(int argc, char** argv) {
  ld::bench::BenchOptions options;
  const ld::ScenarioConfig config = SharedCampaign::MakeConfig();
  options.target_apps = config.workload.target_app_runs;
  options.seed = config.seed;
  ld::bench::PrintBenchHeader("perf logdiver", options);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
