// Tool-performance benchmarks (google-benchmark): throughput of each
// LogDiver pipeline stage.  The paper's tool processed multi-gigabyte
// production logs; these numbers show the reimplementation handles
// field-study volumes comfortably.
#include <benchmark/benchmark.h>

#include "logdiver/logdiver.hpp"
#include "logdiver/streaming.hpp"
#include "simlog/scenario.hpp"

namespace {

// One shared campaign for all perf benchmarks (generation is expensive).
struct SharedCampaign {
  ld::ScenarioConfig config;
  ld::Machine machine;
  ld::Campaign campaign;
  ld::LogSet logs;

  SharedCampaign()
      : config(MakeConfig()), machine(ld::MakeMachine(config)) {
    auto result = ld::RunCampaign(machine, config);
    if (!result.ok()) std::abort();
    campaign = std::move(*result);
    logs.torque = campaign.logs.torque;
    logs.alps = campaign.logs.alps;
    logs.syslog = campaign.logs.syslog;
    logs.hwerr = campaign.logs.hwerr;
  }

  static ld::ScenarioConfig MakeConfig() {
    ld::ScenarioConfig config;
    config.seed = 7;
    config.full_machine = true;
    config.workload.target_app_runs = 50000;
    config.workload.campaign = ld::Duration::Days(518);
    return config;
  }
};

const SharedCampaign& Shared() {
  static SharedCampaign* shared = new SharedCampaign();
  return *shared;
}

void BM_ParseTorque(benchmark::State& state) {
  const auto& lines = Shared().logs.torque;
  for (auto _ : state) {
    ld::TorqueParser parser;
    benchmark::DoNotOptimize(parser.ParseLines(lines));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseTorque)->Unit(benchmark::kMillisecond);

void BM_ParseAlps(benchmark::State& state) {
  const auto& lines = Shared().logs.alps;
  for (auto _ : state) {
    ld::AlpsParser parser;
    benchmark::DoNotOptimize(parser.ParseLines(lines));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseAlps)->Unit(benchmark::kMillisecond);

void BM_ParseSyslog(benchmark::State& state) {
  const auto& lines = Shared().logs.syslog;
  for (auto _ : state) {
    ld::SyslogParser parser(2013);
    benchmark::DoNotOptimize(parser.ParseLines(lines));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_ParseSyslog)->Unit(benchmark::kMillisecond);

void BM_Coalesce(benchmark::State& state) {
  const auto& shared = Shared();
  ld::SyslogParser syslog_parser(2013);
  std::vector<ld::ErrorRecord> records =
      syslog_parser.ParseLines(shared.logs.syslog);
  ld::HwerrParser hwerr_parser;
  auto hwerr = hwerr_parser.ParseLines(shared.logs.hwerr);
  records.insert(records.end(), hwerr.begin(), hwerr.end());
  for (auto _ : state) {
    auto copy = records;
    benchmark::DoNotOptimize(
        ld::CoalesceEvents(shared.machine, std::move(copy), {}, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Coalesce)->Unit(benchmark::kMillisecond);

void BM_Reconstruct(benchmark::State& state) {
  const auto& shared = Shared();
  ld::AlpsParser alps_parser;
  const auto alps = alps_parser.ParseLines(shared.logs.alps);
  ld::TorqueParser torque_parser;
  const auto torque = torque_parser.ParseLines(shared.logs.torque);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ld::ReconstructRuns(shared.machine, alps, torque, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(alps.size()));
}
BENCHMARK(BM_Reconstruct)->Unit(benchmark::kMillisecond);

void BM_Classify(benchmark::State& state) {
  const auto& shared = Shared();
  ld::LogDiver diver(shared.machine, {});
  auto analysis = diver.Analyze(shared.logs);
  if (!analysis.ok()) std::abort();
  const ld::Correlator correlator(shared.machine, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        correlator.Classify(analysis->runs, analysis->tuples));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(analysis->runs.size()));
}
BENCHMARK(BM_Classify)->Unit(benchmark::kMillisecond);

void BM_StreamingPipeline(benchmark::State& state) {
  const auto& shared = Shared();
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    ld::StreamingAnalyzer analyzer(shared.machine, {});
    for (const std::string& line : shared.logs.torque) {
      analyzer.AddTorqueLine(line);
    }
    for (const std::string& line : shared.logs.alps) {
      analyzer.AddAlpsLine(line);
    }
    for (const std::string& line : shared.logs.syslog) {
      analyzer.AddSyslogLine(line);
    }
    for (const std::string& line : shared.logs.hwerr) {
      analyzer.AddHwerrLine(line);
    }
    benchmark::DoNotOptimize(analyzer.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
}
BENCHMARK(BM_StreamingPipeline)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto& shared = Shared();
  ld::LogDiver diver(shared.machine, {});
  std::int64_t total_lines = static_cast<std::int64_t>(
      shared.logs.torque.size() + shared.logs.alps.size() +
      shared.logs.syslog.size() + shared.logs.hwerr.size());
  for (auto _ : state) {
    auto analysis = diver.Analyze(shared.logs);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetItemsProcessed(state.iterations() * total_lines);
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
