// Table 5: system-caused application failures attributed to root-cause
// categories, split by partition (XE vs XK).  "unknown" rows are
// failures with definitive system evidence (ALPS node-failure kill) but
// no explaining error tuple — the raw material of anchor A6.
#include <iostream>
#include <map>

#include "common/strings.hpp"

#include "bench_common.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader(
      "Table 5: root-cause attribution of system failures", options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintAttributionTable(std::cout, bench.analysis.metrics);

  // Cross-check against injected ground truth: what the attribution
  // SHOULD look like (the field study had no such check).
  std::cout << "\nground truth (injected causes of system kills):\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"true cause", "kills"});
  std::map<ld::ErrorCategory, std::uint64_t> truth_counts;
  for (const auto& [apid, rec] : bench.campaign.injection.truth) {
    if (rec.outcome == ld::AppOutcome::kSystemFailure) {
      ++truth_counts[rec.cause];
    }
  }
  for (const auto& [cause, count] : truth_counts) {
    rows.push_back({ld::ErrorCategoryName(cause), ld::WithThousands(count)});
  }
  std::cout << ld::RenderTable(rows);
  return 0;
}
