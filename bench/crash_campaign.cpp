// Crash-recovery campaign: kill the streaming analysis at arbitrary
// points and assert that resuming from the latest snapshot produces a
// *bit-identical* MetricsReport to a run that was never interrupted.
//
// Each sweep cell is (kill point × snapshot interval).  The supervisor
// runs the analysis in a forked child with a crash point armed on the
// first attempt; the child dies mid-stream with no unwinding (the
// injected std::_Exit(137) models a power cut / OOM kill), the
// supervisor restarts it, and the resumed attempt compares its report
// and ingest fingerprints against the uninterrupted baseline.  A final
// cell tears the newest snapshot on disk after a crash and checks the
// loader falls back to the previous generation — and still reproduces
// the baseline bit for bit.
//
// Environment knobs:
//   LD_CRASH_APPS  target application runs (default 4000; --quick 1500)
//   LD_CRASH_SEED  campaign seed           (default 11)
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crashpoint.hpp"
#include "logdiver/resume.hpp"
#include "logdiver/snapshot.hpp"
#include "simlog/scenario.hpp"

namespace ld {
namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct Cell {
  double kill_fraction = 0.0;
  std::uint64_t snapshot_interval = 0;
  int attempts = 0;
  int crashes = 0;
  bool passed = false;
};

int Run(bool quick) {
  const std::uint64_t apps = EnvU64("LD_CRASH_APPS", quick ? 1500 : 4000);
  const std::uint64_t seed = EnvU64("LD_CRASH_SEED", 11);

  const std::string base =
      "/tmp/ld_crash_campaign." + std::to_string(getpid());
  std::filesystem::remove_all(base);

  ScenarioConfig config = SmallScenario(seed);
  config.workload.target_app_runs = apps;
  const Machine machine = MakeMachine(config);
  auto bundle = WriteBundle(machine, config, base + "/bundle");
  if (!bundle.ok()) {
    std::fprintf(stderr, "bundle write failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  const StreamInputs inputs = StreamInputs::FromBundleDir(bundle->dir);

  std::printf("=== crash campaign: kill/resume equivalence ===\n");
  std::printf("campaign: %llu target app runs, seed %llu%s\n\n",
              static_cast<unsigned long long>(apps),
              static_cast<unsigned long long>(seed),
              quick ? " (quick)" : "");

  // --- uninterrupted baseline ----------------------------------------
  ResumeOptions no_snap;
  no_snap.snapshot_dir.clear();
  auto baseline = RunResumableAnalysis(machine, LogDiverConfig{}, inputs,
                                       no_snap);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  const std::uint32_t want_report =
      FingerprintReport(baseline->summary.metrics);
  const std::uint32_t want_ingest = FingerprintIngest(baseline->summary.ingest);
  const std::uint64_t total_lines = baseline->total_lines;
  const std::uint64_t want_runs = baseline->summary.runs_finalized;
  std::printf("baseline: %llu lines, %llu runs, report fp %08x, "
              "ingest fp %08x\n\n",
              static_cast<unsigned long long>(total_lines),
              static_cast<unsigned long long>(want_runs), want_report,
              want_ingest);

  // The resumed child validates against the baseline fingerprints it
  // inherited across fork() and reports through its exit code.
  const auto run_cell = [&](const std::string& dir,
                            std::uint64_t snapshot_interval,
                            std::uint64_t kill_after_lines,
                            int max_restarts) {
    const auto child = [&](int attempt) -> int {
      if (attempt == 0) {
        ArmCrashPoint(kill_after_lines);
      } else {
        DisarmCrashPoint();
      }
      ResumeOptions opts;
      opts.snapshot_dir = dir;
      opts.snapshot_interval = snapshot_interval;
      auto result =
          RunResumableAnalysis(machine, LogDiverConfig{}, inputs, opts);
      if (!result.ok()) {
        std::fprintf(stderr, "  attempt %d errored: %s\n", attempt,
                     result.status().ToString().c_str());
        return 2;
      }
      const std::uint32_t got_report =
          FingerprintReport(result->summary.metrics);
      const std::uint32_t got_ingest =
          FingerprintIngest(result->summary.ingest);
      if (got_report != want_report || got_ingest != want_ingest ||
          result->summary.runs_finalized != want_runs) {
        std::fprintf(stderr,
                     "  MISMATCH: report fp %08x (want %08x), ingest fp %08x "
                     "(want %08x), runs %llu (want %llu), resumed gen %llu\n",
                     got_report, want_report, got_ingest, want_ingest,
                     static_cast<unsigned long long>(
                         result->summary.runs_finalized),
                     static_cast<unsigned long long>(want_runs),
                     static_cast<unsigned long long>(
                         result->resumed_generation));
        return 1;
      }
      return 0;
    };
    CrashSupervisor::Options sup;
    sup.max_restarts = max_restarts;
    return CrashSupervisor::Run(child, sup);
  };

  // --- kill-point × snapshot-interval sweep --------------------------
  const std::vector<double> kill_fractions =
      quick ? std::vector<double>{0.05, 0.5}
            : std::vector<double>{0.05, 0.25, 0.5, 0.75, 0.95};
  const std::vector<std::uint64_t> intervals =
      quick ? std::vector<std::uint64_t>{total_lines / 12 + 1}
            : std::vector<std::uint64_t>{total_lines / 24 + 1,
                                         total_lines / 6 + 1};

  bool all_passed = true;
  std::vector<Cell> cells;
  int cell_index = 0;
  for (std::uint64_t interval : intervals) {
    for (double fraction : kill_fractions) {
      Cell cell;
      cell.kill_fraction = fraction;
      cell.snapshot_interval = interval;
      const auto kill_after = static_cast<std::uint64_t>(
          fraction * static_cast<double>(total_lines));
      const std::string dir = base + "/cell_" + std::to_string(cell_index++);
      const CrashSupervisor::Outcome outcome =
          run_cell(dir, interval, kill_after > 0 ? kill_after : 1, 3);
      cell.attempts = outcome.attempts;
      cell.crashes = outcome.crashes;
      cell.passed = outcome.exit_code == 0 && !outcome.exhausted &&
                    outcome.crashes == 1;
      all_passed = all_passed && cell.passed;
      cells.push_back(cell);
      std::printf("kill@%4.0f%%  interval %7llu  attempts %d  crashes %d  %s\n",
                  fraction * 100.0,
                  static_cast<unsigned long long>(interval), cell.attempts,
                  cell.crashes, cell.passed ? "ok (bit-identical)" : "FAIL");
    }
  }

  // --- torn-snapshot cell --------------------------------------------
  // Crash once (supervisor gives up immediately), then tear the newest
  // snapshot on disk.  The in-process resume must fall back to the
  // previous generation and still reproduce the baseline exactly.
  {
    const std::string dir = base + "/torn";
    const std::uint64_t interval = total_lines / 12 + 1;
    const auto kill_after =
        static_cast<std::uint64_t>(0.6 * static_cast<double>(total_lines));
    const CrashSupervisor::Outcome outcome =
        run_cell(dir, interval, kill_after, /*max_restarts=*/0);
    bool torn_ok = outcome.exhausted && outcome.crashes == 1;
    if (!torn_ok) {
      std::fprintf(stderr, "torn cell: expected a single unretried crash\n");
    }

    SnapshotStore store(dir);
    const std::vector<std::uint64_t> gens = store.Generations();
    if (torn_ok && gens.size() < 2) {
      std::fprintf(stderr,
                   "torn cell: need >=2 generations before tearing, have "
                   "%zu\n",
                   gens.size());
      torn_ok = false;
    }
    if (torn_ok) {
      const std::string newest = store.PathFor(gens.back());
      struct stat st{};
      if (stat(newest.c_str(), &st) != 0 ||
          truncate(newest.c_str(), st.st_size / 2) != 0) {
        std::fprintf(stderr, "torn cell: cannot tear %s\n", newest.c_str());
        torn_ok = false;
      }
    }
    if (torn_ok) {
      ResumeOptions opts;
      opts.snapshot_dir = dir;
      opts.snapshot_interval = interval;
      auto resumed =
          RunResumableAnalysis(machine, LogDiverConfig{}, inputs, opts);
      if (!resumed.ok()) {
        std::fprintf(stderr, "torn cell: resume errored: %s\n",
                     resumed.status().ToString().c_str());
        torn_ok = false;
      } else {
        const bool fell_back =
            resumed->snapshots_rejected >= 1 &&
            resumed->resumed_generation == gens[gens.size() - 2];
        const bool identical =
            FingerprintReport(resumed->summary.metrics) == want_report &&
            FingerprintIngest(resumed->summary.ingest) == want_ingest;
        if (!fell_back) {
          std::fprintf(stderr,
                       "torn cell: did not fall back (gen %llu, rejected "
                       "%llu)\n",
                       static_cast<unsigned long long>(
                           resumed->resumed_generation),
                       static_cast<unsigned long long>(
                           resumed->snapshots_rejected));
        }
        if (!identical) {
          std::fprintf(stderr, "torn cell: resumed report not identical\n");
        }
        torn_ok = fell_back && identical;
      }
    }
    all_passed = all_passed && torn_ok;
    std::printf("torn newest snapshot, fallback one generation:  %s\n",
                torn_ok ? "ok (bit-identical)" : "FAIL");
  }

  std::filesystem::remove_all(base);
  std::printf("\n%s\n", all_passed
                            ? "PASS: every interrupted run reproduced the "
                              "baseline bit for bit"
                            : "FAIL: see cells above");
  return all_passed ? 0 : 1;
}

}  // namespace
}  // namespace ld

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return ld::Run(quick);
}
