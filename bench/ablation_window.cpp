// Ablation B: sensitivity to the preprocessing windows.
//
// Sweeps (1) the coalescing/tupling window and (2) the attribution
// window, reporting tuple counts and ground-truth F1 at each setting.
// This is the design-choice justification for LogDiver's defaults: too
// small fragments bursts into duplicate tuples; too large merges
// unrelated faults and stretches blame over unrelated deaths.
#include <iostream>

#include "analysis/scoring.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Ablation B: preprocessing window sensitivity",
                              options);

  // Regenerate the campaign once; re-run only the LogDiver pipeline per
  // setting.
  const ld::ScenarioConfig scenario = ld::bench::BenchScenario(options);
  const ld::Machine machine = ld::MakeMachine(scenario);
  auto campaign = ld::RunCampaign(machine, scenario);
  if (!campaign.ok()) {
    std::cerr << campaign.status().ToString() << "\n";
    return 1;
  }
  ld::LogSet logs;
  logs.torque = campaign->logs.torque;
  logs.alps = campaign->logs.alps;
  logs.syslog = campaign->logs.syslog;
  logs.hwerr = campaign->logs.hwerr;

  std::cout << "--- sweep 1: tupling window (attribution fixed at default) "
               "---\n";
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"tupling window (s)", "tuples", "F1", "cause acc."});
  for (std::int64_t window : {1, 5, 15, 60, 300, 1800, 7200}) {
    ld::LogDiverConfig config;
    config.coalesce.tupling_window = ld::Duration(window);
    ld::LogDiver diver(machine, config);
    auto analysis = diver.Analyze(logs);
    if (!analysis.ok()) continue;
    const ld::ScoreReport score = ld::ScoreClassification(
        analysis->runs, analysis->classified, campaign->injection.truth);
    rows.push_back({std::to_string(window),
                    ld::WithThousands(analysis->tuples.size()),
                    ld::FormatDouble(score.system_f1, 4),
                    ld::FormatDouble(score.cause_accuracy, 4)});
  }
  std::cout << ld::RenderTable(rows);

  std::cout << "\n--- sweep 2: attribution window before death (tupling "
               "fixed at default) ---\n";
  rows.clear();
  rows.push_back(
      {"attribution window (s)", "precision", "recall", "F1", "cause acc."});
  for (std::int64_t window : {10, 60, 300, 1800, 7200, 43200}) {
    ld::LogDiverConfig config;
    config.correlator.attribution_before = ld::Duration(window);
    ld::LogDiver diver(machine, config);
    auto analysis = diver.Analyze(logs);
    if (!analysis.ok()) continue;
    const ld::ScoreReport score = ld::ScoreClassification(
        analysis->runs, analysis->classified, campaign->injection.truth);
    rows.push_back({std::to_string(window),
                    ld::FormatDouble(score.system_precision, 4),
                    ld::FormatDouble(score.system_recall, 4),
                    ld::FormatDouble(score.system_f1, 4),
                    ld::FormatDouble(score.cause_accuracy, 4)});
  }
  std::cout << ld::RenderTable(rows);

  std::cout << "\nexpected shape: F1 plateaus around the default windows; "
               "very large attribution windows start blaming unrelated "
               "errors (precision drops), very small ones miss delayed "
               "log flushes\n";
  return 0;
}
