// Scenario campaign: runs every cell of the fault-scenario catalog and
// asserts each cell's ground-truth expectations (ctest label `scenario`).
//
// Each catalog entry (src/simlog/catalog.cpp, documented page-per-entry
// in docs/SCENARIOS.md) composes a workload, a fault schedule and bundle
// transforms, runs the full generate → inject → emit → analyze loop, and
// measures the analyzer's attribution bias against the injector's
// ground-truth ledger.  The spec's validate hook turns those
// measurements into hard expectations; any violation fails the binary
// (exit 1), so the catalog doubles as a regression suite for the
// attribution pipeline.
//
// Every cell writes a provenance manifest `manifest_scenario_<name>.json`
// (to LD_MANIFEST_DIR, default cwd) carrying the seed, the ledger
// fingerprint, the headline measurements and the validation verdict —
// the EXPERIMENTS.md provenance column points at these files.
//
// Environment knobs:
//   LD_SCENARIO_APPS     target application runs per cell (default 4000)
//   LD_SCENARIO_SEED     campaign seed                    (default 42)
//   LD_SCENARIO_THREADS  LogDiver threads, 0 = auto       (default 0)
//   LD_SCENARIO_ONLY     comma-separated cell names to run (default all)
//
// `--quick` prints summaries only; the full run adds the per-cell ledger
// and bias tables.  Both modes run every selected cell's assertions.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/obs/manifest.hpp"
#include "common/strings.hpp"
#include "faults/taxonomy.hpp"
#include "logdiver/report.hpp"
#include "simlog/catalog.hpp"

namespace ld {
namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::vector<std::string> SplitCsv(const char* value) {
  std::vector<std::string> out;
  if (value == nullptr) return out;
  std::string item;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(item);
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

void PrintOutcome(const ScenarioOutcome& outcome, bool quick) {
  std::cout << "  jobs " << WithThousands(outcome.jobs) << ", apps "
            << WithThousands(outcome.apps) << ", events "
            << WithThousands(outcome.events) << "\n"
            << "  score: accuracy " << FormatDouble(outcome.score.overall_accuracy, 4)
            << ", system P/R " << FormatDouble(outcome.score.system_precision, 4)
            << "/" << FormatDouble(outcome.score.system_recall, 4)
            << ", cause accuracy " << FormatDouble(outcome.score.cause_accuracy, 4)
            << "\n"
            << "  unattributed share XE " << FormatDouble(outcome.xe_unattributed_share, 4)
            << " vs XK " << FormatDouble(outcome.xk_unattributed_share, 4) << "\n";
  if (outcome.peak_trough_ratio > 0.0) {
    std::cout << "  diurnal peak/trough arrivals "
              << FormatDouble(outcome.peak_trough_ratio, 2) << "\n";
  }
  if (outcome.io_heavy_lustre_kill_rate >= 0.0) {
    std::cout << "  lustre kill rate: io-heavy "
              << FormatDouble(outcome.io_heavy_lustre_kill_rate, 4) << " vs other "
              << FormatDouble(outcome.other_lustre_kill_rate, 4) << "\n";
  }
  if (quick) return;
  std::cout << "  ledger:\n";
  for (const std::string& row : outcome.ledger.Render()) {
    std::cout << "    " << row << "\n";
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cause", "injected kills", "attributed runs", "bias"});
  for (const CauseBias& b : outcome.bias) {
    if (b.injected_kills == 0 && b.attributed_runs == 0) continue;
    rows.push_back({ErrorCategoryName(b.cause), WithThousands(b.injected_kills),
                    WithThousands(b.attributed_runs), FormatDouble(b.bias, 3)});
  }
  std::cout << RenderTable(rows);
}

void WriteManifest(const ScenarioSpec& spec, const ScenarioOutcome& outcome,
                   const ScenarioRunOptions& options, bool passed) {
  obs::ManifestBuilder manifest("scenario_campaign");
  manifest.RecordEnv("LD_SCENARIO_APPS");
  manifest.RecordEnv("LD_SCENARIO_SEED");
  manifest.RecordEnv("LD_SCENARIO_THREADS");
  manifest.RecordEnv("LD_SCENARIO_ONLY");
  manifest.Set("scenario", spec.name);
  manifest.Set("title", spec.title);
  manifest.Set("paper_anchor", spec.paper_anchor);
  manifest.SetUint("seed", options.seed);
  manifest.SetInt("threads", options.threads);
  manifest.Set("app_scale", FormatDouble(options.app_scale, 4));
  manifest.SetInt("rotate_days", spec.rotate_days);
  manifest.SetInt("midnight_skew_seconds", spec.midnight_skew_seconds);
  manifest.SetUint("jobs", outcome.jobs);
  manifest.SetUint("apps", outcome.apps);
  manifest.SetUint("events", outcome.events);
  manifest.SetUint("ledger_fingerprint", outcome.ledger.Fingerprint());
  manifest.SetUint("kills_total", outcome.ledger.kills_total);
  manifest.SetUint("gpu_fatal_injected", outcome.ledger.gpu_fatal_injected);
  manifest.SetUint("gpu_fatal_undetected", outcome.ledger.gpu_fatal_undetected);
  manifest.Set("overall_accuracy", FormatDouble(outcome.score.overall_accuracy, 6));
  manifest.Set("system_precision", FormatDouble(outcome.score.system_precision, 6));
  manifest.Set("system_recall", FormatDouble(outcome.score.system_recall, 6));
  manifest.Set("cause_accuracy", FormatDouble(outcome.score.cause_accuracy, 6));
  manifest.Set("xe_unattributed_share", FormatDouble(outcome.xe_unattributed_share, 6));
  manifest.Set("xk_unattributed_share", FormatDouble(outcome.xk_unattributed_share, 6));
  manifest.Set("rotated_matches_whole", outcome.rotated_matches_whole ? "true" : "false");
  manifest.SetUint("violations", outcome.violations.size());
  manifest.Set("validation", passed ? "pass" : "fail");
  manifest.SetExitCode(passed ? 0 : 1);
  const char* dir = std::getenv("LD_MANIFEST_DIR");
  const std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
                           "/manifest_scenario_" + spec.name + ".json";
  const Status written = manifest.Write(path);
  if (written.ok()) {
    std::cout << "  [manifest] " << path << "\n";
  } else {
    std::cerr << "  [manifest] write failed: " << written.ToString() << "\n";
  }
}

}  // namespace
}  // namespace ld

int main(int argc, char** argv) {
  using namespace ld;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  ScenarioRunOptions options;
  options.seed = EnvU64("LD_SCENARIO_SEED", 42);
  options.threads = static_cast<int>(EnvU64("LD_SCENARIO_THREADS", 0));
  options.app_scale =
      static_cast<double>(EnvU64("LD_SCENARIO_APPS", 4000)) / 4000.0;
  const std::vector<std::string> only =
      SplitCsv(std::getenv("LD_SCENARIO_ONLY"));

  std::cout << "scenario campaign: seed " << options.seed << ", threads "
            << options.threads << ", app scale "
            << FormatDouble(options.app_scale, 3)
            << (quick ? " (quick)" : "") << "\n";

  int failures = 0;
  std::size_t ran = 0;
  for (const ScenarioSpec& spec : ScenarioCatalog()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), spec.name) == only.end()) {
      continue;
    }
    ++ran;
    std::cout << "\n=== " << spec.name << " — " << spec.title << "\n"
              << "  anchor: " << spec.paper_anchor << "\n";
    auto outcome = RunScenario(spec, options);
    if (!outcome.ok()) {
      std::cerr << "  FAIL: scenario errored: " << outcome.status().ToString()
                << "\n";
      ++failures;
      continue;
    }
    PrintOutcome(*outcome, quick);
    const bool passed = outcome->violations.empty();
    for (const std::string& violation : outcome->violations) {
      std::cerr << "  FAIL: " << violation << "\n";
    }
    if (!passed) ++failures;
    std::cout << "  " << (passed ? "PASS" : "FAIL") << "\n";
    WriteManifest(spec, *outcome, options, passed);
  }

  if (ran == 0) {
    std::cerr << "FAIL: LD_SCENARIO_ONLY matched no catalog entry\n";
    return 1;
  }
  std::cout << "\n" << ran << " scenario(s), " << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}
