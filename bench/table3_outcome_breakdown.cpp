// Table 3: application run outcome breakdown — counts, shares, and
// node-hours by category.  Carries the paper's two headline anchors:
// ~1.53% of runs fail from system causes (A2) while consuming ~9% of
// production node-hours (A3).
#include <iostream>

#include <algorithm>
#include <map>

#include "analysis/bootstrap.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader(
      "Table 3: application outcome breakdown (anchors A2, A3)", options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintHeadline(std::cout, bench.analysis.metrics);
  std::cout << "\n";
  ld::PrintOutcomeBreakdown(std::cout, bench.analysis.metrics);

  // Bootstrap CIs for the two headline ratios (A3 is dominated by a
  // handful of huge failed runs; a normal approximation is useless).
  ld::Rng rng(1);
  auto frac = ld::BootstrapFailureFractionCi(bench.analysis.runs,
                                             bench.analysis.classified,
                                             200, rng);
  auto lost = ld::BootstrapLostShareCi(bench.analysis.runs,
                                       bench.analysis.classified, 200, rng);
  if (frac.ok() && lost.ok()) {
    std::cout << "\nbootstrap 95% CIs (200 replicas):\n";
    std::cout << "  system-failure fraction: "
              << ld::FormatDouble(frac->point * 100, 3) << "% ["
              << ld::FormatDouble(frac->lo * 100, 3) << ", "
              << ld::FormatDouble(frac->hi * 100, 3) << "]\n";
    std::cout << "  lost node-hours share:   "
              << ld::FormatDouble(lost->point * 100, 2) << "% ["
              << ld::FormatDouble(lost->lo * 100, 2) << ", "
              << ld::FormatDouble(lost->hi * 100, 2) << "]\n";
  }

  // Exit-status dictionary: the paper's raw material for outcome
  // categorization.
  std::map<std::pair<int, int>, std::uint64_t> codes;
  for (const ld::AppRun& run : bench.analysis.runs) {
    ++codes[{run.exit_code, run.exit_signal}];
  }
  std::vector<std::pair<std::uint64_t, std::pair<int, int>>> top;
  for (const auto& [key, count] : codes) top.push_back({count, key});
  std::sort(top.rbegin(), top.rend());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"exit code", "signal", "runs"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i) {
    rows.push_back({std::to_string(top[i].second.first),
                    std::to_string(top[i].second.second),
                    ld::WithThousands(top[i].first)});
  }
  std::cout << "\ntop exit statuses:\n" << ld::RenderTable(rows);

  std::cout << "\npaper anchors: system-failure fraction ~1.53%, "
               "failed-run node-hours ~9% of production\n";
  return 0;
}
