// Table 2: data sources consumed by LogDiver — line/record volumes per
// source and what survives each preprocessing stage.
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Table 2: data sources and volumes (A7)",
                              options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintParseSummary(std::cout, bench.analysis);

  std::cout << "\njobs in campaign:          "
            << ld::WithThousands(bench.campaign.workload.jobs.size()) << "\n";
  std::cout << "application runs:          "
            << ld::WithThousands(bench.campaign.workload.apps.size()) << "\n";
  std::cout << "injected error events:     "
            << ld::WithThousands(bench.campaign.injection.events.size())
            << " (detected events reach the logs)\n";
  std::cout << "\npaper: >5,000,000 application runs over 518 days; "
               "workload + syslog + hardware-error sources joined by "
               "LogDiver\n";
  return 0;
}
