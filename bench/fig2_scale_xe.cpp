// Figure 2: application failure probability vs application scale on the
// XE (CPU) partition.  Anchor A4: P rises from ~0.008 at 10,000 nodes to
// ~0.162 at 22,000 nodes — a ~20x blowup at full machine scale.
//
// Full-scale runs are rare in a scaled-down campaign, so this bench
// oversamples the two largest size buckets (LD_BENCH_BOOST, default 40x).
// Per-bucket probabilities are conditional on the bucket and therefore
// unbiased under oversampling.
#include <iostream>

#include "analysis/scaling.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  BenchOptions defaults;
  defaults.large_bucket_boost = 40.0;
  const BenchOptions options = ld::bench::OptionsFromEnv(defaults);
  ld::bench::PrintBenchHeader(
      "Figure 2: XE failure probability vs scale (anchor A4)", options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintScaleCurve(std::cout, bench.analysis.metrics.xe_scale,
                      "XE partition");

  auto fit = ld::FitScaleCurve(bench.analysis.metrics.xe_scale);
  if (fit.ok()) {
    std::cout << "\nexposure-model fit: ln(-ln(1-P)) = "
              << ld::FormatDouble(fit->exponent, 3) << " * ln(N) + "
              << ld::FormatDouble(fit->log_c, 3)
              << "   (R^2 = " << ld::FormatDouble(fit->r_squared, 3) << ")\n";
    std::cout << "model P(10,000) = "
              << ld::FormatDouble(fit->Predict(10000), 4)
              << ",  P(22,000) = " << ld::FormatDouble(fit->Predict(22000), 4)
              << "\n";
  }
  std::cout << "\npaper anchors: P(10k nodes) ~0.008 -> P(22k nodes) ~0.162 "
               "(20x)\n";
  return 0;
}
