// Table 7 (extension): incident blast radius.
//
// Groups system-classified failures by the error tuple LogDiver blamed,
// showing how many application runs and node-hours a single incident
// takes down.  System-wide Lustre incidents dominate: one bad filesystem
// event can kill dozens of concurrent applications — the long tail the
// field study's "energy cost" framing comes from.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader("Table 7 (extension): incident blast radius",
                              options);

  const auto bench = ld::bench::RunBench(options);

  struct Impact {
    std::uint64_t kills = 0;
    double node_hours = 0.0;
  };
  std::map<std::uint64_t, Impact> by_tuple;
  std::uint64_t unexplained = 0;
  for (const ld::ClassifiedRun& cls : bench.analysis.classified) {
    if (cls.outcome != ld::AppOutcome::kSystemFailure) continue;
    if (cls.tuple_id == 0) {
      ++unexplained;
      continue;
    }
    Impact& impact = by_tuple[cls.tuple_id];
    ++impact.kills;
    impact.node_hours += bench.analysis.runs[cls.run_index].NodeHours();
  }

  std::map<std::uint64_t, const ld::ErrorTuple*> tuples;
  for (const ld::ErrorTuple& t : bench.analysis.tuples) {
    tuples.emplace(t.id, &t);
  }

  // Kills-per-incident distribution.
  std::map<std::uint64_t, std::uint64_t> histogram;  // kills -> incidents
  for (const auto& [id, impact] : by_tuple) ++histogram[impact.kills];
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"kills per incident", "incidents"});
  for (const auto& [kills, count] : histogram) {
    rows.push_back({ld::WithThousands(kills), ld::WithThousands(count)});
  }
  std::cout << rows.size() - 1 << " distinct kill counts:\n"
            << ld::RenderTable(rows) << "\n";

  // Top incidents by kills.
  std::vector<std::pair<std::uint64_t, Impact>> sorted(by_tuple.begin(),
                                                       by_tuple.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.second.kills > b.second.kills;
            });
  rows.clear();
  rows.push_back({"category", "when", "runs killed", "node-hours lost"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sorted.size()); ++i) {
    const auto& [id, impact] = sorted[i];
    const auto it = tuples.find(id);
    rows.push_back(
        {it != tuples.end() ? ld::ErrorCategoryName(it->second->category)
                            : "?",
         it != tuples.end() ? it->second->first.ToIso() : "?",
         ld::WithThousands(impact.kills),
         ld::FormatDouble(impact.node_hours, 0)});
  }
  std::cout << "top incidents by applications killed:\n"
            << ld::RenderTable(rows);
  std::cout << "\nfailures without an attributable incident: "
            << ld::WithThousands(unexplained) << "\n";
  return 0;
}
