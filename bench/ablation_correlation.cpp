// Ablation A: what the joint spatio-temporal correlation buys.
//
// LogDiver's classifier is scored against the injector's ground truth
// alongside four baselines that each drop an ingredient: no correlation
// at all (conservative / pessimistic exit-code readings), time-only
// matching, and space-only matching.  The field study could argue this
// only qualitatively; the simulated substrate measures it.
#include <iostream>

#include "analysis/baselines.hpp"
#include "analysis/scoring.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader(
      "Ablation A: correlation quality vs baselines", options);

  const auto bench = ld::bench::RunBench(options);
  const auto& truth = bench.campaign.injection.truth;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"classifier", "precision", "recall", "F1",
                  "cause acc.", "overall acc."});

  auto add_row = [&rows](const std::string& name,
                         const ld::ScoreReport& score) {
    rows.push_back({name, ld::FormatDouble(score.system_precision, 4),
                    ld::FormatDouble(score.system_recall, 4),
                    ld::FormatDouble(score.system_f1, 4),
                    ld::FormatDouble(score.cause_accuracy, 4),
                    ld::FormatDouble(score.overall_accuracy, 4)});
  };

  add_row("logdiver (joint)",
          ld::ScoreClassification(bench.analysis.runs,
                                  bench.analysis.classified, truth));

  for (ld::BaselineMode mode :
       {ld::BaselineMode::kExitOnlyConservative,
        ld::BaselineMode::kExitOnlyPessimistic,
        ld::BaselineMode::kTemporalOnly, ld::BaselineMode::kSpatialOnly}) {
    const auto classified = ld::ClassifyBaseline(
        mode, bench.analysis.runs, bench.analysis.tuples,
        ld::CorrelatorConfig{});
    add_row(ld::BaselineModeName(mode),
            ld::ScoreClassification(bench.analysis.runs, classified, truth));
  }

  std::cout << ld::RenderTable(rows);
  std::cout << "\nexpected shape: the joint classifier dominates on F1; "
               "exit-only-conservative has high precision but poor recall "
               "(misses app-scope kills); exit-only-pessimistic and the "
               "single-dimension correlators bleed precision\n";
  return 0;
}
