// Figure 7 (extension): reliability growth over the production life.
//
// Field systems improve as bad parts are swapped and software matures;
// the fault model exposes this as a time-varying hazard multiplier.
// This bench runs the campaign with hazards declining 2.4x start-to-end
// (mean ~1.0, so totals stay comparable to the stationary model) and
// shows the monthly MTTI trend LogDiver measures from the logs.
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/logdiver.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader(
      "Figure 7 (extension): reliability growth over production life",
      options);

  ld::ScenarioConfig config = ld::bench::BenchScenario(options);
  config.faults.hazard_multiplier_start = 1.6;
  config.faults.hazard_multiplier_end = 0.4;
  const ld::Machine machine = ld::MakeMachine(config);
  auto campaign = ld::RunCampaign(machine, config);
  if (!campaign.ok()) {
    std::cerr << campaign.status().ToString() << "\n";
    return 1;
  }
  ld::LogDiver diver(machine, {});
  auto analysis = diver.Analyze(ld::LogSet{campaign->logs.torque,
                                           campaign->logs.alps,
                                           campaign->logs.syslog,
                                           campaign->logs.hwerr});
  if (!analysis.ok()) {
    std::cerr << analysis.status().ToString() << "\n";
    return 1;
  }

  ld::PrintMonthlySeries(std::cout, analysis->metrics);

  // First-quarter vs last-quarter MTTI summary.
  const auto& monthly = analysis->metrics.monthly;
  if (monthly.size() >= 8) {
    const std::size_t quarter = monthly.size() / 4;
    auto mean_mtti = [&](std::size_t lo, std::size_t hi) {
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        if (monthly[i].mtti_hours > 0.0) {
          sum += monthly[i].mtti_hours;
          ++n;
        }
      }
      return n ? sum / static_cast<double>(n) : 0.0;
    };
    const double early = mean_mtti(0, quarter);
    const double late = mean_mtti(monthly.size() - quarter, monthly.size());
    std::cout << "\nmean monthly MTTI, first quarter of the campaign: "
              << ld::FormatDouble(early, 1) << " h\n";
    std::cout << "mean monthly MTTI, last quarter of the campaign:  "
              << ld::FormatDouble(late, 1) << " h\n";
    if (early > 0.0) {
      std::cout << "improvement: " << ld::FormatDouble(late / early, 2)
                << "x\n";
    }
  }
  std::cout << "\nexpected shape: MTTI improves several-fold from early "
               "production to maturity, mirroring the hazard decline\n";
  return 0;
}
