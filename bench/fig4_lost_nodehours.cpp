// Figure 4: node-hours consumed by system-failed applications over time
// (monthly series), with the lost share of production — the time-series
// view of anchor A3's "system-related issues are a significant energy
// cost".
#include <iostream>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "logdiver/report.hpp"

int main() {
  using ld::bench::BenchOptions;
  const BenchOptions options = ld::bench::OptionsFromEnv();
  ld::bench::PrintBenchHeader(
      "Figure 4: lost node-hours over time (anchor A3)", options);

  const auto bench = ld::bench::RunBench(options);
  ld::PrintMonthlySeries(std::cout, bench.analysis.metrics);

  // Rough energy translation (anchor A3's "energy cost of work lost"):
  // ~300 W per XE node-socket pair + blower share; we use 350 W/node as
  // a round figure for both partitions.
  const double lost_nh = bench.analysis.metrics.lost_node_hours_fraction *
                         bench.analysis.metrics.total_node_hours;
  std::cout << "\nestimated energy of lost work: "
            << ld::FormatDouble(lost_nh * 350.0 / 1e6, 2)
            << " MWh at 350 W/node\n";
  std::cout << "\ncampaign total: "
            << ld::FormatDouble(
                   bench.analysis.metrics.lost_node_hours_fraction * 100.0, 2)
            << "% of production node-hours consumed by system-failed runs "
               "(paper: ~9%)\n";
  return 0;
}
